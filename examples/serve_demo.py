"""The query service answering a mixed 4-client workload — via the facade.

Connects with ``service=True``, so the same ``Session.execute`` API now
routes through the concurrent query service: bounded worker pool,
per-system admission control, plan and result caches.  Replays a
deterministic 4-client stream (Zipf-skewed query popularity, 2 ms mean
think time) and prints what a serving layer adds over the paper's
one-query-at-a-time protocol: throughput, tail latency, and how much
work the caches absorbed.

Run:  PYTHONPATH=src python examples/serve_demo.py [scale]
"""

import sys

import repro
from repro.benchmark.queries import QUERIES
from repro.service import WorkloadGenerator, WorkloadSpec


def main(scale: float = 0.002) -> None:
    print(f"generating document (f = {scale}) ...")
    text = repro.generate_string(scale)

    spec = WorkloadSpec(
        clients=4,
        requests_per_client=25,
        systems=("B", "D"),
        zipf_exponent=1.0,
        think_mean_seconds=0.002,
    )
    generator = WorkloadGenerator(spec)
    hot = generator.popularity_order[:3]
    print(f"workload: {spec.total_requests} requests from {spec.clients} clients; "
          f"hottest queries: {', '.join(f'Q{q}' for q in hot)}")

    with repro.connect(text, systems=spec.systems, service=True,
                       max_workers=8) as db:
        session = db.session()

        # A single ad-hoc query, served synchronously through the service:
        cursor = session.execute(1, system="D")
        print(f"\nQ1 on System D -> {len(cursor.fetchall())} item(s) in "
              f"{cursor.execute_seconds * 1000:.2f} ms "
              f"({QUERIES[1].group.lower()})")

        # The same query again — now a result-cache hit:
        cursor = session.execute(1, system="D")
        print(f"Q1 again       -> result cache hit: {cursor.result_cache_hit}")

        # The full multi-client run (the service layer under the facade):
        print("\nreplaying the 4-client workload ...")
        snapshot = db.service.run_workload(generator)
        registry_text = db.service.export_metrics(as_text=True)

    print(f"served {snapshot['completed']} queries in "
          f"{snapshot['elapsed_seconds']:.3f} s "
          f"({snapshot['throughput_qps']:.0f} qps)\n")
    # Every number the service measured, from the unified registry
    # (counters, gauges, and ring-buffer latency histograms):
    print(registry_text)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.002)
