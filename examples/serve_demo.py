"""The query service answering a mixed 4-client workload.

Loads one generated document into Systems B and D, replays a deterministic
4-client stream (Zipf-skewed query popularity, 2 ms mean think time) through
the service's worker pool, and prints what a serving layer adds over the
paper's one-query-at-a-time protocol: throughput, tail latency, and how much
work the plan and result caches absorbed.

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

from repro.benchmark.queries import QUERIES
from repro.service import QueryService, WorkloadGenerator, WorkloadSpec
from repro.xmlgen.generator import generate_string


def main() -> None:
    print("generating document (f = 0.002) ...")
    text = generate_string(0.002)

    spec = WorkloadSpec(
        clients=4,
        requests_per_client=25,
        systems=("B", "D"),
        zipf_exponent=1.0,
        think_mean_seconds=0.002,
    )
    generator = WorkloadGenerator(spec)
    hot = generator.popularity_order[:3]
    print(f"workload: {spec.total_requests} requests from {spec.clients} clients; "
          f"hottest queries: {', '.join(f'Q{q}' for q in hot)}")

    with QueryService(text, spec.systems, max_workers=8) as service:
        # A single ad-hoc query, served synchronously:
        outcome = service.execute("D", 1)
        print(f"\nQ1 on System D -> {outcome.result_size} item(s) in "
              f"{outcome.latency_seconds * 1000:.2f} ms "
              f"({QUERIES[1].group.lower()})")

        # The same query again — now a result-cache hit:
        outcome = service.execute("D", 1)
        print(f"Q1 again       -> {outcome.latency_seconds * 1000:.2f} ms "
              f"(result cache hit: {outcome.result_cache_hit})")

        # The full multi-client run:
        print("\nreplaying the 4-client workload ...")
        snapshot = service.run_workload(generator)

    latency = snapshot["latency"]
    print(f"served {snapshot['completed']} queries in "
          f"{snapshot['elapsed_seconds']:.3f} s "
          f"({snapshot['throughput_qps']:.0f} qps)")
    print(f"latency p50 {latency['p50_ms']:.2f} ms | "
          f"p95 {latency['p95_ms']:.2f} ms | p99 {latency['p99_ms']:.2f} ms")
    print(f"plan cache: {snapshot['plan_cache']['hit_rate']:.0%} hit rate; "
          f"result cache: {snapshot['result_cache']['hit_rate']:.0%} hit rate")


if __name__ == "__main__":
    main()
