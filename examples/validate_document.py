#!/usr/bin/env python3
"""Validation, structural exploration, and transactional updates.

Shows the schema tooling: DTD validation with typed-reference checking
(Section 4.2: "all references are typed"), the structural summary as a
schema browser, the planner's path-validation warnings (the Section 7
usability suggestion: warn when a path expression contains non-existing
tags) — and that a committed transaction keeps the document DTD-valid,
IDREF integrity included.

Run with:  python examples/validate_document.py [scale]
"""

import sys

import repro
from repro.schema.auction import REFERENCE_TARGETS, auction_dtd
from repro.update.engine import serialize_store


def main(scale: float = 0.002) -> None:
    document_text = repro.generate_string(scale)
    document = repro.parse(document_text)

    print("== DTD validation (structure, attributes, ID/IDREF integrity) ==")
    report = repro.validate(document, auction_dtd(), REFERENCE_TARGETS)
    print(f"  elements checked: {report.elements_checked:,}")
    print(f"  IDs seen:         {report.ids_seen:,}")
    print(f"  references:       {report.refs_checked:,}")
    print(f"  verdict:          {'VALID' if report.ok else report.violations[:3]}")

    db = repro.connect(document_text, systems=("D",))
    session = db.session()

    print("\n== Structural summary (System D's DataGuide) ==")
    summary = db.stores["D"].summary
    print(f"  distinct paths: {summary.path_count()}")
    print(f"  distinct tags:  {len(summary.tags())}")
    print("  largest extents:")
    entries = sorted(
        (entry for entry in map(summary.entry, _all_paths(summary)) if entry),
        key=lambda e: -e.count,
    )
    for entry in entries[:6]:
        print(f"    {'/'.join(entry.path):<60} {entry.count:>6}")

    print("\n== Path validation warnings (paper Section 7) ==")
    bad_query = "for $x in /site/people/persn return $x/name/text()"
    prepared = session.prepare(bad_query)
    for warning in prepared.warnings:
        print(f"  warning: {warning}")
    print("  (the query still runs; it returns an empty sequence)")

    print("\n== A transaction keeps the document valid ==")
    with session.transaction() as txn:
        txn.close_auction("open_auction0", "07/31/2026")
    print(f"  committed {len(txn.ops)} op(s); digest {txn.summary['digest']}")
    after = repro.validate(repro.parse(serialize_store(db.stores["D"])),
                           auction_dtd(), REFERENCE_TARGETS)
    print(f"  post-commit verdict: "
          f"{'VALID' if after.ok else after.violations[:3]}")
    db.close()


def _all_paths(summary):
    return list(summary._entries)  # example-only peek at the path registry


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.002)
