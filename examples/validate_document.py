#!/usr/bin/env python3
"""Validation and structural exploration of a benchmark document.

Shows the schema tooling: DTD validation with typed-reference checking
(Section 4.2: "all references are typed"), the structural summary as a
schema browser, and the planner's path-validation warnings (the Section 7
usability suggestion: warn when a path expression contains non-existing
tags).

Run with:  python examples/validate_document.py
"""

from repro import generate_string
from repro.benchmark.systems import get_profile
from repro.schema.auction import REFERENCE_TARGETS, auction_dtd
from repro.schema.validator import validate
from repro.storage.summary_store import SummaryStore
from repro.xmlio.parser import parse
from repro.xquery.planner import compile_query


def main() -> None:
    document_text = generate_string(0.002)
    document = parse(document_text)

    print("== DTD validation (structure, attributes, ID/IDREF integrity) ==")
    report = validate(document, auction_dtd(), REFERENCE_TARGETS)
    print(f"  elements checked: {report.elements_checked:,}")
    print(f"  IDs seen:         {report.ids_seen:,}")
    print(f"  references:       {report.refs_checked:,}")
    print(f"  verdict:          {'VALID' if report.ok else report.violations[:3]}")

    print("\n== Structural summary (System D's DataGuide) ==")
    store = SummaryStore()
    store.load(document_text)
    summary = store.summary
    print(f"  distinct paths: {summary.path_count()}")
    print(f"  distinct tags:  {len(summary.tags())}")
    print("  largest extents:")
    entries = sorted(
        (entry for entry in map(summary.entry, _all_paths(summary)) if entry),
        key=lambda e: -e.count,
    )
    for entry in entries[:6]:
        print(f"    {'/'.join(entry.path):<60} {entry.count:>6}")

    print("\n== Path validation warnings (paper Section 7) ==")
    bad_query = "for $x in /site/people/persn return $x/name/text()"
    compiled = compile_query(bad_query, store, get_profile("D"))
    for warning in compiled.warnings:
        print(f"  warning: {warning}")
    print("  (the query still runs; it returns an empty sequence)")


def _all_paths(summary):
    return list(summary._entries)  # example-only peek at the path registry


if __name__ == "__main__":
    main()
