#!/usr/bin/env python3
"""Dataset generation: scaling, determinism, split mode and flat-file shredding.

Demonstrates the xmlgen features from Sections 4.5 and 5 of the paper:
accurate scaling, byte-determinism, the n-entities-per-file split mode with
its relaxed DTD, and the "mapping tool" that shreds the document into
bulk-loadable flat files for each relational mapping family.

Run with:  python examples/generate_dataset.py
"""

import os
import tempfile

from repro.schema.auction import auction_dtd, auction_split_dtd
from repro.storage.shred import shred_to_files
from repro.xmlgen.config import GeneratorConfig
from repro.xmlgen.generator import XMarkGenerator, generate_string


def main() -> None:
    print("== Accurate scaling (paper Figure 3) ==")
    for scale in (0.0005, 0.001, 0.005, 0.01):
        text = generate_string(scale)
        target = 100e6 * scale
        print(f"  f={scale:<7g} {len(text):>9,} bytes  (target {target:>11,.0f}, "
              f"ratio {len(text) / target:.2f})")

    print("\n== Determinism ==")
    a = generate_string(0.001)
    b = generate_string(0.001)
    print(f"  two runs, same seed: {'byte-identical' if a == b else 'DIFFER (bug!)'}")
    c = XMarkGenerator(GeneratorConfig(scale=0.001, seed=99)).generate_string()
    print(f"  different seed:      {'different content' if a != c else 'IDENTICAL (bug!)'}")

    with tempfile.TemporaryDirectory() as workdir:
        print("\n== Split mode (Section 5: n entities per file) ==")
        config = GeneratorConfig(scale=0.001, entities_per_file=20)
        paths = XMarkGenerator(config).write_split(os.path.join(workdir, "split"))
        print(f"  wrote {len(paths)} files; first few: "
              f"{[os.path.basename(p) for p in paths[:4]]}")
        print("  split DTD relaxes ID/IDREF to required CDATA: "
              f"{'id CDATA' in auction_split_dtd().serialize()}")

        print("\n== Flat-file shredding (the paper's mapping tool) ==")
        document = generate_string(0.001)
        for mapping in ("edge", "path", "schema"):
            files = shred_to_files(document, os.path.join(workdir, mapping), mapping)
            total = sum(os.path.getsize(f) for f in files)
            print(f"  {mapping:<7} mapping: {len(files):>4} table files, {total:>9,} bytes")

    print("\n== The DTD itself ==")
    dtd = auction_dtd().serialize()
    print("\n".join(dtd.splitlines()[:6]) + "\n  ...")


if __name__ == "__main__":
    main()
