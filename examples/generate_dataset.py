#!/usr/bin/env python3
"""Dataset generation: scaling, determinism, split mode and flat-file shredding.

Demonstrates the xmlgen features from Sections 4.5 and 5 of the paper:
accurate scaling, byte-determinism, the n-entities-per-file split mode with
its relaxed DTD, the "mapping tool" that shreds the document into
bulk-loadable flat files for each relational mapping family — and the end
of the pipeline: the generated document opened as an embedded database
through ``repro.connect()``.

Run with:  python examples/generate_dataset.py [scale]
"""

import os
import sys
import tempfile

import repro
from repro.schema.auction import auction_split_dtd
from repro.storage.shred import shred_to_files
from repro.xmlgen.config import GeneratorConfig
from repro.xmlgen.generator import XMarkGenerator


def main(scale: float = 0.001) -> None:
    print("== Accurate scaling (paper Figure 3) ==")
    for factor in (scale / 2, scale, scale * 2):
        text = repro.generate_string(factor)
        target = 100e6 * factor
        print(f"  f={factor:<8g} {len(text):>9,} bytes  (target {target:>11,.0f}, "
              f"ratio {len(text) / target:.2f})")

    print("\n== Determinism ==")
    a = repro.generate_string(scale)
    b = repro.generate_string(scale)
    print(f"  two runs, same seed: {'byte-identical' if a == b else 'DIFFER (bug!)'}")
    c = XMarkGenerator(GeneratorConfig(scale=scale, seed=99)).generate_string()
    print(f"  different seed:      {'different content' if a != c else 'IDENTICAL (bug!)'}")

    with tempfile.TemporaryDirectory() as workdir:
        print("\n== Split mode (Section 5: n entities per file) ==")
        config = GeneratorConfig(scale=scale, entities_per_file=20)
        paths = XMarkGenerator(config).write_split(os.path.join(workdir, "split"))
        print(f"  wrote {len(paths)} files; first few: "
              f"{[os.path.basename(p) for p in paths[:4]]}")
        print("  split DTD relaxes ID/IDREF to required CDATA: "
              f"{'id CDATA' in auction_split_dtd().serialize()}")

        print("\n== Flat-file shredding (the paper's mapping tool) ==")
        for mapping in ("edge", "path", "schema"):
            files = shred_to_files(a, os.path.join(workdir, mapping), mapping)
            total = sum(os.path.getsize(f) for f in files)
            print(f"  {mapping:<7} mapping: {len(files):>4} table files, {total:>9,} bytes")

    print("\n== The DTD itself ==")
    dtd = repro.auction_dtd().serialize()
    print("\n".join(dtd.splitlines()[:6]) + "\n  ...")

    print("\n== And the end of the pipeline: an embedded database ==")
    with repro.connect(a, systems=("F",)) as db, db.session() as session:
        count = session.execute(
            "count(/site/open_auctions/open_auction)").fetchone()
        print(f"  repro.connect -> {count:g} open auctions at f={scale}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.001)
