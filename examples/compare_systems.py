#!/usr/bin/env python3
"""Compare the seven storage architectures on the same workload.

Reproduces the paper's central experiment in miniature: the same queries on
Systems A-G (edge heap, path fragmentation, DTD schema, structural summary,
tag index, pure traversal, embedded DOM) through one ``repro.connect()``
database, with bulkload statistics and cross-system result-equivalence
checking.

Run with:  python examples/compare_systems.py [scale]
"""

import sys

import repro
from repro.benchmark.report import format_table
from repro.benchmark.systems import SYSTEMS

QUERIES_TO_RUN = (1, 2, 6, 8, 11, 17, 20)


def main(scale: float = 0.004) -> None:
    document = repro.generate_string(scale)
    print(f"document: {len(document):,} bytes (scale {scale})\n")

    db = repro.connect(document, systems=tuple(SYSTEMS))
    session = db.session()

    print("== Bulkload (the paper's Table 1 view) ==")
    rows = []
    for system in sorted(db.load_reports):
        report = db.load_reports[system]
        rows.append([
            system,
            SYSTEMS[system].description.split(",")[0],
            f"{report.seconds * 1000:.0f} ms",
            f"{report.database_bytes:,} B",
        ])
    print(format_table(["System", "Architecture", "Load", "DB size"], rows))

    print("\n== Query latencies (ms) and result equivalence ==")
    headers = ["Query"] + sorted(db.stores) + ["equivalent?"]
    rows = []
    for query in QUERIES_TO_RUN:
        results = {}
        cells = [f"Q{query}"]
        for system in sorted(db.stores):
            cursor = session.execute(query, system=system, stream=False)
            results[system] = cursor.result()
            cells.append(
                f"{(cursor.compile_seconds + cursor.execute_seconds) * 1000:.1f}")
        report = repro.check_equivalence(query, results)
        cells.append("yes" if report.ok else f"NO: {sorted(report.disagreeing)}")
        rows.append(cells)
    print(format_table(headers, rows))
    db.close()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.004)
