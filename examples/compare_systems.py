#!/usr/bin/env python3
"""Compare the seven storage architectures on the same workload.

Reproduces the paper's central experiment in miniature: the same queries on
Systems A-G (edge heap, path fragmentation, DTD schema, structural summary,
tag index, pure traversal, embedded DOM), with bulkload statistics and
cross-system result-equivalence checking.

Run with:  python examples/compare_systems.py [scale]
"""

import sys

from repro import BenchmarkRunner, check_equivalence, generate_string
from repro.benchmark.report import format_table
from repro.benchmark.systems import SYSTEMS

QUERIES_TO_RUN = (1, 2, 6, 8, 11, 17, 20)


def main(scale: float = 0.004) -> None:
    document = generate_string(scale)
    print(f"document: {len(document):,} bytes (scale {scale})\n")

    runner = BenchmarkRunner(document)

    print("== Bulkload (the paper's Table 1 view) ==")
    rows = []
    for system in sorted(runner.load_reports):
        report = runner.load_reports[system]
        rows.append([
            system,
            SYSTEMS[system].description.split(",")[0],
            f"{report.seconds * 1000:.0f} ms",
            f"{report.database_bytes:,} B",
        ])
    print(format_table(["System", "Architecture", "Load", "DB size"], rows))

    print("\n== Query latencies (ms) and result equivalence ==")
    headers = ["Query"] + sorted(runner.stores) + ["equivalent?"]
    rows = []
    for query in QUERIES_TO_RUN:
        results = {}
        cells = [f"Q{query}"]
        for system in sorted(runner.stores):
            timing, result = runner.run(system, query)
            results[system] = result
            cells.append(f"{timing.total_ms:.1f}")
        report = check_equivalence(query, results)
        cells.append("yes" if report.ok else f"NO: {sorted(report.disagreeing)}")
        rows.append(cells)
    print(format_table(headers, rows))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.004)
