#!/usr/bin/env python3
"""Auction-site analytics: ad-hoc XQuery over the benchmark database.

The paper motivates XMark with "electronic commerce sites and content
providers" running analytical workloads over XML.  This example writes
*new* queries (not part of the twenty) against the auction document using
the public compile/evaluate API — the workflow of a downstream analyst.

Run with:  python examples/auction_analytics.py
"""

from repro import generate_string, make_store, bulkload
from repro.benchmark.systems import get_profile
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

ANALYTICS = {
    "Auctions still open per region (items referenced by open auctions)": """
        for $r in /site/regions/europe
        return count($r/item)
    """,
    "Total money spent on closed auctions": """
        sum(for $c in /site/closed_auctions/closed_auction
            return $c/price/text())
    """,
    "Average bid count of open auctions with a reserve": """
        count(for $a in /site/open_auctions/open_auction
              where not(empty($a/reserve))
              return $a/bidder)
    """,
    "High-value auctions (current > 3x initial)": """
        for $a in /site/open_auctions/open_auction
        where $a/current/text() > 3 * $a/initial/text()
        return <hot id="{$a/@id}" current="{$a/current/text()}"/>
    """,
    "Sellers who are also buyers": """
        count(for $p in /site/people/person
              let $sold := for $c in /site/closed_auctions/closed_auction
                           where $c/seller/@person = $p/@id
                           return $c
              let $bought := for $c in /site/closed_auctions/closed_auction
                             where $c/buyer/@person = $p/@id
                             return $c
              where not(empty($sold)) and not(empty($bought))
              return $p)
    """,
}


def main() -> None:
    document = generate_string(0.005)
    store = make_store("D")
    report = bulkload(store, document, "D")
    print(f"Loaded {len(document):,} bytes into System D in {report.seconds:.2f}s\n")

    profile = get_profile("D")
    for title, query in ANALYTICS.items():
        compiled = compile_query(query, store, profile)
        result = evaluate(compiled)
        print(f"-- {title}")
        output = result.serialize()
        print(output if len(output) < 500 else output[:500] + " ...")
        print()


if __name__ == "__main__":
    main()
