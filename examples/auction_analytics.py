#!/usr/bin/env python3
"""Auction-site analytics: ad-hoc XQuery over the benchmark database.

The paper motivates XMark with "electronic commerce sites and content
providers" running analytical workloads over XML.  This example writes
*new* queries (not part of the twenty) against the auction document
through the embedded-database facade — the workflow of a downstream
analyst: one ``repro.connect()``, one session, streaming cursors.

Run with:  python examples/auction_analytics.py [scale]
"""

import sys

import repro

ANALYTICS = {
    "Auctions still open per region (items referenced by open auctions)": """
        for $r in /site/regions/europe
        return count($r/item)
    """,
    "Total money spent on closed auctions": """
        sum(for $c in /site/closed_auctions/closed_auction
            return $c/price/text())
    """,
    "Average bid count of open auctions with a reserve": """
        count(for $a in /site/open_auctions/open_auction
              where not(empty($a/reserve))
              return $a/bidder)
    """,
    "High-value auctions (current > 3x initial)": """
        for $a in /site/open_auctions/open_auction
        where $a/current/text() > 3 * $a/initial/text()
        return <hot id="{$a/@id}" current="{$a/current/text()}"/>
    """,
    "Sellers who are also buyers": """
        count(for $p in /site/people/person
              let $sold := for $c in /site/closed_auctions/closed_auction
                           where $c/seller/@person = $p/@id
                           return $c
              let $bought := for $c in /site/closed_auctions/closed_auction
                             where $c/buyer/@person = $p/@id
                             return $c
              where not(empty($sold)) and not(empty($bought))
              return $p)
    """,
}


def main(scale: float = 0.005) -> None:
    document = repro.generate_string(scale)
    with repro.connect(document, systems=("D",)) as db:
        report = db.load_reports["D"]
        print(f"Loaded {len(document):,} bytes into System D "
              f"in {report.seconds:.2f}s\n")
        with db.session() as session:
            for title, query in ANALYTICS.items():
                cursor = session.execute(query)
                print(f"-- {title}")
                shown = 0
                for item in cursor:      # results stream row by row
                    if shown < 8:
                        print(cursor.rowtext(item))
                    shown += 1
                if shown > 8:
                    print(f"... and {shown - 8} more")
                print()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.005)
