#!/usr/bin/env python3
"""Quickstart: connect to an embedded database and stream query results.

Covers the full pipeline in ~30 lines: xmlgen -> repro.connect() ->
session -> streaming cursor.
Run with:  python examples/quickstart.py [scale]
"""

import sys

import repro
from repro.benchmark.queries import QUERIES


def main(scale: float = 0.002) -> None:
    print(f"Generating the auction document at scaling factor {scale}...")
    document = repro.generate_string(scale)
    print(f"  {len(document):,} bytes\n")

    print("Connecting (System D: main memory + structural summary)...")
    with repro.connect(document, systems=("D",)) as db:
        report = db.load_reports["D"]
        print(f"  loaded in {report.seconds:.2f}s, "
              f"database {report.database_bytes:,} bytes\n")

        with db.session() as session:
            for number in (1, 8, 20):
                spec = QUERIES[number]
                print(f"Q{number} ({spec.group}): {spec.description}")
                cursor = session.execute(number)
                shown = 0
                for item in cursor:          # rows stream as they are produced
                    if shown < 4:
                        print(f"  {cursor.rowtext(item)}")
                    shown += 1
                if shown > 4:
                    print(f"  ... and {shown - 4} more")
                print(f"  -> {shown} item(s); "
                      f"compile {cursor.compile_seconds * 1000:.1f} ms\n")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.002)
