#!/usr/bin/env python3
"""Quickstart: generate a document, load a store, run a query.

Covers the full pipeline in ~30 lines: xmlgen -> bulkload -> XQuery.
Run with:  python examples/quickstart.py
"""

from repro import BenchmarkRunner, generate_string
from repro.benchmark.queries import QUERIES

SCALE = 0.002  # ~200 kB document; scale 1.0 is the paper's 100 MB standard


def main() -> None:
    print(f"Generating the auction document at scaling factor {SCALE}...")
    document = generate_string(SCALE)
    print(f"  {len(document):,} bytes\n")

    print("Bulkloading into System D (main memory + structural summary)...")
    runner = BenchmarkRunner(document, systems=("D",))
    report = runner.load_reports["D"]
    print(f"  loaded in {report.seconds:.2f}s, database {report.database_bytes:,} bytes\n")

    for number in (1, 8, 20):
        spec = QUERIES[number]
        print(f"Q{number} ({spec.group}): {spec.description}")
        timing, result = runner.run("D", number)
        preview = result.serialize()
        if len(preview) > 400:
            preview = preview[:400] + " ..."
        print(preview)
        print(f"  -> {len(result)} item(s) in {timing.total_ms:.1f} ms\n")


if __name__ == "__main__":
    main()
