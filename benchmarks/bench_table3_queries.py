"""Table 3: query latencies for Systems A-F on the paper's thirteen queries.

Paper rows (ms at f = 1.0, 550 MHz PIII):

    Q1   A 689    B 784    C 257    D 120    E 1597   F 2814
    Q6   A 293    B 331    C 509    D 10     E 336    F 508
    Q10  A 3.4e6  B 86886  C 1568   D 22000  E 54721  F 69422
    Q11  A 2.0e5  B 2.5e6  C 2.5e6  D 8700   E 6.0e5  F 7.4e5
    ...

Each (system, query) cell is one benchmark; the shape bench at the end
asserts the orderings the paper highlights.
"""

import pytest

from repro.benchmark.queries import TABLE3_QUERIES

SYSTEMS = ("A", "B", "C", "D", "E", "F")


@pytest.mark.parametrize("query", TABLE3_QUERIES)
@pytest.mark.parametrize("system", SYSTEMS)
def bench_query(benchmark, runner, system, query):
    def run():
        return runner.run(system, query)[0]

    timing = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["total_ms"] = round(timing.total_ms, 2)
    benchmark.extra_info["result_size"] = timing.result_size


def bench_table3_shape(benchmark, runner):
    """The paper's headline orderings, asserted from one full matrix run."""
    def run():
        grid = {}
        for system in SYSTEMS:
            for query in TABLE3_QUERIES:
                best = None
                for _ in range(2):
                    timing = runner.run(system, query)[0]
                    if best is None or timing.total_seconds < best:
                        best = timing.total_seconds
                grid[(system, query)] = best * 1000
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    def row(query):
        return {system: grid[(system, query)] for system in SYSTEMS}

    # Q1: D at the front (ID lookup); sub-millisecond cells carry noise, so
    # pin "within 1.5x of the best" rather than a strict win.
    q1 = row(1)
    assert q1["D"] <= 1.5 * min(q1.values()), f"Q1: D must lead, got {q1}"
    # Q6/Q7 (regular paths): D at or near the front thanks to the summary —
    # within 2x of the best system (paper: 10 ms vs 293+ for others).
    for query in (6, 7):
        values = row(query)
        assert values["D"] <= 2.0 * min(values.values()), f"Q{query}: {values}"
    # Q11/Q12 (value joins): D's hand-optimized sorted plan is at least 10x
    # faster than every nested-loop system (paper: 8.7 s vs 205-2500 s).
    for query in (11, 12):
        values = row(query)
        others = [v for s, v in values.items() if s != "D"]
        assert values["D"] * 10 <= min(others), f"Q{query}: {values}"
    # Q12 cheaper than Q11 on every system (selective outer filter).
    for system in SYSTEMS:
        assert grid[(system, 12)] <= grid[(system, 11)] * 1.5
    # Q5 (casting) is uniform: no system an order of magnitude off.
    q5 = row(5)
    assert max(q5.values()) < 10 * min(q5.values()), f"Q5 spread: {q5}"
    for (system, query), value in sorted(grid.items()):
        benchmark.extra_info[f"{system}_Q{query}_ms"] = round(value, 2)
