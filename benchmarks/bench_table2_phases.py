"""Table 2: compilation vs execution split of Q1 and Q2 on Systems A, B, C.

Paper: System B spends twice System A's share of time on compilation (51%
vs 25% of total on Q1) because its fragmenting mapping forces far more
metadata accesses; System C's DTD-derived schema executes Q2 with the best
CPU utilisation.

Wall-clock shares in a single-process Python reproduction carry noise, so
the *asserted* shape is the deterministic driver the paper identifies:
metadata-access volume ordering B > A, with C in between.
"""

import pytest


@pytest.mark.parametrize("query", (1, 2))
@pytest.mark.parametrize("system", ("A", "B", "C"))
def bench_compile_execute_split(benchmark, runner, system, query):
    def run():
        return runner.run(system, query)[0]

    timing = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["compile_ms"] = round(timing.compile_seconds * 1000, 3)
    benchmark.extra_info["execute_ms"] = round(timing.execute_seconds * 1000, 3)
    benchmark.extra_info["compile_share_pct"] = round(timing.compile_share * 100, 1)
    benchmark.extra_info["metadata_accesses"] = timing.metadata_accesses


@pytest.mark.parametrize("query", (1, 2))
def bench_metadata_volume_shape(benchmark, runner, query):
    """The Table 2 driver: B touches more metadata at compile than A."""
    def run():
        return {system: runner.run(system, query)[0] for system in ("A", "B", "C")}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    metadata = {system: t.metadata_accesses for system, t in timings.items()}
    for system, count in metadata.items():
        benchmark.extra_info[f"metadata_{system}"] = count
    assert metadata["B"] > metadata["A"], "fragmenting mapping compiles heavier"
    assert metadata["B"] > metadata["C"]
