"""First-row latency of streaming cursors vs full materialization.

The embedded facade's cursors are backed by the evaluator's lazy pipeline
(:func:`repro.xquery.evaluator.evaluate_stream`): a plan that used to
materialize its whole ``QueryResult`` before returning now yields items
as bindings qualify.  This bench prices exactly that redesign on
large-result queries:

* **first-row latency** — prepared-query execute + ``fetchone()``: the
  streaming cursor produces row 1 after evaluating only the bindings
  before it; the materialized path has evaluated *everything* by then;
* **peak result-buffer size** — items the engine holds at the moment the
  first row is delivered: 1 for the pipeline, the full result size for
  the materialized path;
* **full-drain time** — ``fetchall()`` on both, to show the pipeline's
  end-to-end overhead is noise.

Every cell first asserts in-run that the streamed ``fetchall()`` is
bit-identical to the eager evaluator's result — a faster first row of a
*different* result would be worthless.

The query set is the large-result end of the benchmark: Q2 (one
constructed element per open auction), Q13 (reconstruction of whole item
subtrees), Q14 (full-text scan over ``//item``), Q17 (missing-element
scan over persons), plus Q19 as the documented counter-case — its
``order by`` is a pipeline barrier, so streaming cannot beat
materialization there and is not expected to.

Acceptance (exit status 1 when not met): streaming first-row latency
strictly below the materialized first-row latency on at least two of the
measured queries.

Runs two ways:

* under pytest-benchmark like the sibling benches (``bench_*`` functions);
* standalone — ``python benchmarks/bench_cursor_streaming.py [--tiny]
  [--json out.json]`` — emitting a pytest-benchmark-shaped JSON document,
  which is what CI's cursor-streaming smoke step exercises.
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from _emit import build_report, emit_report

STREAMING_QUERIES = (2, 13, 14, 17, 19)
BARRIER_QUERIES = frozenset((19,))      # order-by: no first-row win expected
DEFAULT_SYSTEM = "D"
BENCH_SCALE = 0.02
TINY_SCALE = 0.005
REQUIRED_WINS = 2


def time_best(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_cell(session, system: str, query: int, rounds: int) -> dict:
    """One query's streaming-vs-materialized cell, verified identical."""
    prepared = session.prepare(query, system=system)

    eager = prepared.execute(stream=False)
    expected = eager.serialize()
    result_size = eager.rowcount
    streamed = prepared.execute(stream=True)
    if streamed.serialize() != expected:
        raise AssertionError(
            f"Q{query} on System {system}: streamed fetchall differs "
            "from the eager result")

    def first_row_streaming():
        cursor = prepared.execute(stream=True)
        cursor.fetchone()

    def first_row_materialized():
        cursor = prepared.execute(stream=False)
        cursor.fetchone()

    stream_first = time_best(first_row_streaming, rounds)
    mat_first = time_best(first_row_materialized, rounds)
    stream_drain = time_best(
        lambda: prepared.execute(stream=True).fetchall(), rounds)
    mat_drain = time_best(
        lambda: prepared.execute(stream=False).fetchall(), rounds)
    return {
        "system": system,
        "query": query,
        "result_size": result_size,
        "stream_first_row_ms": round(stream_first * 1000.0, 4),
        "materialized_first_row_ms": round(mat_first * 1000.0, 4),
        "first_row_speedup": round(mat_first / stream_first, 2)
        if stream_first > 0 else 0.0,
        "stream_drain_ms": round(stream_drain * 1000.0, 4),
        "materialized_drain_ms": round(mat_drain * 1000.0, 4),
        "peak_buffer_items_stream": 1 if result_size else 0,
        "peak_buffer_items_materialized": result_size,
        "pipeline_barrier": query in BARRIER_QUERIES,
        "results_equal": True,
    }


def check_acceptance(cells: list[dict]) -> list[str]:
    """Streaming first row must strictly beat materialization on at least
    ``REQUIRED_WINS`` queries."""
    wins = [cell for cell in cells
            if cell["stream_first_row_ms"] < cell["materialized_first_row_ms"]]
    if len(wins) >= REQUIRED_WINS:
        return []
    return [
        f"streaming first-row beat materialization on only {len(wins)} "
        f"quer{'y' if len(wins) == 1 else 'ies'} "
        f"(need {REQUIRED_WINS}): " + ", ".join(
            f"Q{cell['query']} stream {cell['stream_first_row_ms']} ms vs "
            f"materialized {cell['materialized_first_row_ms']} ms"
            for cell in cells)
    ]


# -- pytest-benchmark entry points (same harness as the sibling benches) ------------


@pytest.mark.parametrize("query", STREAMING_QUERIES)
def bench_first_row_streaming(benchmark, runner, query):
    session = runner.database.session()
    prepared = session.prepare(query, system=DEFAULT_SYSTEM)
    benchmark.pedantic(lambda: prepared.execute(stream=True).fetchone(),
                       rounds=5, iterations=1)


@pytest.mark.parametrize("query", STREAMING_QUERIES)
def bench_first_row_materialized(benchmark, runner, query):
    session = runner.database.session()
    prepared = session.prepare(query, system=DEFAULT_SYSTEM)
    benchmark.pedantic(lambda: prepared.execute(stream=False).fetchone(),
                       rounds=5, iterations=1)


def bench_streaming_shape(benchmark, runner):
    """One-shot direction check: first rows arrive early on ≥2 queries."""
    session = runner.database.session()

    def run():
        return [run_cell(session, DEFAULT_SYSTEM, query, rounds=3)
                for query in STREAMING_QUERIES]

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    for cell in cells:
        benchmark.extra_info[f"q{cell['query']}_first_row_speedup"] = (
            cell["first_row_speedup"])
    failures = check_acceptance(cells)
    assert not failures, failures


# -- standalone runner ---------------------------------------------------------------


def _record(cell: dict) -> dict:
    """One pytest-benchmark-shaped record (stats = streaming first row)."""
    name = f"cursor_streaming[{cell['system']}-Q{cell['query']}]"
    return {
        "group": "cursor-streaming",
        "name": name,
        "fullname": f"bench_cursor_streaming.py::{name}",
        "params": {"system": cell["system"], "query": cell["query"]},
        "stats": {"min": cell["stream_first_row_ms"] / 1000.0,
                  "max": cell["stream_first_row_ms"] / 1000.0,
                  "mean": cell["stream_first_row_ms"] / 1000.0,
                  "stddev": 0.0, "rounds": 1, "iterations": 1},
        "extra_info": dict(cell),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="first-row latency: streaming cursors vs materialization")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke mode: smaller document")
    parser.add_argument("--factor", type=float, default=None,
                        help=f"document scaling factor (default {BENCH_SCALE}; "
                             f"--tiny: {TINY_SCALE})")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per cell, best-of (default 5)")
    parser.add_argument("--system", default=DEFAULT_SYSTEM,
                        choices=list("ABCDEFG"),
                        help=f"system to measure on (default {DEFAULT_SYSTEM})")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the report to this file (default: stdout only)")
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (
        TINY_SCALE if args.tiny else BENCH_SCALE)

    print(f"generating document at f={factor} ...", file=sys.stderr)
    import repro
    text = repro.generate_string(factor)
    print(f"loading System {args.system} ({len(text):,} bytes) ...",
          file=sys.stderr)
    with repro.connect(text, systems=(args.system,)) as db:
        session = db.session()
        cells = []
        for query in STREAMING_QUERIES:
            cell = run_cell(session, args.system, query, args.rounds)
            cells.append(cell)
            marker = " (order-by barrier)" if cell["pipeline_barrier"] else ""
            print(f"  Q{query:<3d} first row: stream "
                  f"{cell['stream_first_row_ms']:>9.3f} ms vs materialized "
                  f"{cell['materialized_first_row_ms']:>9.3f} ms "
                  f"({cell['first_row_speedup']:>6.2f}x, "
                  f"{cell['result_size']} rows, buffer "
                  f"{cell['peak_buffer_items_stream']} vs "
                  f"{cell['peak_buffer_items_materialized']}){marker}",
                  file=sys.stderr)

    failures = check_acceptance(cells)
    acceptance = {
        "criterion": f"streaming first-row latency strictly beats full "
                     f"materialization on >= {REQUIRED_WINS} large-result "
                     "queries (streamed results verified bit-identical "
                     "in-run)",
        "ok": not failures,
        "failures": failures,
        "wins": [f"Q{cell['query']}" for cell in cells
                 if cell["stream_first_row_ms"]
                 < cell["materialized_first_row_ms"]],
    }
    report = build_report(
        version="1.0",
        records=[_record(cell) for cell in cells],
        config={"factor": factor, "rounds": args.rounds,
                "system": args.system,
                "queries": list(STREAMING_QUERIES)},
        acceptance=acceptance,
    )
    emit_report("cursor_streaming", report, args.json_path)
    for failure in failures:
        print(f"ACCEPTANCE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
