"""Durability pricing: WAL append overhead and recovery vs cold rebuild.

PR 7 adds a write-ahead log, snapshots, and crash recovery.  Two claims
need numbers:

* **Append overhead** — a durable connection logs (and, under
  ``sync="commit"``, fsyncs) every commit *before* applying it.  This
  bench applies the same deterministic update history through four
  connections — non-durable baseline, then ``sync="none"`` (framing
  only), ``sync="batch"`` (group commit), ``sync="commit"`` (fsync per
  commit) — and reports per-op cost per mode.  Overhead is reported,
  not gated: fsync cost is the storage stack's, not ours.
* **Recovery beats rebuild** — the point of durability here: reopening
  a durable directory (load snapshot + replay the WAL suffix through
  the real update engine) must be strictly cheaper than reconstructing
  the same state cold (generate the document + bulkload + re-apply the
  history).  Measured both with the base snapshot (full-history replay)
  and after ``checkpoint()`` (snapshot only, zero replay); both must
  beat the cold path — that is the acceptance gate (exit 1).

Correctness is asserted in-run: every recovery must land on the live
connection's digest-chain value.

Runs two ways:

* under pytest-benchmark like the sibling benches (``bench_*`` functions);
* standalone — ``python benchmarks/bench_wal_recovery.py [--tiny]
  [--json out.json]`` — emitting a pytest-benchmark-shaped JSON
  document, which is what CI's durability gate step exercises.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

import pytest

from _emit import build_report, emit_report

BENCH_SCALE = 0.005
TINY_SCALE = 0.002
DEFAULT_OPS = 30
SYNC_MODES = ("none", "batch", "commit")


def build_history(text: str, n_ops: int, seed: int = 97):
    """A fixed op list, generated against (a scratch copy of) ``text``."""
    from repro.benchmark.systems import make_store
    from repro.update.engine import apply_update
    from repro.update.stream import UpdateStream

    store = make_store("F")
    store.load(text)
    stream = UpdateStream(store, seed=seed)
    ops = []
    for _ in range(n_ops):
        op = stream.next_op()
        stream.note_applied(op)
        apply_update(store, op)
        ops.append(op)
    return ops


def time_apply(text: str, ops, directory: str | None, sync: str,
               rounds: int) -> float:
    """Best-of-``rounds`` seconds to commit ``ops`` through one
    connection; each round starts from a fresh connection (and a fresh
    durable directory, when durable)."""
    import repro

    best = float("inf")
    for _ in range(rounds):
        workdir = Path(tempfile.mkdtemp(prefix="walbench-")) if directory \
            else None
        db = repro.connect(
            text, systems=("F",),
            durable=str(workdir / "d") if workdir else None, sync=sync)
        try:
            started = time.perf_counter()
            for op in ops:
                db.apply_transaction([op])
            best = min(best, time.perf_counter() - started)
        finally:
            db.close()
            if workdir:
                shutil.rmtree(workdir, ignore_errors=True)
    return best


def measure_append(text: str, ops, rounds: int) -> list[dict]:
    baseline = time_apply(text, ops, None, "commit", rounds)
    cells = [{"mode": "baseline", "total_ms": round(baseline * 1000.0, 3),
              "per_op_us": round(baseline / len(ops) * 1e6, 1),
              "overhead_pct": 0.0}]
    for mode in SYNC_MODES:
        seconds = time_apply(text, ops, "durable", mode, rounds)
        cells.append({
            "mode": mode,
            "total_ms": round(seconds * 1000.0, 3),
            "per_op_us": round(seconds / len(ops) * 1e6, 1),
            "overhead_pct": round((seconds / baseline - 1.0) * 100.0, 2)
            if baseline > 0 else 0.0,
        })
    return cells


def measure_recovery(factor: float, text: str, ops, rounds: int) -> dict:
    """Recovery (base snapshot + replay, then post-checkpoint) vs the
    cold path (generate + load + re-apply), digests verified equal."""
    import repro
    from repro.benchmark.systems import make_store
    from repro.storage.wal import recover
    from repro.update.engine import apply_update

    workdir = Path(tempfile.mkdtemp(prefix="walbench-"))
    try:
        deploy = str(workdir / "d")
        db = repro.connect(text, systems=("F",), durable=deploy,
                           sync="commit")
        for op in ops:
            db.apply_transaction([op])
        live_digest = db.store("F").document_digest()
        db.close()

        def time_recover() -> tuple[float, object]:
            best, report = float("inf"), None
            for _ in range(rounds):
                started = time.perf_counter()
                report = recover(deploy)
                best = min(best, time.perf_counter() - started)
            return best, report

        replay_s, report = time_recover()
        if report.digest != live_digest:
            raise AssertionError("recovery diverged from the live digest")
        if report.replayed != len(ops):
            raise AssertionError(
                f"expected {len(ops)} replayed, got {report.replayed}")

        db = repro.connect(None, durable=deploy)
        db.checkpoint()
        db.close()
        snapshot_s, report = time_recover()
        if report.digest != live_digest or report.replayed != 0:
            raise AssertionError("post-checkpoint recovery diverged")

        def cold() -> None:
            rebuilt = make_store("F")
            rebuilt.load(repro.generate_string(factor))
            for op in ops:
                apply_update(rebuilt, op)

        cold_s = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            cold()
            cold_s = min(cold_s, time.perf_counter() - started)

        return {
            "cold_rebuild_ms": round(cold_s * 1000.0, 3),
            "recover_replay_ms": round(replay_s * 1000.0, 3),
            "recover_snapshot_ms": round(snapshot_s * 1000.0, 3),
            "replay_speedup": round(cold_s / replay_s, 2)
            if replay_s > 0 else 0.0,
            "snapshot_speedup": round(cold_s / snapshot_s, 2)
            if snapshot_s > 0 else 0.0,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def check_acceptance(recovery: dict) -> list[str]:
    """Both recovery paths must strictly beat the cold rebuild."""
    failures = []
    for key, label in (("recover_replay_ms", "snapshot+replay recovery"),
                       ("recover_snapshot_ms", "post-checkpoint recovery")):
        if recovery[key] >= recovery["cold_rebuild_ms"]:
            failures.append(
                f"{label} ({recovery[key]:.3f} ms) does not strictly beat "
                f"cold generate+load+re-apply "
                f"({recovery['cold_rebuild_ms']:.3f} ms)")
    return failures


# -- pytest-benchmark entry points (same harness as the sibling benches) ------------


@pytest.mark.parametrize("mode", SYNC_MODES)
def bench_wal_append(benchmark, bench_text, mode):
    ops = build_history(bench_text, 10)
    benchmark.pedantic(
        lambda: time_apply(bench_text, ops, "durable", mode, rounds=1),
        rounds=3, iterations=1)


def bench_wal_recovery_shape(benchmark, bench_text):
    """One-shot gate check: recovery strictly beats the cold rebuild."""
    ops = build_history(bench_text, 10)

    def run():
        return measure_recovery(BENCH_SCALE, bench_text, ops, rounds=2)

    recovery = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(recovery)
    failures = check_acceptance(recovery)
    assert not failures, failures


# -- standalone runner ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="WAL append overhead per sync mode; recovery vs "
                    "cold rebuild (gated)")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke mode: smaller document")
    parser.add_argument("--factor", type=float, default=None,
                        help=f"document scaling factor (default {BENCH_SCALE}; "
                             f"--tiny: {TINY_SCALE})")
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS,
                        help=f"update history length (default {DEFAULT_OPS})")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per cell, best-of (default 3)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the report to this file (default: stdout only)")
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (
        TINY_SCALE if args.tiny else BENCH_SCALE)

    print(f"generating document at f={factor} ...", file=sys.stderr)
    import repro
    text = repro.generate_string(factor)
    print(f"building a {args.ops}-op history ({len(text):,} bytes) ...",
          file=sys.stderr)
    ops = build_history(text, args.ops)

    append_cells = measure_append(text, ops, args.rounds)
    for cell in append_cells:
        print(f"  append {cell['mode']:<9s} {cell['total_ms']:>9.3f} ms "
              f"({cell['per_op_us']:>8.1f} us/op, "
              f"{cell['overhead_pct']:>+7.2f}%)", file=sys.stderr)

    recovery = measure_recovery(factor, text, ops, args.rounds)
    print(f"  cold rebuild        {recovery['cold_rebuild_ms']:>9.3f} ms\n"
          f"  recover (replay)    {recovery['recover_replay_ms']:>9.3f} ms "
          f"({recovery['replay_speedup']:.2f}x)\n"
          f"  recover (snapshot)  {recovery['recover_snapshot_ms']:>9.3f} ms "
          f"({recovery['snapshot_speedup']:.2f}x)", file=sys.stderr)

    failures = check_acceptance(recovery)
    records = [{
        "group": "wal-append",
        "name": f"wal_append[{cell['mode']}]",
        "fullname": f"bench_wal_recovery.py::wal_append[{cell['mode']}]",
        "params": {"mode": cell["mode"], "ops": args.ops},
        "stats": {"min": cell["total_ms"] / 1000.0,
                  "max": cell["total_ms"] / 1000.0,
                  "mean": cell["total_ms"] / 1000.0,
                  "stddev": 0.0, "rounds": args.rounds, "iterations": 1},
        "extra_info": dict(cell),
    } for cell in append_cells]
    for key in ("cold_rebuild_ms", "recover_replay_ms",
                "recover_snapshot_ms"):
        records.append({
            "group": "wal-recovery",
            "name": f"wal_recovery[{key}]",
            "fullname": f"bench_wal_recovery.py::wal_recovery[{key}]",
            "params": {"ops": args.ops},
            "stats": {"min": recovery[key] / 1000.0,
                      "max": recovery[key] / 1000.0,
                      "mean": recovery[key] / 1000.0,
                      "stddev": 0.0, "rounds": args.rounds, "iterations": 1},
            "extra_info": dict(recovery),
        })
    acceptance = {
        "criterion": "reopening the durable directory (snapshot + WAL "
                     "replay, and snapshot-only after checkpoint) is "
                     "strictly faster than rebuilding the same state cold "
                     "(generate + load + re-apply); recovered digest equals "
                     "the live digest",
        "ok": not failures,
        "failures": failures,
        **recovery,
    }
    report = build_report(
        version="1.0",
        records=records,
        config={"factor": factor, "ops": args.ops, "rounds": args.rounds,
                "sync_modes": list(SYNC_MODES)},
        acceptance=acceptance,
    )
    emit_report("wal_recovery", report, args.json_path)
    for failure in failures:
        print(f"ACCEPTANCE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
