"""Figure 4: the embedded System G on 100 kB and 1 MB documents, all queries.

Paper: G could not load scale 1.0 at all; on 100 kB no query took longer
than 5 s and none was faster than 2.5 s (a flat interpretive band); 1 MB is
uniformly slower.

Asserted shape: every query succeeds at both small scales, the large
document is slower in aggregate, and G refuses a document beyond its
capacity.
"""

import pytest

from repro.benchmark.queries import QUERIES
from repro.errors import StorageError
from repro.storage.dom_store import DomStore

from conftest import FIGURE4_LARGE, FIGURE4_SMALL


@pytest.mark.parametrize("query", sorted(QUERIES))
@pytest.mark.parametrize("scale", (FIGURE4_SMALL, FIGURE4_LARGE))
def bench_embedded_query(benchmark, figure4_runners, scale, query):
    runner = figure4_runners[scale]

    def run():
        return runner.run("G", query)[0]

    timing = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["total_ms"] = round(timing.total_ms, 2)
    benchmark.extra_info["scale"] = scale


def bench_figure4_shape(benchmark, figure4_runners):
    def run():
        series = {}
        for scale, runner in figure4_runners.items():
            series[scale] = {
                query: runner.run("G", query)[0].total_seconds
                for query in QUERIES
            }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    small_total = sum(series[FIGURE4_SMALL].values())
    large_total = sum(series[FIGURE4_LARGE].values())
    benchmark.extra_info["small_total_ms"] = round(small_total * 1000, 1)
    benchmark.extra_info["large_total_ms"] = round(large_total * 1000, 1)
    # 10x the data must cost clearly more overall (paper: whole curve shifts).
    assert large_total > 2.0 * small_total


def bench_embedded_capacity_failure(benchmark):
    """G fails on large documents (paper: 'the embedded System G failed')."""
    def attempt():
        store = DomStore(document_limit=50_000)
        try:
            store.load("<site>" + "<x/>" * 20_000 + "</site>")
        except StorageError:
            return True
        return False

    refused = benchmark.pedantic(attempt, rounds=1, iterations=1)
    assert refused
