"""Shard-count scaling of the scatter-gather subsystem.

For 1/2/3/6 shards at two document scales (tiny/small), the same query
set runs through each deployment:

* **1 shard** is the unsharded baseline deployment — one backend store
  under its own optimizer profile, exactly what the service served
  before the shard subsystem existed.  It is also the in-run oracle:
  every sharded result is byte-compared against it before any number is
  reported.
* **2/3/6 shards** load a :class:`~repro.shard.store.ShardedStore` over
  per-shard backend instances and execute through the
  :class:`~repro.shard.scatter.ScatterGatherExecutor` with the partial-
  result cache *disabled*, so the numbers price distributed execution,
  not caching.

The default backend is System F (main-memory traversal): the scan
architecture shows what the sharded subsystem's distributed plans buy —
Q1 routes to the one shard whose hash owns ``person0`` and probes its
shard-local index, Q5 collapses to per-shard sorted-index bisections
summed at the gather, Q8 reads its join build side off the per-shard
value-index buckets and broadcasts the merged table, Q13 routes on the
region container, Q2 fans the FLWOR out and merges by global sequence.
On a single core every win in this table is algorithmic — routing does
1/N of the work, pushdown replaces scans with bisections; add cores and
the scatter pool overlaps shards on top.

Acceptance (exit status 1 when not met): on the *small* document,
6-shard Q1, Q5 and Q8 are each strictly faster than the 1-shard
baseline.

Runs two ways, like the sibling benches:

* under pytest-benchmark (``bench_*`` functions);
* standalone — ``python benchmarks/bench_shard_scaling.py [--tiny]
  [--json out.json]`` — emitting a pytest-benchmark-shaped JSON document
  (CI's shard-scaling smoke step), recorded as ``BENCH_shard_scaling.json``
  at the repo root via the shared ``_emit`` writer.
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from _emit import build_report, emit_report
from repro.benchmark.queries import query_text
from repro.benchmark.systems import get_profile, make_store, parse_system_letters
from repro.errors import BenchmarkError
from repro.shard.scatter import ScatterGatherExecutor
from repro.shard.store import ShardedStore
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

SHARD_COUNTS = (1, 2, 3, 6)
SCALING_QUERIES = (1, 2, 5, 8, 13)
GATED_QUERIES = (1, 5, 8)
DEFAULT_BACKENDS = "F"
TINY_SCALE = 0.005
SMALL_SCALE = 0.02


class Deployment:
    """One measured configuration: unsharded baseline or N-shard scatter."""

    def __init__(self, shards: int, backends: tuple[str, ...], text: str) -> None:
        self.shards = shards
        started = time.perf_counter()
        if shards == 1:
            self.store = make_store(backends[0])
            self.store.load(text)
            self._profile = get_profile(backends[0])
            self._compiled: dict[str, object] = {}
            self.executor = None
            self.label = f"1 (unsharded {backends[0]})"
        else:
            self.sharded = ShardedStore(shards, backends)
            self.sharded.load(text)
            self.executor = ScatterGatherExecutor(
                self.sharded, partial_cache_size=0)
            self.label = str(shards)
        self.load_seconds = time.perf_counter() - started

    def run(self, text: str):
        """(serialized result, plan kind) for one query text."""
        if self.executor is None:
            compiled = self._compiled.get(text)
            if compiled is None:
                compiled = compile_query(text, self.store, self._profile)
                self._compiled[text] = compiled
            return evaluate(compiled), "store"
        outcome = self.executor.execute(text)
        return outcome.result, outcome.plan_kind

    def best_seconds(self, text: str, rounds: int) -> float:
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            self.run(text)
            best = min(best, time.perf_counter() - started)
        return best

    def close(self) -> None:
        if self.executor is not None:
            self.executor.close()


def run_scale(scale_name: str, factor: float, backends: tuple[str, ...],
              rounds: int) -> list[dict]:
    """All shard counts at one document scale, oracle-checked in-run."""
    from repro.xmlgen.generator import generate_string

    print(f"generating {scale_name} document at f={factor} ...", file=sys.stderr)
    text = generate_string(factor)
    cells: list[dict] = []
    baseline = Deployment(1, backends, text)
    oracle = {query: baseline.run(query_text(query))[0].serialize()
              for query in SCALING_QUERIES}
    deployments = [baseline] + [Deployment(count, backends, text)
                                for count in SHARD_COUNTS if count > 1]
    try:
        for deployment in deployments:
            for query in SCALING_QUERIES:
                source = query_text(query)
                result, plan = deployment.run(source)
                if result.serialize() != oracle[query]:
                    raise AssertionError(
                        f"Q{query} at {deployment.shards} shard(s) diverged "
                        "from the unsharded oracle")
                seconds = deployment.best_seconds(source, rounds)
                cells.append({
                    "scale": scale_name, "factor": factor,
                    "shards": deployment.shards, "query": query,
                    "plan": plan, "ms": round(seconds * 1000.0, 4),
                    "result_size": len(result),
                    "load_s": round(deployment.load_seconds, 3),
                    "results_equal": True,
                })
            row = "  ".join(
                f"Q{cell['query']} {cell['ms']:9.3f}ms[{cell['plan']}]"
                for cell in cells if cell["shards"] == deployment.shards
                and cell["scale"] == scale_name)
            print(f"  {scale_name:<5s} shards={deployment.label:<15s} {row}",
                  file=sys.stderr)
    finally:
        for deployment in deployments:
            deployment.close()
    return cells


def check_acceptance(cells: list[dict], gate_scale: str) -> list[str]:
    """6-shard Q1/Q5/Q8 strictly faster than the 1-shard baseline on the
    gated scale."""
    failures = []
    timing = {(cell["shards"], cell["query"]): cell["ms"]
              for cell in cells if cell["scale"] == gate_scale}
    for query in GATED_QUERIES:
        one, six = timing.get((1, query)), timing.get((6, query))
        if one is None or six is None:
            failures.append(f"Q{query}: missing {gate_scale} measurements")
        elif not six < one:
            failures.append(
                f"Q{query} on the {gate_scale} document: 6-shard {six} ms "
                f"not faster than 1-shard {one} ms")
    return failures


# -- pytest-benchmark entry points (same harness as the sibling benches) ------------


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def bench_shard_q5(benchmark, bench_text, shards):
    deployment = Deployment(shards, ("F",), bench_text)
    try:
        benchmark.pedantic(lambda: deployment.run(query_text(5)),
                           rounds=3, iterations=1)
    finally:
        deployment.close()


def bench_shard_scaling_shape(benchmark, bench_text):
    """One-shot direction check: 6-shard Q1/Q5 beat the unsharded store."""
    def run():
        baseline = Deployment(1, ("F",), bench_text)
        six = Deployment(6, ("F",), bench_text)
        try:
            cells = []
            for deployment in (baseline, six):
                for query in (1, 5):
                    source = query_text(query)
                    deployment.run(source)
                    cells.append({"scale": "bench", "shards": deployment.shards,
                                  "query": query,
                                  "ms": deployment.best_seconds(source, 3)})
            return cells
        finally:
            baseline.close()
            six.close()

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    timing = {(cell["shards"], cell["query"]): cell["ms"] for cell in cells}
    for query in (1, 5):
        assert timing[(6, query)] < timing[(1, query)]


# -- standalone runner ---------------------------------------------------------------


def _record(cell: dict, seconds: float) -> dict:
    name = (f"shard_scaling[{cell['scale']}-"
            f"{cell['shards']}shard-Q{cell['query']}]")
    return {
        "group": "shard-scaling",
        "name": name,
        "fullname": f"bench_shard_scaling.py::{name}",
        "params": {"scale": cell["scale"], "shards": cell["shards"],
                   "query": cell["query"]},
        "stats": {"min": seconds, "max": seconds, "mean": seconds,
                  "stddev": 0.0, "rounds": 1, "iterations": 1},
        "extra_info": dict(cell),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="shard-count scaling of scatter-gather execution")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke mode: tiny document only (no gate)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per cell, best-of (default 5)")
    parser.add_argument("--backends", default=DEFAULT_BACKENDS,
                        help="backend letters cycled across shards (default F)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the report to this file (default: stdout only)")
    args = parser.parse_args(argv)

    try:
        backends = parse_system_letters(args.backends)
    except BenchmarkError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    scales = [("tiny", TINY_SCALE)]
    if not args.tiny:
        scales.append(("small", SMALL_SCALE))
    cells: list[dict] = []
    for scale_name, factor in scales:
        started = time.perf_counter()
        scale_cells = run_scale(scale_name, factor, backends, args.rounds)
        elapsed = time.perf_counter() - started
        for cell in scale_cells:
            cells.append(cell)
    records = [_record(cell, cell["ms"] / 1000.0) for cell in cells]

    failures: list[str] = []
    if not args.tiny:
        failures = check_acceptance(cells, "small")
    report = build_report(
        "shard-scaling-1", records,
        config={"scales": {name: factor for name, factor in scales},
                "shard_counts": list(SHARD_COUNTS),
                "queries": list(SCALING_QUERIES),
                "gated_queries": list(GATED_QUERIES),
                "backends": list(backends), "rounds": args.rounds},
        acceptance={"ok": not failures, "failures": failures,
                    "gated": not args.tiny},
    )
    emit_report("shard_scaling", report, args.json_path)
    if failures:
        print("ACCEPTANCE NOT MET: 6-shard Q1/Q5/Q8 must be strictly "
              "faster than the unsharded baseline on the small document:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
