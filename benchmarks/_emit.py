"""Shared JSON emission for the standalone benchmark runners.

Every ``bench_*.py`` standalone mode produces the same pytest-benchmark-
shaped document (``machine_info`` / ``benchmarks`` / ``config`` /
``acceptance``); this module owns the skeleton and the writing so the
formats cannot drift apart.  Besides honouring ``--json``,
:func:`emit_report` always records the report as ``BENCH_<name>.json`` at
the repository root — the machine-readable perf trajectory each CI run
refreshes and uploads, and each PR can commit.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

#: The repository root (benchmarks/ lives directly below it).
REPO_ROOT = Path(__file__).resolve().parent.parent


def machine_info() -> dict:
    return {"python_version": platform.python_version(),
            "machine": platform.machine()}


def build_report(version: str, records: list[dict], config: dict,
                 acceptance: dict | None = None) -> dict:
    """The common report skeleton around a list of benchmark records."""
    report = {
        "machine_info": machine_info(),
        "commit_info": {},
        "benchmarks": records,
        "version": version,
        "config": config,
    }
    if acceptance is not None:
        report["acceptance"] = acceptance
    return report


def emit_report(name: str, report: dict, json_path: str | None = None) -> None:
    """Write one bench report everywhere it belongs.

    * ``json_path`` given: write there (CI's artifact path) and note it on
      stderr; otherwise print the document to stdout.
    * Always: record a copy as ``BENCH_<name>.json`` at the repo root.
    """
    output = json.dumps(report, indent=2)
    recorded = REPO_ROOT / f"BENCH_{name}.json"
    recorded.write_text(output + "\n", encoding="utf-8")
    print(f"recorded {recorded}", file=sys.stderr)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
        print(f"wrote {json_path}", file=sys.stderr)
    else:
        print(output)
