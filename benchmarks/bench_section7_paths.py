"""Section 7's path-traversal remark: Q16 vs Q15 on the relational systems.

Paper: "Systems A, B and C needed about 8 times longer to execute Q16 than
they needed for Q15. This is due to the many joins that the more complicated
path expression in Q16 brings about."

At reproduction scale the asserted shape is directional: Q16 is never
cheaper than Q15 on the relational systems (Q16 adds the existence test and
seller dereference on top of Q15's traversal).
"""

import pytest


@pytest.mark.parametrize("query", (15, 16))
@pytest.mark.parametrize("system", ("A", "B", "C"))
def bench_path_traversal(benchmark, runner, system, query):
    def run():
        return runner.run(system, query)[0]

    timing = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["total_ms"] = round(timing.total_ms, 2)


def bench_q16_vs_q15_shape(benchmark, runner):
    def run():
        ratios = {}
        for system in ("A", "B", "C"):
            t15 = min(runner.run(system, 15)[0].total_seconds for _ in range(3))
            t16 = min(runner.run(system, 16)[0].total_seconds for _ in range(3))
            ratios[system] = t16 / t15
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    for system, ratio in ratios.items():
        benchmark.extra_info[f"q16_over_q15_{system}"] = round(ratio, 2)
    assert all(ratio > 0.8 for ratio in ratios.values()), ratios
