"""Observability overhead: the disabled tracer must be (nearly) free.

PR 6 threads tracing spans, a unified metrics registry, and
EXPLAIN/PROFILE through every execution layer.  The design contract is
that a connection opened *without* ``tracing=True`` pays almost nothing
for all that instrumentation: every hot-path site guards on
``tracer.enabled`` (one attribute read) and the facade's only
unconditional additions are a couple of ``perf_counter`` calls and one
registry counter increment per query.

This bench prices that contract over the full query set, Q1-Q20 on
System D, three configurations per query:

* **baseline** — the raw engine: ``evaluate()`` on a precompiled plan,
  no facade, no cursor, no registry.  This is what the pre-observability
  code effectively did per execution.
* **off** — the embedded facade with tracing disabled (the default):
  prepared query, ``execute(stream=False).fetchall()``.
* **on** — the same facade on a ``tracing=True`` connection, so every
  query builds and retains a full span tree.

Each cell takes the best of ``--rounds`` timings; the summed best times
give the per-configuration totals.

Acceptance (exit status 1 when not met): the disabled-tracer facade
total must stay within ``OVERHEAD_GATE`` (3%) of the raw-engine
baseline total.  The tracing-enabled total is reported for context but
not gated — recording spans is allowed to cost something; *not*
recording them is not.

``--wire`` adds the same three-way pricing over the socket: a default
server (the pre-instrumentation configuration — no tracer, no query
log) is the baseline; a tracer-*off* server that still carries this
PR's always-on additions (sampler plumbing, slow-trace tail rule
armed, structured query log attached) serving an untraced client is
the gated "off" column — the configuration a production deployment
runs when it wants the query log but no span trees; and a fully
instrumented server (tracing database) with a ``tracing=True`` client
(every query sampled, span subtrees serialized back over the wire) is
reported ungated.  Both suites land in one combined report.

Runs two ways:

* under pytest-benchmark like the sibling benches (``bench_*`` functions);
* standalone — ``python benchmarks/bench_obs_overhead.py [--tiny]
  [--json out.json]`` — emitting a pytest-benchmark-shaped JSON document,
  which is what CI's obs-overhead gate step exercises.
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from _emit import build_report, emit_report

QUERIES = tuple(range(1, 21))
DEFAULT_SYSTEM = "D"
BENCH_SCALE = 0.005
TINY_SCALE = 0.002
OVERHEAD_GATE = 1.03            # off-total may exceed baseline-total by <= 3%


def time_best(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def time_best_interleaved(fns, rounds: int) -> list[float]:
    """Best-of-``rounds`` for several configurations, interleaved.

    Each round times every configuration once, back to back, so slow
    drift (frequency scaling, allocator growth) lands on all columns
    evenly instead of biasing whichever one was measured last.
    """
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for index, fn in enumerate(fns):
            started = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - started)
    return best


def run_cell(query: int, compiled, prepared_off, prepared_on,
             rounds: int) -> dict:
    """One query's baseline / tracer-off / tracer-on timings.

    ``compiled`` is the raw precompiled plan; the prepared queries come
    from a tracing-disabled and a tracing-enabled connection over the
    same document.
    """
    from repro.xquery.evaluator import evaluate

    expected_rows = len(evaluate(compiled).items)
    got = len(prepared_off.execute(stream=False).fetchall())
    if got != expected_rows:
        raise AssertionError(
            f"Q{query}: facade returned {got} rows, raw engine "
            f"{expected_rows}")

    baseline, off, on = time_best_interleaved(
        (lambda: evaluate(compiled),
         lambda: prepared_off.execute(stream=False).fetchall(),
         lambda: prepared_on.execute(stream=False).fetchall()),
        rounds)
    return {
        "query": query,
        "result_size": expected_rows,
        "baseline_ms": round(baseline * 1000.0, 4),
        "off_ms": round(off * 1000.0, 4),
        "on_ms": round(on * 1000.0, 4),
        "off_overhead_pct": round((off / baseline - 1.0) * 100.0, 2)
        if baseline > 0 else 0.0,
        "on_overhead_pct": round((on / baseline - 1.0) * 100.0, 2)
        if baseline > 0 else 0.0,
    }


def check_acceptance(cells: list[dict]) -> list[str]:
    """Summed disabled-tracer facade time must stay within
    ``OVERHEAD_GATE`` of the summed raw-engine baseline."""
    baseline_total = sum(cell["baseline_ms"] for cell in cells)
    off_total = sum(cell["off_ms"] for cell in cells)
    if baseline_total > 0 and off_total <= OVERHEAD_GATE * baseline_total:
        return []
    return [
        f"disabled-tracer facade total {off_total:.3f} ms exceeds "
        f"{OVERHEAD_GATE:.2f}x the raw-engine baseline total "
        f"{baseline_total:.3f} ms "
        f"(+{(off_total / baseline_total - 1.0) * 100.0:.2f}%, "
        f"gate +{(OVERHEAD_GATE - 1.0) * 100.0:.0f}%)"
    ]


def totals(cells: list[dict]) -> dict:
    baseline = sum(cell["baseline_ms"] for cell in cells)
    off = sum(cell["off_ms"] for cell in cells)
    on = sum(cell["on_ms"] for cell in cells)
    return {
        "baseline_total_ms": round(baseline, 3),
        "off_total_ms": round(off, 3),
        "on_total_ms": round(on, 3),
        "off_overhead_pct": round((off / baseline - 1.0) * 100.0, 2)
        if baseline > 0 else 0.0,
        "on_overhead_pct": round((on / baseline - 1.0) * 100.0, 2)
        if baseline > 0 else 0.0,
    }


def run_wire_cell(query: int, remote_base, remote_off, remote_on,
                  rounds: int) -> dict:
    """One query's wire timings: default server / tracer-off server /
    instrumented-traced server (see module docstring)."""
    expected_rows = len(remote_base.execute(DEFAULT_SYSTEM, query).fetchall())
    got = len(remote_off.execute(DEFAULT_SYSTEM, query).fetchall())
    if got != expected_rows:
        raise AssertionError(
            f"Q{query} over the wire: tracer-off server returned {got} "
            f"rows, default server {expected_rows}")

    baseline, off, on = time_best_interleaved(
        (lambda: remote_base.execute(DEFAULT_SYSTEM, query).fetchall(),
         lambda: remote_off.execute(DEFAULT_SYSTEM, query).fetchall(),
         lambda: remote_on.execute(DEFAULT_SYSTEM, query).fetchall()),
        rounds)
    return {
        "query": query,
        "mode": "wire",
        "result_size": expected_rows,
        "baseline_ms": round(baseline * 1000.0, 4),
        "off_ms": round(off * 1000.0, 4),
        "on_ms": round(on * 1000.0, 4),
        "off_overhead_pct": round((off / baseline - 1.0) * 100.0, 2)
        if baseline > 0 else 0.0,
        "on_overhead_pct": round((on / baseline - 1.0) * 100.0, 2)
        if baseline > 0 else 0.0,
    }


def check_wire_acceptance(cells: list[dict]) -> list[str]:
    """Summed untraced-client time against the instrumented server must
    stay within ``OVERHEAD_GATE`` of the default-server baseline."""
    baseline_total = sum(cell["baseline_ms"] for cell in cells)
    off_total = sum(cell["off_ms"] for cell in cells)
    if baseline_total > 0 and off_total <= OVERHEAD_GATE * baseline_total:
        return []
    return [
        f"tracer-off wire serving total {off_total:.3f} ms exceeds "
        f"{OVERHEAD_GATE:.2f}x the default-server baseline total "
        f"{baseline_total:.3f} ms "
        f"(+{(off_total / baseline_total - 1.0) * 100.0:.2f}%, "
        f"gate +{(OVERHEAD_GATE - 1.0) * 100.0:.0f}%)"
    ]


def _prepare_wire(text: str, system: str, query_log_path: str):
    """Three servers and three clients (see module docstring): returns
    ``(handles, remotes)`` — stop every handle, close every remote."""
    import repro
    from repro.server import XMarkServer, connect_url, serve_in_thread

    db_base = repro.connect(text, systems=(system,))
    server_base = XMarkServer(queue_depth=64)
    server_base.add_document("auction", db_base, owned=True)
    handle_base = serve_in_thread(server_base)

    db_off = repro.connect(text, systems=(system,))
    server_off = XMarkServer(                # tracer off, query log on
        queue_depth=64,
        trace_sample_rate=0.0,
        slow_trace_ms=60_000.0,
        query_log=f"{query_log_path}.off",
    )
    server_off.add_document("auction", db_off, owned=True)
    handle_off = serve_in_thread(server_off)

    db_instr = repro.connect(text, systems=(system,), tracing=True)
    server_instr = XMarkServer(
        queue_depth=64,
        tracer=db_instr.tracer,
        query_log=query_log_path,
    )
    server_instr.add_document("auction", db_instr, owned=True)
    handle_instr = serve_in_thread(server_instr)

    remote_base = connect_url(handle_base.url)
    remote_off = connect_url(handle_off.url)
    remote_on = connect_url(handle_instr.url, tracing=True)
    return ((handle_base, handle_off, handle_instr),
            (remote_base, remote_off, remote_on))


def _prepare_connections(text: str, system: str):
    """(compiled plans, tracer-off prepared, tracer-on prepared, dbs)."""
    import repro
    from repro.benchmark.queries import query_text
    from repro.benchmark.systems import get_profile, make_store
    from repro.xquery.planner import compile_query

    store = make_store(system)
    store.load(text)
    profile = get_profile(system)
    compiled = {q: compile_query(query_text(q), store, profile)
                for q in QUERIES}

    db_off = repro.connect(text, systems=(system,))
    db_on = repro.connect(text, systems=(system,), tracing=True)
    session_off = db_off.session()
    session_on = db_on.session()
    prepared_off = {q: session_off.prepare(q, system=system) for q in QUERIES}
    prepared_on = {q: session_on.prepare(q, system=system) for q in QUERIES}
    return compiled, prepared_off, prepared_on, (db_off, db_on)


# -- pytest-benchmark entry points (same harness as the sibling benches) ------------


@pytest.mark.parametrize("query", (1, 5, 8, 14, 19))
def bench_facade_tracer_off(benchmark, runner, query):
    session = runner.database.session()
    prepared = session.prepare(query, system=DEFAULT_SYSTEM)
    benchmark.pedantic(lambda: prepared.execute(stream=False).fetchall(),
                       rounds=5, iterations=1)


@pytest.mark.parametrize("query", (1, 5, 8, 14, 19))
def bench_raw_engine_baseline(benchmark, runner, query):
    database = runner.database
    compiled = database.compile(DEFAULT_SYSTEM, database.query_text(query))
    from repro.xquery.evaluator import evaluate
    benchmark.pedantic(lambda: evaluate(compiled), rounds=5, iterations=1)


def bench_obs_overhead_shape(benchmark, runner):
    """One-shot gate check: disabled-tracer total within 3% of baseline."""
    text = runner.database.document

    def run():
        compiled, prepared_off, prepared_on, dbs = _prepare_connections(
            text, DEFAULT_SYSTEM)
        try:
            return [run_cell(q, compiled[q], prepared_off[q], prepared_on[q],
                             rounds=3) for q in QUERIES]
        finally:
            for db in dbs:
                db.close()

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = totals(cells)
    benchmark.extra_info.update(summary)
    failures = check_acceptance(cells)
    assert not failures, failures


# -- standalone runner ---------------------------------------------------------------


def _record(cell: dict) -> dict:
    """One pytest-benchmark-shaped record (stats = tracer-off timing)."""
    mode = cell.get("mode", "embedded")
    prefix = "wire-" if mode == "wire" else ""
    name = f"obs_overhead[{prefix}{DEFAULT_SYSTEM}-Q{cell['query']}]"
    return {
        "group": "obs-overhead",
        "name": name,
        "fullname": f"bench_obs_overhead.py::{name}",
        "params": {"system": DEFAULT_SYSTEM, "query": cell["query"],
                   "mode": mode},
        "stats": {"min": cell["off_ms"] / 1000.0,
                  "max": cell["off_ms"] / 1000.0,
                  "mean": cell["off_ms"] / 1000.0,
                  "stddev": 0.0, "rounds": 1, "iterations": 1},
        "extra_info": dict(cell),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="null-tracer overhead: raw engine vs facade off/on")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke mode: smaller document")
    parser.add_argument("--factor", type=float, default=None,
                        help=f"document scaling factor (default {BENCH_SCALE}; "
                             f"--tiny: {TINY_SCALE})")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per cell, best-of (default 5)")
    parser.add_argument("--wire", action="store_true",
                        help="also price wire serving: default server vs "
                             "tracer-off server with query log (gated) vs "
                             "fully traced server+client (reported)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the report to this file (default: stdout only)")
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (
        TINY_SCALE if args.tiny else BENCH_SCALE)

    print(f"generating document at f={factor} ...", file=sys.stderr)
    import repro
    text = repro.generate_string(factor)
    print(f"loading System {DEFAULT_SYSTEM} three ways "
          f"({len(text):,} bytes) ...", file=sys.stderr)
    compiled, prepared_off, prepared_on, dbs = _prepare_connections(
        text, DEFAULT_SYSTEM)
    try:
        cells = []
        for query in QUERIES:
            cell = run_cell(query, compiled[query], prepared_off[query],
                            prepared_on[query], args.rounds)
            cells.append(cell)
            print(f"  Q{query:<3d} baseline {cell['baseline_ms']:>9.3f} ms | "
                  f"off {cell['off_ms']:>9.3f} ms "
                  f"({cell['off_overhead_pct']:>+7.2f}%) | "
                  f"on {cell['on_ms']:>9.3f} ms "
                  f"({cell['on_overhead_pct']:>+7.2f}%)",
                  file=sys.stderr)
    finally:
        for db in dbs:
            db.close()

    summary = totals(cells)
    print(f"totals: baseline {summary['baseline_total_ms']:.3f} ms | "
          f"off {summary['off_total_ms']:.3f} ms "
          f"({summary['off_overhead_pct']:+.2f}%) | "
          f"on {summary['on_total_ms']:.3f} ms "
          f"({summary['on_overhead_pct']:+.2f}%)", file=sys.stderr)

    failures = check_acceptance(cells)

    wire_cells: list[dict] = []
    if args.wire:
        import tempfile
        print("starting wire servers (default + instrumented) ...",
              file=sys.stderr)
        with tempfile.TemporaryDirectory() as tmp:
            handles, remotes = _prepare_wire(
                text, DEFAULT_SYSTEM, f"{tmp}/query_log.jsonl")
            try:
                for query in QUERIES:
                    cell = run_wire_cell(query, *remotes, rounds=args.rounds)
                    wire_cells.append(cell)
                    print(f"  wire Q{query:<3d} baseline "
                          f"{cell['baseline_ms']:>9.3f} ms | "
                          f"off {cell['off_ms']:>9.3f} ms "
                          f"({cell['off_overhead_pct']:>+7.2f}%) | "
                          f"on {cell['on_ms']:>9.3f} ms "
                          f"({cell['on_overhead_pct']:>+7.2f}%)",
                          file=sys.stderr)
            finally:
                for remote in remotes:
                    remote.close()
                for handle in handles:
                    handle.stop()
        wire_summary = totals(wire_cells)
        print(f"wire totals: baseline "
              f"{wire_summary['baseline_total_ms']:.3f} ms | "
              f"off {wire_summary['off_total_ms']:.3f} ms "
              f"({wire_summary['off_overhead_pct']:+.2f}%) | "
              f"on {wire_summary['on_total_ms']:.3f} ms "
              f"({wire_summary['on_overhead_pct']:+.2f}%)", file=sys.stderr)
        failures += check_wire_acceptance(wire_cells)

    acceptance = {
        "criterion": f"summed best-of-round facade time with the tracer "
                     f"disabled stays within "
                     f"{(OVERHEAD_GATE - 1.0) * 100.0:.0f}% of the raw "
                     "engine (no facade, precompiled plans) over Q1-Q20; "
                     "with --wire, an untraced client against a "
                     "tracer-off server carrying the always-on query log "
                     "likewise stays within the gate of the default "
                     "server; fully traced serving reported but not gated",
        "ok": not failures,
        "failures": failures,
        **summary,
    }
    if wire_cells:
        acceptance.update({f"wire_{key}": value
                           for key, value in totals(wire_cells).items()})
    report = build_report(
        version="1.1",
        records=[_record(cell) for cell in cells + wire_cells],
        config={"factor": factor, "rounds": args.rounds,
                "system": DEFAULT_SYSTEM, "queries": list(QUERIES),
                "overhead_gate": OVERHEAD_GATE, "wire": bool(args.wire)},
        acceptance=acceptance,
    )
    emit_report("obs_overhead", report, args.json_path)
    for failure in failures:
        print(f"ACCEPTANCE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
