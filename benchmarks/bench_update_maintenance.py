"""Update latency and index-maintenance ablation (the update subsystem).

XMark prices bulkload and read-only queries; this bench prices the
workload the paper scoped out — document mutations — and the question the
index-maintenance literature (Mahboubi & Darmont) says a benchmark must
answer before an index is worth anything: *what does keeping it current
cost?*

Per system, the same deterministic operation script (register_person,
place_bid, close_auction, delete_item — one of each plus an extra bid)
runs against three identically-loaded store instances:

* **incremental** — secondary indexes maintained by per-node deltas;
* **rebuild**     — the whole IndexSet reconstructed after every operation;
* **no-index**    — indexes dropped up front (plans degrade to scans).

Reported per operation: the physical mutation time and the index-
maintenance time, separately (the engine accounts them apart).  After the
script, post-update Q1/Q5/Q8 run on every variant — the read-side price of
each maintenance policy — and the results are verified in-run against a
scratch store freshly loaded from the incremental store's serialized
document (the differential oracle), so every number reported describes a
correct store.

Acceptance (exit status 1 when not met): for every system that builds
indexes, incremental maintenance is strictly cheaper than the full rebuild
on every single operation of the script.

Runs two ways, like the sibling benches:

* under pytest-benchmark (``bench_*`` functions);
* standalone — ``python benchmarks/bench_update_maintenance.py [--tiny]
  [--json out.json]`` — emitting a pytest-benchmark-shaped JSON document
  (CI's update-maintenance smoke step).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import pytest

from _emit import build_report, emit_report
from repro.benchmark.queries import query_text
from repro.benchmark.systems import SYSTEMS, get_profile, make_store, parse_system_letters
from repro.errors import BenchmarkError, XMarkError
from repro.update import UpdateStream, apply_update, serialize_store
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

POST_UPDATE_QUERIES = (1, 5, 8)
OP_SCRIPT = ("register_person", "place_bid", "close_auction",
             "place_bid", "delete_item")
DEFAULT_SYSTEMS = "ABCDEFG"
BENCH_SCALE = 0.005
TINY_SCALE = 0.001


def build_script(text: str) -> list:
    """The shared operation script, generated once against a reference
    store so every system replays the identical logical updates."""
    reference = make_store("D")
    reference.load(text)
    stream = UpdateStream(reference)
    operations = []
    for kind in OP_SCRIPT:
        op = stream.next_op(kind)
        stream.note_applied(op)
        operations.append(op)
    return operations


def run_query(store, system: str, query: int):
    compiled = compile_query(query_text(query), store, get_profile(system))
    return evaluate(compiled)


def time_query(store, system: str, query: int, rounds: int) -> float:
    compiled = compile_query(query_text(query), store, get_profile(system))
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        evaluate(compiled)
        best = min(best, time.perf_counter() - started)
    return best


def run_system(system: str, text: str, operations: list, rounds: int) -> dict:
    """The full three-variant measurement for one system."""
    variants = {}
    for variant in ("incremental", "rebuild", "noindex"):
        store = make_store(system)
        store.load(text)
        if variant == "noindex":
            store.drop_indexes()
        variants[variant] = store

    ops = []
    for op in operations:
        cell = {"op": op.kind}
        for variant, store in variants.items():
            mode = "rebuild" if variant == "rebuild" else "incremental"
            changes = apply_update(store, op, maintenance_mode=mode)
            cell[f"{variant}_mutate_ms"] = round(changes.mutate_seconds * 1e3, 4)
            cell[f"{variant}_index_ms"] = round(changes.index_seconds * 1e3, 4)
        ops.append(cell)

    # In-run verification: all three variants answer identically, and
    # identically to a scratch store freshly loaded from the serialized
    # post-update document (the differential oracle).
    oracle_text = serialize_store(variants["incremental"])
    scratch = make_store(system)
    scratch.load(oracle_text)
    queries = {}
    for query in POST_UPDATE_QUERIES:
        expected = run_query(scratch, system, query).canonical()
        for variant, store in variants.items():
            actual = run_query(store, system, query).canonical()
            if actual != expected:
                raise AssertionError(
                    f"Q{query} on System {system} ({variant}) diverged from "
                    "the scratch reload oracle")
        queries[f"q{query}"] = {
            variant: round(time_query(store, system, query, rounds) * 1e3, 4)
            for variant, store in variants.items()
        }
        queries[f"q{query}"]["result_size"] = len(
            run_query(variants["incremental"], system, query))

    return {
        "system": system,
        "operations": ops,
        "post_update_queries": queries,
        "index_summary": variants["incremental"].indexes.summary()
        if variants["incremental"].indexes else None,
        "oracle_verified": True,
    }


def check_acceptance(results: list[dict]) -> list[str]:
    """Incremental maintenance strictly cheaper than the full rebuild for
    every single operation, on every system that builds indexes."""
    failures = []
    for result in results:
        if result.get("skipped"):
            continue
        if result["index_summary"] is None:
            continue
        for cell in result["operations"]:
            if not cell["incremental_index_ms"] < cell["rebuild_index_ms"]:
                failures.append(
                    f"{cell['op']} on {result['system']}: incremental "
                    f"{cell['incremental_index_ms']} ms not cheaper than "
                    f"rebuild {cell['rebuild_index_ms']} ms")
    return failures


# -- pytest-benchmark entry points (same harness as the sibling benches) ------------


@pytest.mark.parametrize("mode", ("incremental", "rebuild"))
def bench_update_op(benchmark, bench_text, mode):
    """One place_bid on System D under each maintenance policy."""
    operations = build_script(bench_text)
    bid = next(op for op in operations if op.kind == "place_bid")

    def setup():
        store = make_store("D")
        store.load(bench_text)
        return (store,), {}

    def apply(store):
        return apply_update(store, bid, maintenance_mode=mode)

    changes = benchmark.pedantic(apply, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["index_ms"] = round(changes.index_seconds * 1e3, 4)


def bench_update_maintenance_shape(benchmark, bench_text):
    """One-shot direction check: incremental beats rebuild on System D."""
    operations = build_script(bench_text)
    result = benchmark.pedantic(
        lambda: run_system("D", bench_text, operations, rounds=3),
        rounds=1, iterations=1)
    failures = check_acceptance([result])
    assert not failures, failures


# -- standalone runner ---------------------------------------------------------------


def _records(result: dict, seconds: float) -> list[dict]:
    name = f"update_maintenance[{result['system']}]"
    return [{
        "group": "update-maintenance",
        "name": name,
        "fullname": f"bench_update_maintenance.py::{name}",
        "params": {"system": result["system"]},
        "stats": {"min": seconds, "max": seconds, "mean": seconds,
                  "stddev": 0.0, "rounds": 1, "iterations": 1},
        "extra_info": {
            "operations": json.dumps(result["operations"]),
            "post_update_queries": json.dumps(result["post_update_queries"]),
            "oracle_verified": result["oracle_verified"],
        },
    }]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="update latency + incremental-vs-rebuild index maintenance")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke mode: small document, fewer rounds")
    parser.add_argument("--factor", type=float, default=None,
                        help="document scaling factor (default 0.005; --tiny: 0.001)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="query timing rounds, best-of (default 5; --tiny: 3)")
    parser.add_argument("--systems", default=DEFAULT_SYSTEMS,
                        help=f"system letters (default {DEFAULT_SYSTEMS})")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the report to this file (default: stdout only)")
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (
        TINY_SCALE if args.tiny else BENCH_SCALE)
    rounds = args.rounds if args.rounds is not None else (3 if args.tiny else 5)
    try:
        systems = parse_system_letters(args.systems)
    except BenchmarkError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    print(f"generating document at f={factor} ...", file=sys.stderr)
    from repro.xmlgen.generator import generate_string
    text = generate_string(factor)
    operations = build_script(text)
    print("operation script: " + ", ".join(op.kind for op in operations),
          file=sys.stderr)

    records: list[dict] = []
    results: list[dict] = []
    for system in systems:
        started = time.perf_counter()
        try:
            result = run_system(system, text, operations, rounds)
        except XMarkError as exc:       # System G's capacity limit, notably
            print(f"  system {system} skipped: {exc}", file=sys.stderr)
            results.append({"system": system, "skipped": str(exc)})
            continue
        results.append(result)
        records.extend(_records(result, time.perf_counter() - started))
        incremental = sum(c["incremental_index_ms"] for c in result["operations"])
        rebuild = sum(c["rebuild_index_ms"] for c in result["operations"])
        mutate = sum(c["incremental_mutate_ms"] for c in result["operations"])
        print(f"  {system}  mutate {mutate:8.3f} ms   index upkeep: "
              f"incremental {incremental:8.3f} ms vs rebuild {rebuild:8.3f} ms "
              f"({rebuild / incremental:6.1f}x)" if incremental > 0 else
              f"  {system}  mutate {mutate:8.3f} ms (no index upkeep)",
              file=sys.stderr)

    failures = check_acceptance(results)
    report = build_report(
        "update-maintenance-1", records,
        config={"factor": factor, "rounds": rounds,
                "systems": list(systems),
                "op_script": list(OP_SCRIPT),
                "post_update_queries": list(POST_UPDATE_QUERIES)},
        acceptance={"ok": not failures, "failures": failures},
    )
    emit_report("update_maintenance", report, args.json_path)
    if failures:
        print("ACCEPTANCE NOT MET: incremental index maintenance must be "
              "strictly cheaper than a full rebuild for every single-op "
              "update on every system that builds indexes:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
