"""Shared benchmark fixtures.

Benchmarks run at reduced scale (BENCH_SCALE = 0.005, a ~500 kB document;
Figure 4 uses 0.001/0.01 exactly as the paper's 100 kB / 1 MB).  Absolute
times are not comparable with the paper's 2002 hardware — the *shape*
(orderings, ratios, crossovers) is what each bench regenerates; see
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.benchmark.runner import BenchmarkRunner
from repro.xmlgen.generator import generate_string

BENCH_SCALE = 0.005
FIGURE4_SMALL = 0.001   # the paper's 100 kB document
FIGURE4_LARGE = 0.01    # the paper's 1 MB document


@pytest.fixture(scope="session")
def bench_text() -> str:
    return generate_string(BENCH_SCALE)


@pytest.fixture(scope="session")
def runner(bench_text) -> BenchmarkRunner:
    """All seven systems loaded with the benchmark document."""
    return BenchmarkRunner(bench_text)


@pytest.fixture(scope="session")
def figure4_runners() -> dict[float, BenchmarkRunner]:
    return {
        scale: BenchmarkRunner(generate_string(scale), systems=("G",))
        for scale in (FIGURE4_SMALL, FIGURE4_LARGE)
    }
