"""Service throughput: client-count sweep and cache ablations.

The single-user tables measure one query at a time from a cold cache; this
bench opens the multi-user scenario the paper leaves out.  A deterministic
closed-loop workload (Zipf query popularity, exponential think times) is
replayed through the :class:`~repro.service.service.QueryService` at client
counts 1 -> 16 with caches on and off, recording throughput (qps), latency
percentiles, and cache hit rates, plus a cold-vs-warm plan-cache comparison
of compile-inclusive latency.

Runs two ways:

* under pytest-benchmark like the sibling benches (``bench_*`` functions);
* standalone — ``python benchmarks/bench_service_throughput.py [--tiny]
  [--json out.json]`` — emitting a pytest-benchmark-shaped JSON document
  (a top-level ``benchmarks`` list of ``{name, params, stats, extra_info}``
  records), which is what CI's smoke run exercises.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import pytest

from _emit import build_report, emit_report
from repro.service import QueryService, WorkloadGenerator, WorkloadSpec
from repro.xmlgen.generator import generate_string

CLIENT_SWEEP = (1, 2, 4, 8, 16)
SWEEP_SYSTEM = "D"
THINK_MEAN_SECONDS = 0.003
BENCH_SCALE = 0.005
TINY_SCALE = 0.001


def _spec(clients: int, requests: int, system: str = SWEEP_SYSTEM) -> WorkloadSpec:
    return WorkloadSpec(
        clients=clients,
        requests_per_client=requests,
        systems=(system,),
        think_mean_seconds=THINK_MEAN_SECONDS,
    )


def run_sweep_cell(text: str, clients: int, requests: int, *, caches: bool,
                   system: str = SWEEP_SYSTEM) -> dict:
    """One sweep cell on a fresh service (cold caches, fair comparison)."""
    with QueryService(
        text, (system,),
        max_workers=max(8, clients),
        plan_cache_size=128 if caches else 0,
        result_cache_size=1024 if caches else 0,
    ) as service:
        snapshot = service.run_workload(_spec(clients, requests, system))
    snapshot["caches"] = caches
    snapshot["system"] = system
    return snapshot


def run_plan_cache_comparison(text: str, *, system: str = SWEEP_SYSTEM,
                              rounds: int = 3) -> dict:
    """Cold vs warm compile-inclusive latency over the workload's query mix.

    The result cache is disabled so every request executes; the only reuse
    is the compiled plan.  Round 1 compiles everything (cold); later rounds
    hit the plan cache, so their mean latency drop is the compilation share
    the cache saves.
    """
    queries = WorkloadSpec().queries
    with QueryService(
        text, (system,), max_workers=1,
        plan_cache_size=128, result_cache_size=0,
    ) as service:
        round_means: list[float] = []
        for _ in range(rounds):
            latencies = [service.execute(system, q).latency_seconds for q in queries]
            round_means.append(statistics.mean(latencies))
        plan_stats = service.plan_cache.stats.as_dict()
    cold, warm = round_means[0], statistics.mean(round_means[1:])
    return {
        "system": system,
        "queries": len(queries),
        "cold_mean_ms": round(cold * 1000.0, 3),
        "warm_mean_ms": round(warm * 1000.0, 3),
        "warm_speedup": round(cold / warm, 2) if warm > 0 else 0.0,
        "plan_cache": plan_stats,
    }


# -- pytest-benchmark entry points (same harness as the sibling benches) ------------


@pytest.fixture(scope="module")
def service_text(bench_text) -> str:
    return bench_text


@pytest.mark.parametrize("clients", CLIENT_SWEEP)
@pytest.mark.parametrize("caches", (True, False), ids=("caches", "nocache"))
def bench_throughput(benchmark, service_text, clients, caches):
    snapshot = benchmark.pedantic(
        run_sweep_cell, args=(service_text, clients, 20),
        kwargs={"caches": caches}, rounds=1, iterations=1)
    benchmark.extra_info["throughput_qps"] = snapshot["throughput_qps"]
    benchmark.extra_info["p95_ms"] = snapshot["latency"]["p95_ms"]
    benchmark.extra_info["result_cache_hit_rate"] = snapshot["result_cache"]["hit_rate"]


def bench_plan_cache_warmup(benchmark, service_text):
    comparison = benchmark.pedantic(
        run_plan_cache_comparison, args=(service_text,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: v for k, v in comparison.items() if not isinstance(v, dict)})
    assert comparison["warm_mean_ms"] < comparison["cold_mean_ms"], comparison


def bench_concurrency_speedup(benchmark, service_text):
    """The multi-user headline: 8 closed-loop clients must clear 2x the qps
    of a single client on the same service configuration."""
    def run():
        single = run_sweep_cell(service_text, 1, 20, caches=True)
        eight = run_sweep_cell(service_text, 8, 20, caches=True)
        return single, eight

    single, eight = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = eight["throughput_qps"] / single["throughput_qps"]
    benchmark.extra_info["qps_1_client"] = single["throughput_qps"]
    benchmark.extra_info["qps_8_clients"] = eight["throughput_qps"]
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 2.0, f"8 clients only {speedup:.2f}x over 1"


# -- the wire sweep (--wire): hundreds of asyncio clients vs xmark serve -------------

WIRE_SWEEP = (10, 50, 100, 200)
WIRE_TINY_SWEEP = (10, 50, 100)
WIRE_QUERY_MIX = (1, 2, 5, 13, 17)
WIRE_MAX_RETRIES = 60               # bounded: a busy reply is retried, never spun on
WIRE_RETRY_SLEEP = 0.005
WIRE_CELL_TIMEOUT = 300.0           # a cell exceeding this is called a deadlock


async def _wire_roundtrip(reader, writer, payload: dict) -> dict:
    from repro.server import protocol
    writer.write(protocol.encode_frame(payload))
    await writer.drain()
    reply, _ = await protocol.read_frame(reader)
    if reply is None:
        raise ConnectionError("server closed the connection")
    return reply


def _is_busy(reply: dict) -> bool:
    return reply["kind"] == "error" and reply.get("code") == "server_busy"


async def _retry_busy(reader, writer, payload: dict, tally: dict) -> dict:
    """Send, retrying ``server_busy`` with bounded backoff.

    Returns the last reply — still a busy error when the server stayed
    saturated through every retry (the caller counts that as refused;
    the point is the reply is always *typed*, never a hang).
    """
    import asyncio

    reply = await _wire_roundtrip(reader, writer, payload)
    for _attempt in range(WIRE_MAX_RETRIES):
        if not _is_busy(reply):
            break
        tally["busy"] += 1
        await asyncio.sleep(WIRE_RETRY_SLEEP)
        reply = await _wire_roundtrip(reader, writer, payload)
    return reply


async def _wire_client(host: str, port: int, queries: list[int],
                       baseline: dict[int, str], tally: dict) -> None:
    """One closed-loop asyncio client: handshake, then the query list.

    Every reply is accounted for: served (and byte-compared against the
    in-process baseline), busy-retried, or refused after bounded
    retries — execute and page fetches alike go through admission
    control, so both retry.  A dropped connection or a mismatch is a
    hard failure.
    """
    import asyncio

    from repro.server import PROTOCOL_VERSION

    reader, writer = await asyncio.open_connection(host, port)
    try:
        reply = await _wire_roundtrip(reader, writer, {
            "kind": "hello", "protocol": PROTOCOL_VERSION, "document": ""})
        if reply["kind"] != "welcome":
            raise ConnectionError(f"handshake refused: {reply}")
        for number in queries:
            started = time.perf_counter()
            reply = await _retry_busy(reader, writer, {
                "kind": "execute", "query": number, "fetch": True}, tally)
            if _is_busy(reply):
                tally["refused"] += 1   # stayed saturated; typed, not hung
                continue
            if reply["kind"] != "cursor":
                raise ConnectionError(f"Q{number} failed: {reply}")
            rows = list(reply.get("rows", ()))
            done = reply.get("done", False)
            abandoned = False
            while not done:
                page = await _retry_busy(reader, writer, {
                    "kind": "fetch", "cursor_id": reply["cursor_id"]}, tally)
                if _is_busy(page):
                    tally["refused"] += 1
                    await _wire_roundtrip(reader, writer, {
                        "kind": "close_cursor",
                        "cursor_id": reply["cursor_id"]})
                    abandoned = True
                    break
                if page["kind"] != "rows":
                    raise ConnectionError(f"fetch failed: {page}")
                rows.extend(page["rows"])
                done = page["done"]
            if abandoned:
                continue
            tally["latencies"].append(time.perf_counter() - started)
            tally["served"] += 1
            if "\n".join(rows) != baseline[number]:
                tally["mismatches"].append(number)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _run_wire_cell(host: str, port: int, clients: int, requests: int,
                   baseline: dict[int, str]) -> dict:
    """One sweep cell: ``clients`` concurrent connections, timed."""
    import asyncio

    from repro.obs.metrics import percentile

    tally = {"served": 0, "busy": 0, "refused": 0,
             "latencies": [], "mismatches": [], "dropped": 0}

    async def run() -> float:
        jobs = []
        for index in range(clients):
            mix = [WIRE_QUERY_MIX[(index + n) % len(WIRE_QUERY_MIX)]
                   for n in range(requests)]
            jobs.append(_wire_client(host, port, mix, baseline, tally))
        started = time.perf_counter()
        outcomes = await asyncio.wait_for(
            asyncio.gather(*jobs, return_exceptions=True),
            timeout=WIRE_CELL_TIMEOUT)
        elapsed = time.perf_counter() - started
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                tally["dropped"] += 1
                tally.setdefault("errors", []).append(repr(outcome))
        return elapsed

    try:
        elapsed = asyncio.run(run())
        deadlocked = False
    except TimeoutError:
        elapsed = WIRE_CELL_TIMEOUT
        deadlocked = True
    latencies = tally["latencies"]
    return {
        "clients": clients,
        "requests_per_client": requests,
        "elapsed_seconds": round(elapsed, 3),
        "throughput_qps": round(tally["served"] / elapsed, 1) if elapsed else 0.0,
        "served": tally["served"],
        "busy_retries": tally["busy"],
        "refused": tally["refused"],
        "dropped_connections": tally["dropped"],
        "errors": tally.get("errors", [])[:5],
        "mismatches": sorted(set(tally["mismatches"])),
        "deadlocked": deadlocked,
        "p50_ms": round(percentile(latencies, 50.0) * 1000.0, 3) if latencies else None,
        "p95_ms": round(percentile(latencies, 95.0) * 1000.0, 3) if latencies else None,
        "p99_ms": round(percentile(latencies, 99.0) * 1000.0, 3) if latencies else None,
    }


def _wire_main(args, factor: float, requests: int) -> int:
    """``--wire``: the C10k-style sweep against a live ``xmark serve``."""
    import repro

    from repro.obs.metrics import percentile
    from repro.server import TenantQuota, XMarkServer, serve_in_thread

    sweep = WIRE_TINY_SWEEP if args.tiny else WIRE_SWEEP
    requests = min(requests, 4) if args.tiny else requests

    print(f"generating document at f={factor} ...", file=sys.stderr)
    text = generate_string(factor)
    database = repro.connect(text, systems=(SWEEP_SYSTEM,))
    # Quotas off: this sweep measures pool backpressure, not tenant caps.
    server = XMarkServer(
        max_workers=8, queue_depth=32,
        default_quota=TenantQuota(max_sessions=0, max_inflight=0,
                                  max_cursors=0))
    server.add_document("auction", database, owned=True)
    handle = serve_in_thread(server)

    records: list[dict] = []
    failures: list[str] = []
    try:
        # In-process baseline: the byte-identical oracle and the qps/p95
        # yardstick the wire cells are compared against.
        session = database.session()
        baseline = {n: session.execute(n).serialize() for n in WIRE_QUERY_MIX}
        latencies: list[float] = []
        rounds = 3
        started = time.perf_counter()
        for _ in range(rounds):
            for number in WIRE_QUERY_MIX:
                t0 = time.perf_counter()
                session.execute(number).serialize()
                latencies.append(time.perf_counter() - t0)
        base_elapsed = time.perf_counter() - started
        base = {
            "throughput_qps": round(len(latencies) / base_elapsed, 1),
            "p50_ms": round(percentile(latencies, 50.0) * 1000.0, 3),
            "p95_ms": round(percentile(latencies, 95.0) * 1000.0, 3),
            "p99_ms": round(percentile(latencies, 99.0) * 1000.0, 3),
        }
        records.append(_record("wire_baseline[in-process]",
                               {"mode": "in-process"}, base_elapsed, base))
        print(f"  in-process baseline  {base['throughput_qps']:8.1f} qps  "
              f"p95 {base['p95_ms']:7.2f} ms", file=sys.stderr)

        for clients in sweep:
            cell = _run_wire_cell(handle.host, handle.port, clients,
                                  requests, baseline)
            records.append(_record(
                f"wire_throughput[c{clients}]",
                {"clients": clients, "mode": "wire"},
                cell["elapsed_seconds"],
                {k: v for k, v in cell.items()
                 if k not in ("elapsed_seconds", "errors")}))
            print(f"  wire clients={clients:4d}  "
                  f"{cell['throughput_qps']:8.1f} qps  "
                  f"p95 {cell['p95_ms'] if cell['p95_ms'] is not None else '?':>7} ms  "
                  f"busy={cell['busy_retries']} refused={cell['refused']}",
                  file=sys.stderr)
            if cell["deadlocked"]:
                failures.append(f"{clients} clients: deadlocked (no progress "
                                f"within {WIRE_CELL_TIMEOUT}s)")
            if cell["dropped_connections"]:
                failures.append(
                    f"{clients} clients: {cell['dropped_connections']} "
                    f"connection(s) dropped: {cell['errors']}")
            if cell["mismatches"]:
                failures.append(f"{clients} clients: wire results diverged "
                                f"from in-process on Q{cell['mismatches']}")
            if not cell["served"]:
                failures.append(f"{clients} clients: nothing served")
        busy_total = server.registry.counter("server.busy_total").value
    finally:
        handle.stop()

    ok = not failures
    report = build_report(
        "server-throughput-1", records,
        config={"factor": factor, "requests_per_client": requests,
                "client_sweep": list(sweep), "system": SWEEP_SYSTEM,
                "query_mix": list(WIRE_QUERY_MIX),
                "max_workers": 8, "queue_depth": 32,
                "busy_replies_total": busy_total,
                "max_retries": WIRE_MAX_RETRIES},
        acceptance={"ok": ok, "failures": failures},
    )
    emit_report("server_throughput", report, args.json_path)
    if not ok:
        print("ACCEPTANCE NOT MET:", "; ".join(failures), file=sys.stderr)
    return 0 if ok else 1


# -- standalone runner ---------------------------------------------------------------


def _record(name: str, params: dict, seconds: float, extra: dict) -> dict:
    """One pytest-benchmark-shaped record."""
    return {
        "group": "service",
        "name": name,
        "fullname": f"bench_service_throughput.py::{name}",
        "params": params,
        "stats": {"min": seconds, "max": seconds, "mean": seconds,
                  "stddev": 0.0, "rounds": 1, "iterations": 1},
        "extra_info": extra,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sweep client counts and cache settings through the query service")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke mode: small document, short sweep")
    parser.add_argument("--factor", type=float, default=None,
                        help="document scaling factor (default 0.005; --tiny: 0.001)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 20; --tiny: 8)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the report to this file (default: stdout only)")
    parser.add_argument("--wire", action="store_true",
                        help="sweep hundreds of asyncio clients against a "
                             "live wire server (xmark serve) instead, "
                             "emitting BENCH_server_throughput.json")
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (
        TINY_SCALE if args.tiny else BENCH_SCALE)
    requests = args.requests if args.requests is not None else (8 if args.tiny else 20)
    if args.wire:
        return _wire_main(args, factor, requests)
    sweep = CLIENT_SWEEP[:4] if args.tiny else CLIENT_SWEEP

    print(f"generating document at f={factor} ...", file=sys.stderr)
    text = generate_string(factor)
    records: list[dict] = []
    qps: dict[tuple[int, bool], float] = {}

    for caches in (True, False):
        for clients in sweep:
            started = time.perf_counter()
            snapshot = run_sweep_cell(text, clients, requests, caches=caches)
            elapsed = time.perf_counter() - started
            qps[(clients, caches)] = snapshot["throughput_qps"]
            label = "caches" if caches else "nocache"
            records.append(_record(
                f"throughput[{label}-c{clients}]",
                {"clients": clients, "caches": caches}, elapsed,
                {
                    "throughput_qps": snapshot["throughput_qps"],
                    "p50_ms": snapshot["latency"]["p50_ms"],
                    "p95_ms": snapshot["latency"]["p95_ms"],
                    "p99_ms": snapshot["latency"]["p99_ms"],
                    "plan_cache_hit_rate": snapshot["plan_cache"]["hit_rate"],
                    "result_cache_hit_rate": snapshot["result_cache"]["hit_rate"],
                },
            ))
            print(f"  {label:7s} clients={clients:2d}  "
                  f"{snapshot['throughput_qps']:8.1f} qps  "
                  f"p95 {snapshot['latency']['p95_ms']:6.2f} ms", file=sys.stderr)

    speedup = qps[(8, True)] / qps[(1, True)] if (8, True) in qps else (
        qps[(sweep[-1], True)] / qps[(1, True)])
    speedup_clients = 8 if (8, True) in qps else sweep[-1]
    records.append(_record(
        "concurrency_speedup", {"clients": speedup_clients},
        0.0, {"qps_1_client": qps[(1, True)],
              f"qps_{speedup_clients}_clients": qps[(speedup_clients, True)],
              "speedup": round(speedup, 2)},
    ))

    started = time.perf_counter()
    comparison = run_plan_cache_comparison(text, rounds=2 if args.tiny else 3)
    records.append(_record(
        "plan_cache_warmup", {"system": comparison["system"]},
        time.perf_counter() - started,
        {k: v for k, v in comparison.items() if not isinstance(v, dict)},
    ))
    print(f"  plan cache: cold {comparison['cold_mean_ms']:.2f} ms -> "
          f"warm {comparison['warm_mean_ms']:.2f} ms "
          f"({comparison['warm_speedup']}x)", file=sys.stderr)
    print(f"  concurrency: {speedup_clients} clients = {speedup:.2f}x 1-client qps",
          file=sys.stderr)

    ok = speedup >= 2.0 and comparison["warm_mean_ms"] < comparison["cold_mean_ms"]
    report = build_report(
        "service-throughput-1", records,
        config={"factor": factor, "requests_per_client": requests,
                "client_sweep": list(sweep), "system": SWEEP_SYSTEM,
                "think_mean_ms": THINK_MEAN_SECONDS * 1000.0},
        acceptance={"ok": ok, "failures": [] if ok else [
            "need >=2x qps at 8 clients and a warm plan-cache latency win"]},
    )
    emit_report("service_throughput", report, args.json_path)
    if not ok:
        print("ACCEPTANCE NOT MET: need >=2x qps at 8 clients and a warm "
              "plan-cache latency win", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
