"""Table 1: database sizes and bulkload times for Systems A-F.

Paper rows (f = 1.0): sizes A 241 MB, B 280, C 238, D 142, E 302, F 345;
bulkload A 414 s, B 781, C 548, D 50, E 96, F 215; expat scan 4.9 s.

Shape asserted here: the scan baseline is faster than every load; D loads
fastest of the mass-storage systems and B slowest; D's database is smaller
than E's and F's.
"""

import pytest

from repro.benchmark.systems import MASS_STORAGE_SYSTEMS, make_store
from repro.storage.bulkload import bulkload, scan_baseline


def bench_scan_baseline(benchmark, bench_text):
    """The expat row: tokenization without semantic actions."""
    report = benchmark.pedantic(scan_baseline, args=(bench_text,), rounds=3, iterations=1)
    benchmark.extra_info["events"] = report.events


@pytest.mark.parametrize("system", MASS_STORAGE_SYSTEMS)
def bench_bulkload(benchmark, bench_text, system):
    def load():
        return bulkload(make_store(system), bench_text, system)

    report = benchmark.pedantic(load, rounds=2, iterations=1)
    benchmark.extra_info["database_bytes"] = report.database_bytes
    benchmark.extra_info["size_ratio"] = round(report.size_ratio, 2)


def bench_table1_shape(benchmark, bench_text):
    """One-shot shape check over all six mass-storage systems."""
    def run():
        scan = scan_baseline(bench_text)
        times = {}
        sizes = {}
        for system in MASS_STORAGE_SYSTEMS:
            reports = [bulkload(make_store(system), bench_text, system)
                       for _ in range(2)]
            times[system] = min(report.seconds for report in reports)
            sizes[system] = reports[-1].database_bytes
        return scan, times, sizes

    scan, times, sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    for system in MASS_STORAGE_SYSTEMS:
        benchmark.extra_info[f"load_{system}_ms"] = round(times[system] * 1000, 1)
        benchmark.extra_info[f"size_{system}_bytes"] = sizes[system]
    # Paper shape assertions (deviations documented in EXPERIMENTS.md: our C
    # shreds about as fast as D at this scale, and our E is F plus an index
    # so E > F in size — both vendor-specific orderings in the paper):
    assert all(scan.seconds < t for t in times.values()), "scan must be the floor"
    assert times["D"] < times["A"], "D loads faster than the edge mapping"
    assert times["D"] < times["B"], "D loads faster than the fragmenting mapping"
    assert times["B"] == max(times.values()), "B loads slowest (paper: 781 s)"
    # D's compact mapping gives the smallest main-memory database (paper:
    # 142 vs 302/345 MB).  Our E is F plus a tag index, so E>F — the paper's
    # E<F ordering was a vendor difference, see EXPERIMENTS.md.
    assert sizes["D"] < min(sizes["E"], sizes["F"]), "D smallest in main memory"
