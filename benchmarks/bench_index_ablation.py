"""Indexed-vs-scan ablation across systems (the secondary-index subsystem).

For each system and each of Q1/Q2/Q5/Q8/Q12, the same compiled-and-executed
measurement runs twice: once under the system's real optimizer profile
(indexes on) and once under a scan-only variant of that profile (every
index flag off — join strategy and optimizer class untouched, so the
ablation isolates the access structures).  The two result sequences are
compared *in-run*: a probe that returned anything but the scan's exact
result set would invalidate the timing, so equality is asserted before any
number is reported.

The query set covers the index families:

* Q1  — exact match: store ID index (A-D) / secondary value index (E);
* Q2  — ordered access over a path extent: path index (B/D native, E
  secondary);
* Q5  — range predicate: the sorted numeric index (FLWOR range plan);
* Q8  — value join: index-backed hash probe on ``buyer/@person``;
* Q12 — inequality join: System D's sorted join served from the sorted
  index (probe instead of per-query build).

Acceptance (exit status 1 when not met): indexed Q1 and Q5 strictly faster
than scan on every system whose profile enables the relevant index.

Runs two ways:

* under pytest-benchmark like the sibling benches (``bench_*`` functions);
* standalone — ``python benchmarks/bench_index_ablation.py [--tiny]
  [--json out.json]`` — emitting a pytest-benchmark-shaped JSON document,
  which is what CI's index-ablation smoke step exercises.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

import pytest

from _emit import build_report, emit_report
from repro.benchmark.queries import query_text
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.systems import get_profile, parse_system_letters
from repro.errors import BenchmarkError
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import SystemProfile, compile_query

ABLATION_QUERIES = (1, 2, 5, 8, 12)
DEFAULT_SYSTEMS = "ABCDE"               # the profiles with any index enabled
BENCH_SCALE = 0.005
TINY_SCALE = 0.001


def scan_profile(profile: SystemProfile) -> SystemProfile:
    """The same optimizer with every index access structure disabled."""
    return replace(
        profile, name=profile.name + "-scan",
        use_id_index=False, use_path_index=False,
        use_value_index=False, use_sorted_index=False,
    )


def access_paths(compiled) -> list[str]:
    """Compact labels of the non-scan access paths a plan resolved."""
    labels = set()
    for plan in compiled.path_plans.values():
        if plan.kind == "id_lookup":
            labels.add("id-index")
        elif plan.kind == "value_probe":
            labels.add("value-index")
        elif plan.kind == "range_probe":
            labels.add("sorted-index")
        elif plan.kind == "path_index":
            labels.add("path-index")
    if compiled.range_plans:
        labels.add("sorted-index")
    for join in compiled.join_plans.values():
        if join.index_kind == "value":
            labels.add("value-index-join")
        elif join.index_kind == "sorted":
            labels.add("sorted-index-join")
        else:
            labels.add(f"{join.strategy}-join")
    return sorted(labels) or ["scan"]


def time_best(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_cell(store, system: str, query: int, rounds: int) -> dict:
    """One (system, query) ablation cell: indexed vs scan, verified equal."""
    indexed_profile = get_profile(system)
    compiled_indexed = compile_query(query_text(query), store, indexed_profile)
    compiled_scan = compile_query(query_text(query), store,
                                  scan_profile(indexed_profile))
    indexed_result = evaluate(compiled_indexed)
    scan_result = evaluate(compiled_scan)
    if indexed_result.serialize() != scan_result.serialize():
        raise AssertionError(
            f"Q{query} on System {system}: indexed result differs from scan")
    indexed_seconds = time_best(lambda: evaluate(compiled_indexed), rounds)
    scan_seconds = time_best(lambda: evaluate(compiled_scan), rounds)
    return {
        "system": system,
        "query": query,
        "indexed_ms": round(indexed_seconds * 1000.0, 4),
        "scan_ms": round(scan_seconds * 1000.0, 4),
        "speedup": round(scan_seconds / indexed_seconds, 2)
        if indexed_seconds > 0 else 0.0,
        "result_size": len(indexed_result),
        "access_paths": access_paths(compiled_indexed),
        "results_equal": True,
    }


def check_acceptance(cells: list[dict]) -> list[str]:
    """Indexed Q1 and Q5 must be strictly faster than scan wherever the
    profile enables the relevant index family."""
    failures = []
    for cell in cells:
        profile = get_profile(cell["system"])
        if cell["query"] == 1 and (profile.use_id_index or profile.use_value_index):
            if not cell["indexed_ms"] < cell["scan_ms"]:
                failures.append(
                    f"Q1 on {cell['system']}: indexed {cell['indexed_ms']} ms "
                    f"not faster than scan {cell['scan_ms']} ms")
        if cell["query"] == 5 and profile.use_sorted_index:
            if not cell["indexed_ms"] < cell["scan_ms"]:
                failures.append(
                    f"Q5 on {cell['system']}: indexed {cell['indexed_ms']} ms "
                    f"not faster than scan {cell['scan_ms']} ms")
    return failures


# -- pytest-benchmark entry points (same harness as the sibling benches) ------------


@pytest.mark.parametrize("query", ABLATION_QUERIES)
def bench_indexed(benchmark, runner, query):
    store = runner.store("D")
    compiled = compile_query(query_text(query), store, get_profile("D"))
    benchmark.pedantic(lambda: evaluate(compiled), rounds=3, iterations=1)
    benchmark.extra_info["access_paths"] = ",".join(access_paths(compiled))


@pytest.mark.parametrize("query", ABLATION_QUERIES)
def bench_scan(benchmark, runner, query):
    store = runner.store("D")
    compiled = compile_query(query_text(query), store,
                             scan_profile(get_profile("D")))
    benchmark.pedantic(lambda: evaluate(compiled), rounds=3, iterations=1)


def bench_ablation_shape(benchmark, runner):
    """One-shot direction check: indexed Q1/Q5 beat scan on System D."""
    def run():
        return [run_cell(runner.store("D"), "D", query, rounds=5)
                for query in (1, 5)]

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    for cell in cells:
        benchmark.extra_info[f"q{cell['query']}_speedup"] = cell["speedup"]
    failures = check_acceptance(cells)
    assert not failures, failures


# -- standalone runner ---------------------------------------------------------------


def _record(cell: dict, seconds: float) -> dict:
    """One pytest-benchmark-shaped record."""
    name = f"index_ablation[{cell['system']}-Q{cell['query']}]"
    return {
        "group": "index-ablation",
        "name": name,
        "fullname": f"bench_index_ablation.py::{name}",
        "params": {"system": cell["system"], "query": cell["query"]},
        "stats": {"min": seconds, "max": seconds, "mean": seconds,
                  "stddev": 0.0, "rounds": 1, "iterations": 1},
        "extra_info": {key: (",".join(value) if isinstance(value, list) else value)
                       for key, value in cell.items()},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="indexed-vs-scan ablation of Q1/Q2/Q5/Q8/Q12 across systems")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke mode: small document, fewer rounds")
    parser.add_argument("--factor", type=float, default=None,
                        help="document scaling factor (default 0.005; --tiny: 0.001)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds per cell, best-of (default 5; --tiny: 7)")
    parser.add_argument("--systems", default=DEFAULT_SYSTEMS,
                        help=f"system letters to ablate (default {DEFAULT_SYSTEMS})")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the report to this file (default: stdout only)")
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (
        TINY_SCALE if args.tiny else BENCH_SCALE)
    rounds = args.rounds if args.rounds is not None else (7 if args.tiny else 5)
    try:
        systems = parse_system_letters(args.systems)
    except BenchmarkError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    print(f"generating document at f={factor} ...", file=sys.stderr)
    from repro.xmlgen.generator import generate_string
    text = generate_string(factor)
    runner = BenchmarkRunner(text, systems=systems)

    records: list[dict] = []
    cells: list[dict] = []
    for system in systems:
        if system in runner.failed_loads:
            print(f"  system {system} failed to load: "
                  f"{runner.failed_loads[system]}", file=sys.stderr)
            continue
        store = runner.store(system)
        for query in ABLATION_QUERIES:
            started = time.perf_counter()
            cell = run_cell(store, system, query, rounds)
            cells.append(cell)
            records.append(_record(cell, time.perf_counter() - started))
            print(f"  {system} Q{query:<2d} indexed {cell['indexed_ms']:9.3f} ms  "
                  f"scan {cell['scan_ms']:9.3f} ms  {cell['speedup']:6.2f}x  "
                  f"via {','.join(cell['access_paths'])}", file=sys.stderr)

    failures = check_acceptance(cells)
    report = build_report(
        "index-ablation-1", records,
        config={"factor": factor, "rounds": rounds,
                "systems": list(systems),
                "queries": list(ABLATION_QUERIES)},
        acceptance={"ok": not failures, "failures": failures},
    )
    emit_report("index_ablation", report, args.json_path)
    if failures:
        print("ACCEPTANCE NOT MET: indexed Q1/Q5 must be strictly faster "
              "than scan wherever the profile enables the index:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
