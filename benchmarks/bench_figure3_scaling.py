"""Figure 3: the scaling table (f -> document size).

Paper: f in {0.1, 1, 10, 100} -> {10 MB, 100 MB, 1 GB, 10 GB}.  We generate
at proportionally reduced factors and assert the calibrated linear
relationship size ~ 100 MB * f, which extrapolates to the paper's rows.
"""

import pytest

from repro.xmlgen.generator import XMarkGenerator, generate_string
from repro.xmlgen.config import GeneratorConfig

SCALES = (0.0005, 0.001, 0.005, 0.01)


@pytest.mark.parametrize("scale", SCALES)
def bench_generate_at_scale(benchmark, scale):
    text = benchmark.pedantic(generate_string, args=(scale,), rounds=2, iterations=1)
    target = 100e6 * scale
    benchmark.extra_info["bytes"] = len(text)
    benchmark.extra_info["target_bytes"] = int(target)
    benchmark.extra_info["ratio"] = round(len(text) / target, 3)
    assert abs(len(text) / target - 1.0) < 0.15


def bench_generation_is_linear_in_scale(benchmark):
    """Elapsed time must scale ~linearly (paper: 33.4 s / 335.5 s for 10x)."""
    import time

    def measure():
        t0 = time.perf_counter()
        small = len(generate_string(0.001))
        t1 = time.perf_counter()
        large = len(generate_string(0.004))
        t2 = time.perf_counter()
        return (t1 - t0, t2 - t1, small, large)

    small_t, large_t, small_b, large_b = benchmark.pedantic(measure, rounds=1, iterations=1)
    time_ratio = large_t / small_t
    size_ratio = large_b / small_b
    benchmark.extra_info["time_ratio_4x_data"] = round(time_ratio, 2)
    benchmark.extra_info["size_ratio"] = round(size_ratio, 2)
    # Time grows roughly with output volume (allow generous slack for noise).
    assert time_ratio < size_ratio * 2.5


def bench_determinism(benchmark):
    """Same (seed, scale) -> byte-identical output (Section 4.5 req. 4)."""
    def both():
        return generate_string(0.001), generate_string(0.001)

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    assert a == b


def bench_seed_isolation(benchmark):
    """Different seeds give different documents of the same shape."""
    def both():
        default = generate_string(0.001)
        other = XMarkGenerator(GeneratorConfig(scale=0.001, seed=777)).generate_string()
        return default, other

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    assert a != b
    assert abs(len(a) - len(b)) < len(a) * 0.2
