"""Ablations on the design choices DESIGN.md calls out.

Each ablation isolates one architectural feature by re-running a query with
the feature disabled through the profile system:

* ID index on/off              -> Q1 (exact match)
* structural summary on/off    -> Q6 (regular paths) on System D's store
* join rewrite on/off          -> Q8 (reference chasing)
* sorted vs nested-loop join   -> Q11 (value join) on System D
"""

import pytest

from repro.benchmark.queries import query_text
from repro.benchmark.systems import get_profile
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import SystemProfile, compile_query


def _run(store, query_number, profile):
    compiled = compile_query(query_text(query_number), store, profile)
    return evaluate(compiled)


def bench_q1_with_id_index(benchmark, runner):
    store = runner.store("D")
    profile = get_profile("D")
    benchmark.pedantic(lambda: _run(store, 1, profile), rounds=3, iterations=1)


def bench_q1_without_id_index(benchmark, runner):
    store = runner.store("D")
    profile = SystemProfile(name="D-noid", use_id_index=False, use_path_index=True)
    benchmark.pedantic(lambda: _run(store, 1, profile), rounds=3, iterations=1)


def bench_q6_with_summary(benchmark, runner):
    """System D's store, summary-backed descendant resolution."""
    store = runner.store("D")
    benchmark.pedantic(lambda: _run(store, 6, get_profile("D")), rounds=3, iterations=1)


def bench_q6_without_summary(benchmark, runner):
    """Same document on the pure-traversal store (F) — the ablated baseline."""
    store = runner.store("F")
    benchmark.pedantic(lambda: _run(store, 6, get_profile("F")), rounds=3, iterations=1)


def bench_q8_with_join_rewrite(benchmark, runner):
    store = runner.store("E")
    benchmark.pedantic(lambda: _run(store, 8, get_profile("E")), rounds=3, iterations=1)


def bench_q8_without_join_rewrite(benchmark, runner):
    store = runner.store("E")
    naive = SystemProfile(name="E-naive", join_rewrite_depth=0, use_id_index=False)
    benchmark.pedantic(lambda: _run(store, 8, naive), rounds=3, iterations=1)


def bench_q11_sorted_join(benchmark, runner):
    store = runner.store("D")
    benchmark.pedantic(lambda: _run(store, 11, get_profile("D")), rounds=2, iterations=1)


def bench_q11_nested_loop(benchmark, runner):
    store = runner.store("D")
    nlj = SystemProfile(name="D-nlj", inequality_join="nlj", join_rewrite_depth=0,
                        use_id_index=True, use_path_index=True)
    benchmark.pedantic(lambda: _run(store, 11, nlj), rounds=2, iterations=1)


def bench_ablation_shapes(benchmark, runner):
    """Assert every ablation moves latency the expected direction."""
    import time

    def timed(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    store_d = runner.store("D")
    store_e = runner.store("E")
    store_f = runner.store("F")

    def run_all():
        nlj = SystemProfile(name="D-nlj", inequality_join="nlj", join_rewrite_depth=0,
                            use_id_index=True, use_path_index=True)
        naive_e = SystemProfile(name="E-naive", join_rewrite_depth=0, use_id_index=False)
        return {
            "q6_summary": timed(lambda: _run(store_d, 6, get_profile("D"))),
            "q6_traversal": timed(lambda: _run(store_f, 6, get_profile("F"))),
            "q8_join": timed(lambda: _run(store_e, 8, get_profile("E"))),
            "q8_naive": timed(lambda: _run(store_e, 8, naive_e)),
            "q11_sorted": timed(lambda: _run(store_d, 11, get_profile("D"))),
            "q11_nlj": timed(lambda: _run(store_d, 11, nlj)),
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for key, value in times.items():
        benchmark.extra_info[key + "_ms"] = round(value * 1000, 2)
    assert times["q8_join"] < times["q8_naive"], "hash join must beat re-evaluation"
    assert times["q11_sorted"] * 5 < times["q11_nlj"], "sorted join must dominate NLJ"
