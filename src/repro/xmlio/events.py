"""Parser event types (the SAX-like streaming interface)."""

from __future__ import annotations

from dataclasses import dataclass


class Event:
    """Base class for streaming parse events."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class StartElement(Event):
    """An opening (or self-closing) tag with its attributes."""

    tag: str
    attributes: tuple[tuple[str, str], ...]

    def get(self, name: str, default: str | None = None) -> str | None:
        for key, value in self.attributes:
            if key == name:
                return value
        return default


@dataclass(frozen=True, slots=True)
class EndElement(Event):
    """A closing tag (also emitted for self-closing elements)."""

    tag: str


@dataclass(frozen=True, slots=True)
class Characters(Event):
    """A run of character data (entity references already resolved)."""

    text: str
