"""From-scratch XML I/O.

The paper's tooling assumes three capabilities, all provided here without
third-party dependencies:

* a **streaming tokenizer** (:func:`iterparse`) in the role of expat — the
  paper times a bare scan over the benchmark document as the bulkload floor;
* a **lightweight DOM** (:mod:`repro.xmlio.dom`) used by the main-memory
  stores and the embedded System-G analogue;
* a **canonical serialization** (:mod:`repro.xmlio.canonical`) addressing the
  output-equivalence problem the paper highlights in Section 1 ("the problem
  of deciding when to regard the output of XML query processors as
  equivalent still requires research").

The supported XML subset is exactly the paper's (Section 4.4): no namespaces,
no custom entities or notations, seven-bit ASCII content.  Constructs outside
the subset are *rejected*, never silently mis-parsed.
"""

from repro.xmlio.dom import Document, Element, Text
from repro.xmlio.events import Characters, EndElement, Event, StartElement
from repro.xmlio.parser import iterparse, parse, scan
from repro.xmlio.serialize import serialize, XMLWriter
from repro.xmlio.canonical import canonicalize

__all__ = [
    "Document", "Element", "Text",
    "Event", "StartElement", "EndElement", "Characters",
    "iterparse", "parse", "scan",
    "serialize", "XMLWriter", "canonicalize",
]
