"""From-scratch streaming XML parser.

:func:`iterparse` yields :class:`~repro.xmlio.events.Event` objects from a
document string in a single left-to-right scan; :func:`parse` builds a DOM
from those events; :func:`scan` consumes events without materialising
anything — the role played by expat's bare tokenization pass in the paper's
Table 1 discussion.

The parser enforces well-formedness for the supported subset: matching tags,
a single root element, unique attributes, no markup outside the root other
than comments/PIs/DOCTYPE, resolved entity references.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import XMLSyntaxError
from repro.xmlio.dom import Document, Element, Text
from repro.xmlio.escape import resolve_references
from repro.xmlio.events import Characters, EndElement, Event, StartElement

_NAME_START = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:"
)
_NAME_CHARS = _NAME_START | frozenset("0123456789.-")
_WHITESPACE = frozenset(" \t\r\n")


def _location(text: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of ``offset`` — computed lazily on error."""
    line = text.count("\n", 0, offset) + 1
    last_newline = text.rfind("\n", 0, offset)
    return line, offset - last_newline


def _error(text: str, offset: int, message: str) -> XMLSyntaxError:
    line, column = _location(text, offset)
    return XMLSyntaxError(message, line, column)


def _skip_whitespace(text: str, position: int) -> int:
    while position < len(text) and text[position] in _WHITESPACE:
        position += 1
    return position


def _read_name(text: str, position: int) -> tuple[str, int]:
    if position >= len(text) or text[position] not in _NAME_START:
        raise _error(text, position, "expected a name")
    end = position + 1
    while end < len(text) and text[end] in _NAME_CHARS:
        end += 1
    return text[position:end], end


def _skip_doctype(text: str, position: int) -> int:
    """Skip a DOCTYPE declaration, including a bracketed internal subset."""
    depth = 0
    while position < len(text):
        char = text[position]
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == ">" and depth <= 0:
            return position + 1
        position += 1
    raise _error(text, len(text) - 1, "unterminated DOCTYPE")


def iterparse(text: str) -> Iterator[Event]:
    """Yield streaming events from an XML document string."""
    position = 0
    length = len(text)
    stack: list[str] = []
    seen_root = False

    while position < length:
        if text[position] != "<":
            gap = text.find("<", position)
            if gap < 0:
                gap = length
            raw = text[position:gap]
            if stack:
                if "&" in raw:
                    line, column = _location(text, position)
                    raw = resolve_references(raw, line, column)
                yield Characters(raw)
            elif raw.strip():
                raise _error(text, position, "character data outside the root element")
            position = gap
            continue

        if text.startswith("<!--", position):
            end = text.find("-->", position + 4)
            if end < 0:
                raise _error(text, position, "unterminated comment")
            position = end + 3
            continue
        if text.startswith("<![CDATA[", position):
            if not stack:
                raise _error(text, position, "CDATA outside the root element")
            end = text.find("]]>", position + 9)
            if end < 0:
                raise _error(text, position, "unterminated CDATA section")
            yield Characters(text[position + 9 : end])
            position = end + 3
            continue
        if text.startswith("<?", position):
            end = text.find("?>", position + 2)
            if end < 0:
                raise _error(text, position, "unterminated processing instruction")
            position = end + 2
            continue
        if text.startswith("<!DOCTYPE", position):
            if seen_root:
                raise _error(text, position, "DOCTYPE after the root element")
            position = _skip_doctype(text, position + 9)
            continue
        if text.startswith("<!", position):
            raise _error(text, position, "unsupported markup declaration")

        if text.startswith("</", position):
            name, after = _read_name(text, position + 2)
            after = _skip_whitespace(text, after)
            if after >= length or text[after] != ">":
                raise _error(text, after, f"malformed closing tag </{name}")
            if not stack:
                raise _error(text, position, f"closing tag </{name}> with no open element")
            expected = stack.pop()
            if expected != name:
                raise _error(
                    text, position,
                    f"mismatched closing tag: expected </{expected}>, got </{name}>",
                )
            yield EndElement(name)
            position = after + 1
            continue

        # Opening (or self-closing) tag.
        if seen_root and not stack:
            raise _error(text, position, "multiple root elements")
        name, position = _read_name(text, position + 1)
        attributes: list[tuple[str, str]] = []
        seen_names: set[str] = set()
        while True:
            position = _skip_whitespace(text, position)
            if position >= length:
                raise _error(text, length - 1, f"unterminated tag <{name}")
            char = text[position]
            if char == ">":
                position += 1
                stack.append(name)
                seen_root = True
                yield StartElement(name, tuple(attributes))
                break
            if char == "/":
                if not text.startswith("/>", position):
                    raise _error(text, position, "expected '/>'")
                position += 2
                seen_root = True
                yield StartElement(name, tuple(attributes))
                yield EndElement(name)
                break
            attr_name, position = _read_name(text, position)
            if attr_name in seen_names:
                raise _error(text, position, f"duplicate attribute {attr_name!r}")
            seen_names.add(attr_name)
            position = _skip_whitespace(text, position)
            if position >= length or text[position] != "=":
                raise _error(text, position, f"attribute {attr_name!r} missing '='")
            position = _skip_whitespace(text, position + 1)
            if position >= length or text[position] not in "\"'":
                raise _error(text, position, f"attribute {attr_name!r} value must be quoted")
            quote = text[position]
            end = text.find(quote, position + 1)
            if end < 0:
                raise _error(text, position, f"unterminated attribute value for {attr_name!r}")
            raw_value = text[position + 1 : end]
            if "<" in raw_value:
                raise _error(text, position, f"'<' in attribute value for {attr_name!r}")
            if "&" in raw_value:
                line, column = _location(text, position)
                raw_value = resolve_references(raw_value, line, column)
            attributes.append((attr_name, raw_value))
            position = end + 1

    if stack:
        raise _error(text, length - 1, f"unclosed element <{stack[-1]}>")
    if not seen_root:
        raise _error(text, 0, "no root element")


def parse(text: str) -> Document:
    """Parse a document string into a DOM tree."""
    document = Document()
    open_elements: list[Element] = []
    pending_text: list[str] = []

    def flush_text() -> None:
        if pending_text:
            combined = "".join(pending_text)
            pending_text.clear()
            if open_elements:
                open_elements[-1].append(Text(combined))

    for event in iterparse(text):
        if isinstance(event, StartElement):
            flush_text()
            element = Element(event.tag, dict(event.attributes))
            if open_elements:
                open_elements[-1].append(element)
            else:
                document.set_root(element)
            open_elements.append(element)
        elif isinstance(event, EndElement):
            flush_text()
            open_elements.pop()
        else:
            pending_text.append(event.text)
    return document


def scan(text: str) -> int:
    """Tokenize without building anything; return the number of events.

    This mirrors the paper's expat baseline: "this time only includes the
    tokenization of the input stream and normalizations and substitutions
    as required by the XML standard and no user-specified semantic actions".
    """
    count = 0
    for _ in iterparse(text):
        count += 1
    return count


def parse_file(path: str) -> Document:
    """Parse a document from a file path (convenience wrapper)."""
    with open(path, "r", encoding="ascii") as handle:
        return parse(handle.read())
