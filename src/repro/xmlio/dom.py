"""Lightweight DOM used by the main-memory stores and query results.

Nodes are plain Python objects with ``__slots__``; an :class:`Element` owns an
ordered list of children (elements and text nodes interleaved, preserving the
textual order of the source document — the property the paper's ordered-access
queries Q2–Q4 exercise).
"""

from __future__ import annotations

from collections.abc import Iterator


class Text:
    """A run of character data."""

    __slots__ = ("value", "parent")

    def __init__(self, value: str) -> None:
        self.value = value
        self.parent: Element | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.value if len(self.value) <= 30 else self.value[:27] + "..."
        return f"Text({preview!r})"


class Element:
    """An element node with attributes and ordered children."""

    __slots__ = ("tag", "attributes", "children", "parent")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None) -> None:
        self.tag = tag
        self.attributes: dict[str, str] = attributes if attributes is not None else {}
        self.children: list[Element | Text] = []
        self.parent: Element | None = None

    # -- construction ---------------------------------------------------------

    def append(self, child: "Element | Text") -> "Element | Text":
        child.parent = self
        self.children.append(child)
        return child

    def append_text(self, value: str) -> None:
        """Append character data, merging with a trailing text node."""
        if self.children and isinstance(self.children[-1], Text):
            self.children[-1].value += value
        else:
            self.append(Text(value))

    # -- navigation -------------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """Attribute lookup."""
        return self.attributes.get(name, default)

    def child_elements(self) -> Iterator["Element"]:
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def find(self, tag: str) -> "Element | None":
        """First child element with the given tag, or None."""
        for child in self.child_elements():
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["Element"]:
        """All child elements with the given tag, in document order."""
        return [child for child in self.child_elements() if child.tag == tag]

    def iter(self, tag: str | None = None) -> Iterator["Element"]:
        """Self-and-descendant elements in document order."""
        if tag is None or self.tag == tag:
            yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter(tag)

    def descendants(self, tag: str | None = None) -> Iterator["Element"]:
        """Descendant elements (excluding self) in document order."""
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter(tag)

    # -- content ----------------------------------------------------------------

    def immediate_text(self) -> str:
        """Concatenated character data of direct text-node children."""
        return "".join(child.value for child in self.children if isinstance(child, Text))

    def text_content(self) -> str:
        """Concatenated character data of the whole subtree (string value)."""
        parts: list[str] = []
        stack: list[Element | Text] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Text):
                parts.append(node.value)
            else:
                stack.extend(reversed(node.children))
        return "".join(parts)

    def copy(self) -> "Element":
        """Deep copy of the subtree (parent link of the copy is None)."""
        duplicate = Element(self.tag, dict(self.attributes))
        for child in self.children:
            if isinstance(child, Element):
                duplicate.append(child.copy())
            else:
                duplicate.append(Text(child.value))
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element({self.tag!r}, children={len(self.children)})"


class Document:
    """A parsed document: a single root element plus convenience access."""

    __slots__ = ("root",)

    def __init__(self, root: Element | None = None) -> None:
        self.root = root

    def set_root(self, root: Element) -> None:
        if self.root is not None:
            raise ValueError("document already has a root element")
        self.root = root

    def iter(self, tag: str | None = None) -> Iterator[Element]:
        if self.root is None:
            return iter(())
        return self.root.iter(tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.root.tag if self.root is not None else None
        return f"Document(root={tag!r})"
