"""Serialization: DOM -> text, and a streaming writer for the generator."""

from __future__ import annotations

from typing import IO

from repro.xmlio.dom import Document, Element, Text
from repro.xmlio.escape import escape_attribute, escape_text


def serialize(node: Document | Element | Text, indent: bool = False) -> str:
    """Serialize a DOM node (or whole document) to an XML string."""
    if isinstance(node, Document):
        if node.root is None:
            return ""
        node = node.root
    parts: list[str] = []
    _serialize_into(node, parts, indent, 0)
    return "".join(parts)


def _serialize_into(
    node: Element | Text, parts: list[str], indent: bool, depth: int
) -> None:
    pad = "  " * depth if indent else ""
    if isinstance(node, Text):
        parts.append(escape_text(node.value))
        return
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"' for name, value in node.attributes.items()
    )
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attrs}/>")
        if indent:
            parts.append("\n")
        return
    only_text = all(isinstance(child, Text) for child in node.children)
    parts.append(f"{pad}<{node.tag}{attrs}>")
    if indent and not only_text:
        parts.append("\n")
    for child in node.children:
        _serialize_into(child, parts, indent and not only_text, depth + 1)
    if not only_text and indent:
        parts.append(pad)
    parts.append(f"</{node.tag}>")
    if indent:
        parts.append("\n")


class XMLWriter:
    """Streaming XML writer with constant memory.

    The generator's resource-efficiency requirement (paper Section 4.5:
    "resource allocation is constant — independent of the size of the
    generated document") rules out building a DOM; this writer emits markup
    straight to a file-like object and only keeps the open-element stack.
    """

    __slots__ = ("_out", "_stack", "_tag_open")

    def __init__(self, out: IO[str]) -> None:
        self._out = out
        self._stack: list[str] = []
        self._tag_open = False

    def declaration(self) -> None:
        self._out.write('<?xml version="1.0" encoding="us-ascii"?>\n')

    def _close_pending(self) -> None:
        if self._tag_open:
            self._out.write(">")
            self._tag_open = False

    def start(self, tag: str, attributes: dict[str, str] | None = None) -> None:
        """Open an element; attributes are written in the given order."""
        self._close_pending()
        self._out.write(f"<{tag}")
        if attributes:
            for name, value in attributes.items():
                self._out.write(f' {name}="{escape_attribute(value)}"')
        self._tag_open = True
        self._stack.append(tag)

    def end(self) -> None:
        """Close the most recently opened element."""
        tag = self._stack.pop()
        if self._tag_open:
            self._out.write("/>")
            self._tag_open = False
        else:
            self._out.write(f"</{tag}>")

    def text(self, value: str) -> None:
        if not value:
            return
        self._close_pending()
        self._out.write(escape_text(value))

    def leaf(self, tag: str, value: str, attributes: dict[str, str] | None = None) -> None:
        """Shorthand for ``start(); text(); end()``."""
        self.start(tag, attributes)
        self.text(value)
        self.end()

    def empty(self, tag: str, attributes: dict[str, str] | None = None) -> None:
        """Shorthand for an element with no content."""
        self.start(tag, attributes)
        self.end()

    @property
    def depth(self) -> int:
        return len(self._stack)

    def finish(self) -> None:
        """Assert that every opened element was closed."""
        if self._stack:
            raise ValueError(f"unclosed elements at finish: {self._stack}")
