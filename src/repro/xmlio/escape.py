"""Escaping and entity resolution for the supported XML subset."""

from __future__ import annotations

from repro.errors import XMLSyntaxError

_PREDEFINED = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def resolve_references(value: str, line: int = 0, column: int = 0) -> str:
    """Replace predefined entity and character references in ``value``.

    Unknown entity references are an error: the paper's generator never emits
    them (Section 4.4 excludes Entities), so their presence means the input
    is outside the supported subset.
    """
    if "&" not in value:
        return value
    parts: list[str] = []
    position = 0
    while True:
        amp = value.find("&", position)
        if amp < 0:
            parts.append(value[position:])
            break
        parts.append(value[position:amp])
        end = value.find(";", amp + 1)
        if end < 0:
            raise XMLSyntaxError("unterminated entity reference", line, column)
        name = value[amp + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                parts.append(chr(int(name[2:], 16)))
            except ValueError as exc:
                raise XMLSyntaxError(f"bad character reference &{name};", line, column) from exc
        elif name.startswith("#"):
            try:
                parts.append(chr(int(name[1:])))
            except ValueError as exc:
                raise XMLSyntaxError(f"bad character reference &{name};", line, column) from exc
        elif name in _PREDEFINED:
            parts.append(_PREDEFINED[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", line, column)
        position = end + 1
    return "".join(parts)
