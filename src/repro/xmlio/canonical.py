"""Canonical XML for query-result equivalence.

The paper (Section 1) observes that deciding when two query processors'
outputs are equivalent is itself a hard problem, citing Canonical XML as an
attempt.  The benchmark harness needs a practical answer so that the same
query run on seven different stores can be checked for agreement.  We provide
a small canonical form:

* attributes sorted by name, double-quoted, minimally escaped;
* adjacent text nodes coalesced; optional whitespace normalization;
* an *unordered* mode in which sibling subtrees are sorted by their own
  canonical string — used for queries whose result order is unspecified.
"""

from __future__ import annotations

from repro.xmlio.dom import Document, Element, Text
from repro.xmlio.escape import escape_attribute, escape_text


def canonicalize(
    node: Document | Element | Text,
    ordered: bool = True,
    strip_whitespace: bool = False,
) -> str:
    """Render a node in canonical form.

    ``ordered=False`` sorts sibling subtrees, giving a form that is invariant
    under result reordering.  ``strip_whitespace=True`` drops
    whitespace-only text nodes and trims the rest — useful when comparing
    indented against unindented serializations.
    """
    if isinstance(node, Document):
        if node.root is None:
            return ""
        node = node.root
    return _render(node, ordered, strip_whitespace)


def _render(node: Element | Text, ordered: bool, strip: bool) -> str:
    if isinstance(node, Text):
        value = node.value
        if strip:
            value = value.strip()
        return escape_text(value)
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in sorted(node.attributes.items())
    )
    pieces: list[str] = []
    pending_text: list[str] = []

    def flush() -> None:
        if pending_text:
            combined = "".join(pending_text)
            pending_text.clear()
            if strip:
                combined = combined.strip()
            if combined:
                pieces.append(escape_text(combined))

    for child in node.children:
        if isinstance(child, Text):
            pending_text.append(child.value)
        else:
            flush()
            pieces.append(_render(child, ordered, strip))
    flush()
    if not ordered:
        pieces.sort()
    body = "".join(pieces)
    return f"<{node.tag}{attrs}>{body}</{node.tag}>"


def equivalent(
    left: Document | Element | Text,
    right: Document | Element | Text,
    ordered: bool = True,
    strip_whitespace: bool = True,
) -> bool:
    """True when the two trees have identical canonical forms."""
    return canonicalize(left, ordered, strip_whitespace) == canonicalize(
        right, ordered, strip_whitespace
    )
