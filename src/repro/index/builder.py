"""One-pass index construction through the store navigation API.

The builder walks the document pre-order using only ``children()`` /
``tag()`` / ``children_by_tag()`` / ``attribute()`` / ``child_texts()`` —
the same surface the evaluator navigates — so the identical
:class:`~repro.index.spec.IndexSpec` produces equivalent extents on every
store architecture, and a probe answered from an index is guaranteed to
name the same nodes a scan of that store would.

Subtrees rooted at a spec ``stop_tag`` are recorded (the root node itself
appears in the path index and can carry field values) but never descended
into; on System C's schema store this keeps the CLOB fragments unparsed.
"""

from __future__ import annotations

import time

from repro.errors import StorageError
from repro.index.indexes import PathIndex, SortedNumericIndex, ValueIndex
from repro.index.spec import SORTED, VALUE, FieldSpec, IndexSpec

FieldKey = tuple[tuple[str, ...], tuple[str, ...]]


def extract_values(store, node, accessor: tuple[str, ...]) -> list[str]:
    """The raw key values of ``node`` under ``accessor``.

    Mirrors the evaluator's step semantics exactly: attribute steps yield
    the value when present (empty strings included), ``text()`` steps yield
    the non-empty direct text runs, child steps fan out over all matching
    children.  The result order is document order.
    """
    nodes = [node]
    for position, step in enumerate(accessor):
        terminal = position == len(accessor) - 1
        if step.startswith("@"):
            if not terminal:
                raise StorageError(f"attribute step {step!r} must be terminal")
            name = step[1:]
            values = [store.attribute(n, name) for n in nodes]
            return [value for value in values if value is not None]
        if step == "text()":
            if not terminal:
                raise StorageError("text() step must be terminal")
            return [text for n in nodes for text in store.child_texts(n) if text]
        nodes = [child for n in nodes for child in store.children_by_tag(n, step)]
    # Element-valued accessor (no terminal @attr/text()): the string values.
    return [store.string_value(n) for n in nodes]


class IndexSet:
    """Every secondary index built for one loaded document on one store."""

    __slots__ = ("spec", "values", "sorteds", "paths", "build_seconds",
                 "nodes_walked", "next_seq", "deltas_applied",
                 "maintenance_seconds")

    def __init__(self, spec: IndexSpec) -> None:
        self.spec = spec
        self.values: dict[FieldKey, ValueIndex] = {}
        self.sorteds: dict[FieldKey, SortedNumericIndex] = {}
        self.paths: PathIndex | None = PathIndex() if spec.build_path_index else None
        self.build_seconds = 0.0
        self.nodes_walked = 0
        # Incremental-maintenance state: the build walk's seq counter keeps
        # running so per-node deltas get fresh, monotone document-order-
        # consistent sequence numbers (see repro.index.maintenance).
        self.next_seq = 0
        self.deltas_applied = 0
        self.maintenance_seconds = 0.0

    # -- lookup ------------------------------------------------------------------

    def value_field(self, path: tuple[str, ...],
                    accessor: tuple[str, ...]) -> ValueIndex | None:
        return self.values.get((path, accessor))

    def sorted_field(self, path: tuple[str, ...],
                     accessor: tuple[str, ...]) -> SortedNumericIndex | None:
        return self.sorteds.get((path, accessor))

    def covers_path(self, path: tuple[str, ...]) -> bool:
        """Whether the path index is authoritative for ``path``.

        Paths running *through* a stop tag were never walked: for those the
        index cannot distinguish "empty extent" from "not indexed", so the
        planner must fall back to navigation.
        """
        if self.paths is None:
            return False
        return not any(tag in self.spec.stop_tags for tag in path[:-1])

    def path_extent(self, path: tuple[str, ...]) -> list | None:
        """The document-ordered extent of ``path``, or None when uncovered."""
        if not self.covers_path(path):
            return None
        return self.paths.nodes(path)

    # -- reporting ---------------------------------------------------------------

    def size_bytes(self) -> int:
        total = sum(index.size_bytes() for index in self.values.values())
        total += sum(index.size_bytes() for index in self.sorteds.values())
        if self.paths is not None:
            total += self.paths.size_bytes()
        return total

    def summary(self) -> dict:
        return {
            "build_ms": round(self.build_seconds * 1000.0, 3),
            "nodes_walked": self.nodes_walked,
            "deltas_applied": self.deltas_applied,
            "maintenance_ms": round(self.maintenance_seconds * 1000.0, 3),
            "size_bytes": self.size_bytes(),
            "value": [self.values[key].summary() for key in sorted(self.values)],
            "sorted": [self.sorteds[key].summary() for key in sorted(self.sorteds)],
            "paths": self.paths.summary() if self.paths is not None else None,
        }


def build_index_set(store, spec: IndexSpec) -> IndexSet:
    """Build every index of ``spec`` in one document-order walk of ``store``."""
    started = time.perf_counter()
    index_set = IndexSet(spec)
    fields_at: dict[tuple[str, ...], list[FieldSpec]] = {}
    for field in spec.fields:
        if field.kind == VALUE:
            index_set.values[field.key] = ValueIndex(field)
        elif field.kind == SORTED:
            index_set.sorteds[field.key] = SortedNumericIndex(field)
        else:
            raise StorageError(f"unknown index kind {field.kind!r}")
        fields_at.setdefault(field.path, []).append(field)

    paths = index_set.paths
    stop_tags = spec.stop_tags
    root = store.root()
    stack: list[tuple[object, tuple[str, ...]]] = [(root, (store.tag(root),))]
    seq = 0
    while stack:
        node, path = stack.pop()
        if paths is not None:
            paths.add(path, node)
        for field in fields_at.get(path, ()):
            target = (index_set.values[field.key] if field.kind == VALUE
                      else index_set.sorteds[field.key])
            target.extent_size += 1
            raws = extract_values(store, node, field.accessor)
            # Raw-cardinality counters: the planner may only strip an
            # exactly-one()/zero-or-one() wrapper (or fold an arithmetic
            # scale) when the document proves the wrapper could never
            # raise — i.e. when these stay zero.
            if not raws:
                target.nodes_empty += 1
            elif len(raws) > 1:
                target.nodes_multi += 1
            for raw in raws:
                target.add(raw, seq, node)
        seq += 1
        if path[-1] not in stop_tags:
            for child in reversed(store.children(node)):
                stack.append((child, path + (store.tag(child),)))

    for index in index_set.sorteds.values():
        index.freeze()
    index_set.nodes_walked = seq
    index_set.next_seq = seq
    index_set.build_seconds = time.perf_counter() - started
    return index_set
