"""Incremental secondary-index maintenance.

The builder (:mod:`repro.index.builder`) constructs every index in one
document-order walk; this module keeps the same indexes current under
document mutations by applying *per-node deltas* instead of rebuilding:

* an inserted subtree is walked exactly like the builder walks (pre-order,
  never descending below a spec ``stop_tag``), adding path-extent entries
  at their document-order positions and field entries under fresh sequence
  numbers;
* a subtree about to be removed is walked the same way *before* the
  physical removal (handles into it die with it), snapshotting the raw
  field values so the exact entries it contributed can be retracted;
* a text/attribute write re-extracts the raw values of every indexed field
  whose accessor reaches through the changed node and swaps the entries.

Sequence numbers: probe results restore document order by sorting on the
build seq (see :func:`repro.xquery.evaluator._doc_order_handles`), so
maintenance must hand out seqs consistent with document order *within each
indexed extent*.  The benchmark's operation set appends entities at their
container ends (the DTD fixes everything else), so the monotone counter
continued from the build walk preserves that invariant; the differential
tests in tests/test_update.py verify it against scratch reloads.

The rebuild alternative (drop + :func:`build_index_set`) stays available
through ``maintenance_mode="rebuild"`` so the ablation benchmark can price
both strategies on the same operations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.index.builder import IndexSet, build_index_set, extract_values
from repro.index.spec import VALUE

FieldKey = tuple[tuple[str, ...], tuple[str, ...]]


def _fields_at(index_set: IndexSet) -> dict[tuple[str, ...], list]:
    at: dict[tuple[str, ...], list] = {}
    for field_spec in index_set.spec.fields:
        at.setdefault(field_spec.path, []).append(field_spec)
    return at


def _field_index(index_set: IndexSet, field_spec):
    if field_spec.kind == VALUE:
        return index_set.values[field_spec.key]
    return index_set.sorteds[field_spec.key]


def walk_subtree(store, node, path: tuple[str, ...], stop_tags: frozenset[str]):
    """Pre-order ``(handle, path)`` pairs of a subtree, recording stop-tag
    roots but never descending into them — the builder's walk, verbatim."""
    stack = [(node, path)]
    while stack:
        current, current_path = stack.pop()
        yield current, current_path
        if current_path[-1] not in stop_tags:
            for child in reversed(store.children(current)):
                stack.append((child, current_path + (store.tag(child),)))


def _touch_counters(index, raws: list, delta: int) -> None:
    index.extent_size += delta
    if not raws:
        index.nodes_empty += delta
    elif len(raws) > 1:
        index.nodes_multi += delta


def apply_insertion(store, index_set: IndexSet, node,
                    path: tuple[str, ...]) -> int:
    """Index an inserted subtree by per-node deltas; returns nodes walked."""
    started = time.perf_counter()
    fields_at = _fields_at(index_set)
    paths = index_set.paths
    # Bisect extents on the store's cheap order key: going through
    # store.doc_position could force an O(document) rank relabel into the
    # write path, which is exactly the cost incremental maintenance exists
    # to avoid.
    position_key = store.order_key
    walked = 0
    for current, current_path in walk_subtree(store, node, path,
                                              index_set.spec.stop_tags):
        walked += 1
        if paths is not None:
            paths.insert(current_path, current, position_key)
        seq = index_set.next_seq
        index_set.next_seq += 1
        for field_spec in fields_at.get(current_path, ()):
            index = _field_index(index_set, field_spec)
            raws = extract_values(store, current, field_spec.accessor)
            _touch_counters(index, raws, +1)
            for raw in raws:
                index.insert(raw, seq, current)
    index_set.deltas_applied += walked
    index_set.maintenance_seconds += time.perf_counter() - started
    return walked


@dataclass(slots=True)
class RemovalPlan:
    """Everything a subtree removal retracts, snapshotted pre-removal."""

    nodes: list[tuple[object, tuple[str, ...]]] = field(default_factory=list)
    field_entries: list[tuple[FieldKey, str, object, list]] = field(default_factory=list)


def plan_removal(store, index_set: IndexSet, node,
                 path: tuple[str, ...]) -> RemovalPlan:
    """Snapshot the entries a subtree contributed (call BEFORE removing)."""
    fields_at = _fields_at(index_set)
    plan = RemovalPlan()
    for current, current_path in walk_subtree(store, node, path,
                                              index_set.spec.stop_tags):
        plan.nodes.append((current, current_path))
        for field_spec in fields_at.get(current_path, ()):
            raws = extract_values(store, current, field_spec.accessor)
            plan.field_entries.append(
                (field_spec.key, field_spec.kind, current, raws))
    return plan


def apply_removal(index_set: IndexSet, plan: RemovalPlan) -> int:
    """Retract a removed subtree's entries (call AFTER removing)."""
    started = time.perf_counter()
    paths = index_set.paths
    if paths is not None:
        for handle, node_path in plan.nodes:
            paths.remove(node_path, handle)
    for (field_path, accessor), kind, handle, raws in plan.field_entries:
        index = (index_set.values[(field_path, accessor)] if kind == VALUE
                 else index_set.sorteds[(field_path, accessor)])
        _touch_counters(index, raws, -1)
        for raw in raws:
            index.remove(raw, handle)
    index_set.deltas_applied += len(plan.nodes)
    index_set.maintenance_seconds += time.perf_counter() - started
    return len(plan.nodes)


@dataclass(slots=True)
class ValueChangePlan:
    """Old raw values of every field a scalar write reaches through."""

    entries: list[tuple[object, object, list]] = field(default_factory=list)
    # (field_spec, extent_handle, old_raws)


def _accessor_targets(accessor: tuple[str, ...]) -> tuple[tuple[str, ...], str]:
    """``(element steps, terminal kind)`` of an accessor: the terminal is
    ``"text"``/an attribute name/``"value"`` (element-valued accessors read
    whole string values)."""
    if accessor[-1] == "text()":
        return accessor[:-1], "text"
    if accessor[-1].startswith("@"):
        return accessor[:-1], accessor[-1][1:]
    return accessor, "value"


def plan_value_change(store, index_set: IndexSet, node, path: tuple[str, ...],
                      kind: str, attr: str | None = None) -> ValueChangePlan:
    """Snapshot fields affected by a scalar write at ``node`` (pre-write).

    ``kind`` is ``"text"`` or ``"attribute"``; the affected fields are the
    spec entries whose extent path prefixes ``path`` and whose accessor
    reaches the written slot.
    """
    plan = ValueChangePlan()
    for field_spec in index_set.spec.fields:
        extent_path = field_spec.path
        if path[:len(extent_path)] != extent_path:
            continue
        steps, terminal = _accessor_targets(field_spec.accessor)
        relative = path[len(extent_path):]
        if terminal == "value":
            if relative[:len(steps)] != steps and steps[:len(relative)] != relative:
                continue                # accessor subtree does not meet the write
        else:
            if relative != steps:
                continue
            if kind == "text" and terminal != "text":
                continue
            if kind == "attribute" and terminal != attr:
                continue
        extent_node = node
        for _ in range(len(relative)):
            extent_node = store.parent(extent_node)
        raws = extract_values(store, extent_node, field_spec.accessor)
        plan.entries.append((field_spec, extent_node, raws))
    return plan


def apply_value_change(store, index_set: IndexSet, plan: ValueChangePlan) -> int:
    """Swap the snapshotted entries for freshly extracted ones (post-write)."""
    started = time.perf_counter()
    touched = 0
    for field_spec, extent_node, old_raws in plan.entries:
        index = _field_index(index_set, field_spec)
        seq = None
        for raw in old_raws:
            if seq is None:
                seq = index.seq_of(raw, extent_node)
            index.remove(raw, extent_node)
        new_raws = extract_values(store, extent_node, field_spec.accessor)
        _touch_counters(index, old_raws, -1)
        _touch_counters(index, new_raws, +1)
        if seq is None:                 # node had no live entries: fresh seq
            seq = index_set.next_seq
            index_set.next_seq += 1
        for raw in new_raws:
            index.insert(raw, seq, extent_node)
        touched += 1
    index_set.deltas_applied += touched
    index_set.maintenance_seconds += time.perf_counter() - started
    return touched


def rebuild(store) -> IndexSet | None:
    """The wholesale alternative: reconstruct the entire IndexSet."""
    spec = store.index_spec()
    if spec is None:
        return None
    store.indexes = build_index_set(store, spec)
    return store.indexes
