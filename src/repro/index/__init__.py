"""Secondary indexes for the XML stores.

The paper's fastest systems win the Section 7 queries because they resolve
exact-match lookups (Q1), range predicates (Q5, Q20) and value joins
(Q8-Q12) through auxiliary access structures instead of scans; the index
survey literature (Mahboubi's *Indices in XML Databases*, Simalango's query-
processing survey) catalogs the same three families this package provides:

* :class:`~repro.index.indexes.ValueIndex` — a hash index over *typed*
  element/attribute values (``person/@id``, ``closed_auction/buyer/@person``);
  keys are numbers when the stored string casts, strings otherwise, matching
  the evaluator's runtime-casting comparison semantics.
* :class:`~repro.index.indexes.SortedNumericIndex` — sorted ``(key, node)``
  pairs for range and inequality predicates, probed by bisection.
* :class:`~repro.index.indexes.PathIndex` — dictionary-encoded label paths
  mapped to node-id lists: the structural summary generalized to *every*
  store architecture, not just System D's.

Indexes are declared by an :class:`~repro.index.spec.IndexSpec` (what to
index, like ``CREATE INDEX`` statements) and built by
:func:`~repro.index.builder.build_index_set` at ``Store.mark_loaded`` time,
purely through the store's own navigation API — so one builder serves all
seven architectures and the resulting extents are identical across them.
The planner (:mod:`repro.xquery.planner`) consults the per-field cardinality
statistics to choose scan vs probe; the evaluator executes the probe
operators; the service layer drops a store's ``IndexSet`` together with its
cached results when a document is reloaded.

Under document *updates* the set stays current by per-node deltas
(:mod:`repro.index.maintenance`, driven by :mod:`repro.update.engine`);
the wholesale rebuild stays available as the ablation baseline.
"""

from repro.index.builder import IndexSet, build_index_set, extract_values
from repro.index.indexes import (
    PathIndex, SortedNumericIndex, ValueIndex, normalize_key,
)
from repro.index.spec import DEFAULT_AUCTION_SPEC, FieldSpec, IndexSpec

__all__ = [
    "DEFAULT_AUCTION_SPEC",
    "FieldSpec",
    "IndexSet",
    "IndexSpec",
    "PathIndex",
    "SortedNumericIndex",
    "ValueIndex",
    "build_index_set",
    "extract_values",
    "normalize_key",
]
