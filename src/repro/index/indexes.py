"""The three index structures: value (hash), sorted numeric, and path.

All three store opaque store handles next to a dense build sequence number
(the builder walks in document order, so the sequence number *is* a
document-order key that works for every handle representation — ints, DOM
objects, composite tuples).  Probe results therefore come back as
``(seq, handle)`` pairs that callers can sort or deduplicate without ever
asking the store for a document position.
"""

from __future__ import annotations

import sys
from bisect import bisect_left, bisect_right, insort

from repro.errors import QueryError


def normalize_key(value) -> float | str | None:
    """The typed key of one raw value, matching runtime-cast comparisons.

    The benchmark stores every value as a string and casts at runtime
    (paper Section 6: the "Casting" challenge); two values are ``=`` when
    both cast to the same number, or failing that, when the strings match.
    A hash index must collapse exactly the same equivalence classes, so
    keys are floats whenever the string casts and raw strings otherwise.
    NaN never equals anything (including itself) under runtime casting, so
    NaN-casting values return None: not indexable, never probe-able.
    """
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        number = float(value)
    elif isinstance(value, str):
        try:
            number = float(value.strip())
        except ValueError:
            return value
    else:
        return None
    if number != number:                # NaN
        return None
    return number


class ValueIndex:
    """Hash index over the typed values of one field."""

    __slots__ = ("field", "extent_size", "nodes_empty", "nodes_multi",
                 "_buckets", "_entries")

    def __init__(self, field) -> None:
        self.field = field
        self.extent_size = 0            # nodes at the field's path
        self.nodes_empty = 0            # extent nodes with no accessor value
        self.nodes_multi = 0            # extent nodes with 2+ accessor values
        self._entries = 0
        self._buckets: dict[float | str, list[tuple[int, object]]] = {}

    def add(self, raw_value, seq: int, handle) -> None:
        key = normalize_key(raw_value)
        if key is None:
            return
        bucket = self._buckets.setdefault(key, [])
        # A node contributes one probe hit per key however many of its
        # values collapse to that key (existential semantics): drop the
        # duplicate the builder would otherwise append back-to-back.
        if bucket and bucket[-1][0] == seq:
            return
        bucket.append((seq, handle))
        self._entries += 1

    def probe(self, value) -> list[tuple[int, object]]:
        """Entries whose key equals ``value`` (document order)."""
        key = normalize_key(value)
        if key is None:
            return []
        return self._buckets.get(key, [])

    # -- incremental maintenance -------------------------------------------------

    def insert(self, raw_value, seq: int, handle) -> None:
        """Add one entry at its seq position (per-node update delta).

        Unlike the build-time :meth:`add` (which only ever appends), an
        update may land anywhere in a bucket's seq order, so the entry is
        insorted; a duplicate ``(seq, *)`` entry (two raw values of one
        node collapsing to the same key) is dropped exactly like at build.
        """
        key = normalize_key(raw_value)
        if key is None:
            return
        bucket = self._buckets.setdefault(key, [])
        position = bisect_left(bucket, seq, key=lambda entry: entry[0])
        if position < len(bucket) and bucket[position][0] == seq:
            return
        bucket.insert(position, (seq, handle))
        self._entries += 1

    def remove(self, raw_value, handle) -> None:
        """Drop the entry ``raw_value`` contributed for ``handle``.

        Missing entries are ignored (the value may have been un-indexable,
        e.g. NaN-casting, in which case :meth:`add` never stored it).
        """
        key = normalize_key(raw_value)
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        for position, (_seq, entry_handle) in enumerate(bucket):
            if entry_handle == handle:
                del bucket[position]
                self._entries -= 1
                break
        if not bucket:
            del self._buckets[key]

    def seq_of(self, raw_value, handle) -> int | None:
        """The build/maintenance seq under which ``handle`` is bucketed."""
        key = normalize_key(raw_value)
        if key is None:
            return None
        for seq, entry_handle in self._buckets.get(key, ()):
            if entry_handle == handle:
                return seq
        return None

    @property
    def entries(self) -> int:
        return self._entries

    @property
    def distinct_keys(self) -> int:
        return len(self._buckets)

    def key_counts(self) -> dict[float | str, int]:
        """``key -> number of distinct nodes holding it`` for every key.

        Entries are deduplicated per (node, key) at insert, so a bucket's
        length *is* its node count — the build side of a distributed
        count-join comes straight off the index, no navigation walk.
        """
        return {key: len(bucket) for key, bucket in self._buckets.items()}

    @property
    def avg_bucket(self) -> float:
        """Expected matches of one probe — the planner's cardinality stat."""
        return self._entries / len(self._buckets) if self._buckets else 0.0

    def size_bytes(self) -> int:
        total = sys.getsizeof(self._buckets)
        for key, bucket in self._buckets.items():
            total += sys.getsizeof(key) + sys.getsizeof(bucket) + 16 * len(bucket)
        return total

    def summary(self) -> dict:
        return {
            "field": self.field.label,
            "kind": "value",
            "entries": self._entries,
            "distinct_keys": self.distinct_keys,
            "extent_size": self.extent_size,
            "avg_bucket": round(self.avg_bucket, 2),
        }


class SortedNumericIndex:
    """Sorted ``(key, node)`` pairs for range and inequality predicates."""

    __slots__ = ("field", "extent_size", "nodes_empty", "nodes_multi",
                 "_keys", "_seqs", "_handles", "_pending")

    def __init__(self, field) -> None:
        self.field = field
        self.extent_size = 0
        self.nodes_empty = 0            # extent nodes with no raw accessor value
        self.nodes_multi = 0            # extent nodes with 2+ raw accessor values
        self._pending: list[tuple[float, int, object]] | None = []
        self._keys: list[float] = []
        self._seqs: list[int] = []
        self._handles: list = []

    def add(self, raw_value, seq: int, handle) -> None:
        key = normalize_key(raw_value)
        if key is None or isinstance(key, str):
            return                      # non-numeric: no ordering predicate matches
        assert self._pending is not None, "index already frozen"
        self._pending.append((key, seq, handle))

    def freeze(self) -> None:
        """Sort once after the build walk; probes are bisections thereafter."""
        assert self._pending is not None
        self._pending.sort(key=lambda entry: (entry[0], entry[1]))
        self._keys = [entry[0] for entry in self._pending]
        self._seqs = [entry[1] for entry in self._pending]
        self._handles = [entry[2] for entry in self._pending]
        self._pending = None

    def _slice(self, op: str, bound: float) -> tuple[int, int]:
        """Index interval of entries whose key satisfies ``key OP bound``."""
        if op == "<":
            return 0, bisect_left(self._keys, bound)
        if op == "<=":
            return 0, bisect_right(self._keys, bound)
        if op == ">":
            return bisect_right(self._keys, bound), len(self._keys)
        if op == ">=":
            return bisect_left(self._keys, bound), len(self._keys)
        if op == "=":
            return bisect_left(self._keys, bound), bisect_right(self._keys, bound)
        raise QueryError(f"sorted index cannot answer op {op!r}")

    def range(self, op: str, bound: float) -> list[tuple[int, object]]:
        """Matching ``(seq, handle)`` pairs in key order (may repeat a node
        once per matching value; callers deduplicate by seq)."""
        start, stop = self._slice(op, bound)
        return list(zip(self._seqs[start:stop], self._handles[start:stop]))

    def count(self, op: str, bound: float) -> int:
        """Exact matching-entry count — compile-time selectivity for free."""
        start, stop = self._slice(op, bound)
        return stop - start

    def outer_compare(self, op: str, outer: float,
                      scale: float = 1.0) -> list[tuple[int, object]]:
        """Entries whose key ``v`` satisfies ``outer OP scale*v``.

        The probe side of an index-backed sorted join (Q11/Q12's
        ``$income > 5000 * $initial``).  The comparison bisects on the
        *scaled* key so the float arithmetic is bit-identical to what a
        per-query-built sorted join would compute — boundary values land on
        the same side either way.  Requires ``scale > 0`` (monotone).
        """
        keys = self._keys
        key_fn = None if scale == 1.0 else (lambda v: scale * v)
        if op == ">":                   # outer > scale*v  ->  keep the prefix
            start, stop = 0, bisect_left(keys, outer, key=key_fn)
        elif op == ">=":
            start, stop = 0, bisect_right(keys, outer, key=key_fn)
        elif op == "<":
            start, stop = bisect_right(keys, outer, key=key_fn), len(keys)
        elif op == "<=":
            start, stop = bisect_left(keys, outer, key=key_fn), len(keys)
        else:
            raise QueryError(f"sorted join cannot answer op {op!r}")
        return list(zip(self._seqs[start:stop], self._handles[start:stop]))

    # -- incremental maintenance -------------------------------------------------

    def insert(self, raw_value, seq: int, handle) -> None:
        """Splice one entry into the frozen arrays at its (key, seq) slot."""
        key = normalize_key(raw_value)
        if key is None or isinstance(key, str):
            return
        assert self._pending is None, "freeze the index before maintaining it"
        position = bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key \
                and self._seqs[position] < seq:
            position += 1
        self._keys.insert(position, key)
        self._seqs.insert(position, seq)
        self._handles.insert(position, handle)

    def remove(self, raw_value, handle) -> None:
        """Drop the entry ``raw_value`` contributed for ``handle``."""
        key = normalize_key(raw_value)
        if key is None or isinstance(key, str):
            return
        start = bisect_left(self._keys, key)
        stop = bisect_right(self._keys, key)
        for position in range(start, stop):
            if self._handles[position] == handle:
                del self._keys[position]
                del self._seqs[position]
                del self._handles[position]
                return

    def seq_of(self, raw_value, handle) -> int | None:
        """The seq under which ``handle`` is stored for ``raw_value``."""
        key = normalize_key(raw_value)
        if key is None or isinstance(key, str):
            return None
        start = bisect_left(self._keys, key)
        stop = bisect_right(self._keys, key)
        for position in range(start, stop):
            if self._handles[position] == handle:
                return self._seqs[position]
        return None

    @property
    def entries(self) -> int:
        return len(self._keys)

    def bounds(self) -> tuple[float, float] | None:
        if not self._keys:
            return None
        return (self._keys[0], self._keys[-1])

    def size_bytes(self) -> int:
        return (sys.getsizeof(self._keys) + sys.getsizeof(self._seqs)
                + sys.getsizeof(self._handles) + 24 * len(self._keys))

    def summary(self) -> dict:
        bounds = self.bounds()
        return {
            "field": self.field.label,
            "kind": "sorted",
            "entries": self.entries,
            "extent_size": self.extent_size,
            "min": bounds[0] if bounds else None,
            "max": bounds[1] if bounds else None,
        }


class PathIndex:
    """Dictionary-encoded label paths mapped to node lists.

    Every distinct root-to-node tag sequence gets a small integer id (the
    dictionary encoding); the extent of path id ``p`` is the document-
    ordered list of handles whose label path is ``p``.  This generalizes
    System D's structural summary to every store architecture.
    """

    __slots__ = ("_ids", "_extents")

    def __init__(self) -> None:
        self._ids: dict[tuple[str, ...], int] = {}
        self._extents: list[list] = []

    def add(self, path: tuple[str, ...], handle) -> None:
        pid = self._ids.get(path)
        if pid is None:
            pid = len(self._extents)
            self._ids[path] = pid
            self._extents.append([])
        self._extents[pid].append(handle)

    def path_id(self, path: tuple[str, ...]) -> int | None:
        return self._ids.get(path)

    def nodes(self, path: tuple[str, ...]) -> list:
        """The extent of ``path`` in document order ([] when absent)."""
        pid = self._ids.get(path)
        return self._extents[pid] if pid is not None else []

    def count(self, path: tuple[str, ...]) -> int:
        pid = self._ids.get(path)
        return len(self._extents[pid]) if pid is not None else 0

    # -- incremental maintenance -------------------------------------------------

    def insert(self, path: tuple[str, ...], handle, position_key) -> None:
        """Splice ``handle`` into its path extent at document order.

        ``position_key`` maps a handle to a sortable document-order key
        (normally the store's ``doc_position``); the extent stays ordered
        so :meth:`nodes` keeps its document-order contract under updates.
        """
        pid = self._ids.get(path)
        if pid is None:
            self.add(path, handle)
            return
        extent = self._extents[pid]
        position = bisect_left(extent, position_key(handle), key=position_key)
        extent.insert(position, handle)

    def remove(self, path: tuple[str, ...], handle) -> None:
        """Drop ``handle`` from its path extent (ignored when absent)."""
        pid = self._ids.get(path)
        if pid is None:
            return
        try:
            self._extents[pid].remove(handle)
        except ValueError:
            pass

    @property
    def distinct_paths(self) -> int:
        return len(self._ids)

    @property
    def total_nodes(self) -> int:
        return sum(len(extent) for extent in self._extents)

    def paths(self) -> list[tuple[str, ...]]:
        return list(self._ids)

    def size_bytes(self) -> int:
        total = sys.getsizeof(self._ids) + sys.getsizeof(self._extents)
        for path, pid in self._ids.items():
            total += sum(sys.getsizeof(tag) for tag in path)
            total += sys.getsizeof(self._extents[pid]) + 8 * len(self._extents[pid])
        return total

    def summary(self) -> dict:
        return {"distinct_paths": self.distinct_paths, "nodes": self.total_nodes}
