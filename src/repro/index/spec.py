"""Index declarations: which fields of a document get secondary indexes.

A :class:`FieldSpec` names one indexed field the way a ``CREATE INDEX``
statement would: the *label path* of the indexed extent (every node whose
root-to-node tag sequence equals ``path``) plus an *accessor* — the steps
from an extent node to the key value:

* ``("@id",)``                 — an attribute of the node itself;
* ``("text()",)``              — the node's own text runs;
* ``("price", "text()")``      — a child element's text;
* ``("buyer", "@person")``     — a child element's attribute (multi-valued
  when the child repeats, exactly like the existential ``=`` of XQuery
  general comparisons).

The default spec below covers the access paths the benchmark queries
actually exercise; it is data, not code — stores build whatever spec
:meth:`repro.storage.interface.Store.index_spec` returns.

``stop_tags`` bounds the builder's walk: the auction document's
document-centric islands (``description``/``text`` CLOB content) are never
descended into, which keeps the build cheap, keeps System C's lazily parsed
fragments lazy, and mirrors where a real engine would switch from
structured indexing to full-text indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

VALUE = "value"
SORTED = "sorted"


@dataclass(frozen=True, slots=True)
class FieldSpec:
    """One indexed field: an extent path, a key accessor, an index family."""

    path: tuple[str, ...]
    accessor: tuple[str, ...]
    kind: str                           # VALUE | SORTED

    @property
    def key(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """The (path, accessor) pair indexes are registered under."""
        return (self.path, self.accessor)

    @property
    def label(self) -> str:
        return "/".join(self.path) + " :: " + "/".join(self.accessor)


@dataclass(frozen=True, slots=True)
class IndexSpec:
    """Everything :func:`~repro.index.builder.build_index_set` needs."""

    fields: tuple[FieldSpec, ...]
    stop_tags: frozenset[str]
    build_path_index: bool = True


_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

#: Tags whose subtrees hold document-centric (CLOB-like) content; the
#: builder records these nodes but never descends into them.
AUCTION_STOP_TAGS = frozenset(
    ("description", "text", "parlist", "listitem", "bold", "keyword", "emph"))

DEFAULT_AUCTION_SPEC = IndexSpec(
    fields=(
        # -- exact-match / join keys (hash) ----------------------------------
        FieldSpec(("site", "people", "person"), ("@id",), VALUE),
        FieldSpec(("site", "categories", "category"), ("@id",), VALUE),
        FieldSpec(("site", "open_auctions", "open_auction"), ("@id",), VALUE),
        FieldSpec(("site", "closed_auctions", "closed_auction"),
                  ("buyer", "@person"), VALUE),
        FieldSpec(("site", "closed_auctions", "closed_auction"),
                  ("itemref", "@item"), VALUE),
        *(FieldSpec(("site", "regions", region, "item"), ("@id",), VALUE)
          for region in _REGIONS),
        # -- range / inequality keys (sorted) --------------------------------
        FieldSpec(("site", "closed_auctions", "closed_auction"),
                  ("price", "text()"), SORTED),
        FieldSpec(("site", "open_auctions", "open_auction", "initial"),
                  ("text()",), SORTED),
        FieldSpec(("site", "people", "person", "profile"), ("@income",), SORTED),
    ),
    stop_tags=AUCTION_STOP_TAGS,
)
