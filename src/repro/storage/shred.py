"""Flat-file shredder — the paper's "mapping tool".

Section 7: "They include the data generator and the query set along with a
mapping tool to convert the benchmark document into a flat file that may be
bulk-loaded into a (relational) DBMS; a variety of formats are available."

Three formats are offered, one per relational mapping family:

* ``edge``   — the System-A heap: nodes / texts / attrs delimited files;
* ``path``   — the System-B fragmentation: one file per distinct path;
* ``schema`` — the System-C DTD-derived relations.

Values are tab-separated with ``\\N`` for NULL (the classic bulk-load dialect).
"""

from __future__ import annotations

import os

from repro.errors import StorageError
from repro.storage.fragment_store import FragmentStore
from repro.storage.heap_store import HeapStore
from repro.storage.schema_store import SchemaStore

_NULL = "\\N"


def _write_table(directory: str, name: str, table) -> str:
    """Dump one relational table as a .tbl file; return the path."""
    safe = name.replace("/", "__").replace("@", "AT_").replace("#", "TXT_")
    path = os.path.join(directory, f"{safe}.tbl")
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# " + "\t".join(c.name for c in table.columns) + "\n")
        for row in table.rows():
            handle.write(
                "\t".join(_NULL if v is None else _escape(str(v)) for v in row) + "\n"
            )
    return path


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\t", "\\t").replace("\n", "\\n")


def shred_to_files(text: str, directory: str, mapping: str = "edge") -> list[str]:
    """Shred a benchmark document into bulk-loadable flat files.

    ``mapping`` selects the relational family: ``edge`` (System A),
    ``path`` (System B) or ``schema`` (System C).  Returns the files written.
    """
    os.makedirs(directory, exist_ok=True)
    if mapping == "edge":
        store = HeapStore()
    elif mapping == "path":
        store = FragmentStore()
    elif mapping == "schema":
        store = SchemaStore()
    else:
        raise StorageError(f"unknown mapping {mapping!r}; use edge, path or schema")
    store.load(text)
    catalog = store.catalog
    paths = [
        _write_table(directory, name, catalog.table(name))
        for name in catalog.table_names()
    ]
    return paths
