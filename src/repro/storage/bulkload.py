"""Bulkload harness: timed parse-and-convert, plus the scan baseline.

Table 1 of the paper reports, per system, the database size and the bulkload
time of the 100 MB document as "completed transactions [that] include the
conversion effort needed to map the XML document to a database instance",
next to the 4.9 s expat scan baseline.  :func:`bulkload` reproduces that
measurement for any store; :func:`scan_baseline` reproduces the expat row
with our own tokenizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.storage.interface import Store
from repro.xmlio.parser import scan


@dataclass(frozen=True, slots=True)
class BulkloadReport:
    """Outcome of one bulkload: wall/CPU seconds and resident size."""

    store_name: str
    seconds: float
    cpu_seconds: float
    database_bytes: int
    document_bytes: int

    @property
    def size_ratio(self) -> float:
        """Database size relative to the source document."""
        return self.database_bytes / self.document_bytes if self.document_bytes else 0.0


def bulkload(store: Store, text: str, name: str | None = None) -> BulkloadReport:
    """Load ``text`` into ``store``, timing the complete transaction."""
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    store.load(text)
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    return BulkloadReport(
        store_name=name or type(store).__name__,
        seconds=wall,
        cpu_seconds=cpu,
        database_bytes=store.size_bytes(),
        document_bytes=len(text),
    )


@dataclass(frozen=True, slots=True)
class ScanReport:
    """The tokenizer-only baseline (the paper's expat row)."""

    seconds: float
    events: int
    document_bytes: int


def scan_baseline(text: str) -> ScanReport:
    """Tokenize the document without semantic actions, timed."""
    started = time.perf_counter()
    events = scan(text)
    return ScanReport(time.perf_counter() - started, events, len(text))
