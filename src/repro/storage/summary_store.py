"""System D analogue: compact main-memory store with a structural summary.

System D is the paper's overall winner: main-memory resident, the *smallest*
database (142 MB for the 100 MB document — its mapping is more compact than
the raw text plus DOM overhead), the fastest bulkload, and near-instant
regular-path queries thanks to its "detailed structural summary".

Compactness here is real, not claimed: relative to :class:`TreeStore` this
store drops the redundant child lists, interns tags, and freezes content
lists into tuples; the structural summary and ID index it adds are smaller
than what was removed.

Concurrency: every read path (navigation, summary probes, ID lookups) works
over structures frozen at load time and keeps no shared mutable scratch, so
the query service may execute plans against one loaded instance from many
threads.  The ``stats`` counters are the only shared writes; under races
they can undercount but never affect results.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left

from repro.storage.structural_summary import StructuralSummary
from repro.storage.tree_store import TreeStore


class SummaryStore(TreeStore):
    """Main-memory store with DataGuide summary and ID index (System D)."""

    architecture = "main memory + structural summary (DataGuide) + ID index (System D)"

    def __init__(self) -> None:
        super().__init__()
        self._summary: StructuralSummary | None = None
        self._id_index: dict[str, int] = {}

    def load(self, text: str) -> None:
        super().load(text)
        # Compact representation: no redundant child lists, frozen content,
        # packed 64-bit arrays for the structural columns.
        self._children = []
        self._content = [tuple(parts) for parts in self._content]
        self._summary = StructuralSummary.build(self._tags, self._parents)
        self._summary.compact()
        self._parents = array("q", self._parents)
        self._posts = array("q", self._posts)
        self._id_index = {}
        for node, attrs in enumerate(self._attrs):
            if attrs:
                identifier = attrs.get("id")
                if identifier is not None:
                    self._id_index[identifier] = node

    @property
    def summary(self) -> StructuralSummary:
        self.require_loaded()
        assert self._summary is not None
        return self._summary

    # -- navigation (children derived from content; no redundant lists) ---------

    def children(self, node: int) -> list[int]:
        self.stats.nodes_visited += 1
        return [part for part in self._content[node] if isinstance(part, int)]

    def children_by_tag(self, node: int, tag: str) -> list[int]:
        self.stats.nodes_visited += 1
        tags = self._tags
        return [
            part for part in self._content[node]
            if isinstance(part, int) and tags[part] == tag
        ]

    def size_bytes(self) -> int:
        self.require_loaded()
        # _parents/_posts are packed arrays: getsizeof covers their payload.
        total = sum(
            sys.getsizeof(lst)
            for lst in (self._tags, self._parents, self._posts, self._attrs, self._content)
        )
        for attrs in self._attrs:
            if attrs:
                total += sys.getsizeof(attrs)
                total += sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in attrs.items())
        for content in self._content:
            total += sys.getsizeof(content)
            total += sum(sys.getsizeof(part) for part in content if isinstance(part, str))
        total += self.summary.size_bytes()
        total += sys.getsizeof(self._id_index) + 16 * len(self._id_index)
        return total

    # -- summary-powered capabilities ---------------------------------------------

    def descendants_by_tag(self, node: int, tag: str) -> list[int]:
        """Resolve via the summary: only matching path extents are touched."""
        self.stats.index_lookups += 1
        summary = self.summary
        prefix = self._path_of(node)
        entries = summary.paths_through(prefix, tag)
        if not entries:
            return []
        if not self._sequential:
            # The summary extents stay current under updates (per-node
            # deltas), but id intervals no longer encode containment:
            # restrict via the lazy rank labels instead.
            self._ensure_order()
            order = self._order
            low, high = order[node], self._stop[node]
            result = sorted(
                (n for entry in entries for n in entry.nodes
                 if low < order[n] <= high),
                key=order.__getitem__)
            self.stats.nodes_visited += len(result)
            return result
        if len(entries) == 1:
            nodes = entries[0].nodes
        else:
            nodes = sorted(n for entry in entries for n in entry.nodes)
        # Restrict to this subtree's pre-order interval.
        post = self._posts[node]
        result = [n for n in nodes if node < n <= post]
        self.stats.nodes_visited += len(result)
        return result

    def _path_of(self, node: int) -> tuple[str, ...]:
        parts: list[str] = []
        current: int | None = node
        while current is not None and current >= 0:
            parts.append(self._tags[current])
            parent = self._parents[current]
            current = parent if parent >= 0 else None
        parts.reverse()
        return tuple(parts)

    def count_path(self, path: tuple[str, ...]) -> int | None:
        self.stats.index_lookups += 1
        return self.summary.count(path)

    def nodes_at_path(self, path: tuple[str, ...]) -> list[int] | None:
        self.stats.index_lookups += 1
        return list(self.summary.nodes(path))

    def known_tags(self) -> frozenset[str]:
        return self.summary.tags()

    def lookup_id(self, value: str) -> int | None:
        self.stats.index_lookups += 1
        return self._id_index.get(value)

    def has_id_index(self) -> bool:
        return True

    # -- mutation hooks: summary extents and the ID index take deltas ------------

    _maintains_child_lists = False      # children derive from content

    def _seal_content(self, parts: list) -> tuple:
        return tuple(parts)

    def _splice_content(self, parent: int, slot: int, node_id: int) -> None:
        parts = list(self._content[parent])
        parts.insert(slot, node_id)
        self._content[parent] = tuple(parts)

    def _unsplice_content(self, parent: int, node_id: int) -> None:
        parts = list(self._content[parent])
        parts.remove(node_id)
        self._content[parent] = tuple(parts)

    def _sibling_key(self, node: int) -> tuple[int, ...]:
        """Locally-computed document-order key (no O(n) rank relabel)."""
        key: list[int] = []
        current = node
        while True:
            parent = self._parents[current]
            if parent < 0:
                break
            key.append(self._child_ids(parent).index(current))
            current = parent
        key.reverse()
        return tuple(key)

    def _after_insert(self, new_ids: list[int]) -> None:
        for node in new_ids:
            path = self._path_of(node)
            entry = self._summary.entry(path)
            if entry is None:
                self._summary.add(path, node)
            else:
                nodes = entry.nodes
                if not isinstance(nodes, list):   # thaw the compacted extent
                    nodes = list(nodes)
                    entry.nodes = nodes
                position = bisect_left(nodes, self._sibling_key(node),
                                       key=self._sibling_key)
                nodes.insert(position, node)
            attrs = self._attrs[node]
            if attrs:
                identifier = attrs.get("id")
                if identifier is not None:
                    self._id_index[identifier] = node

    def _after_remove(self, removed: list[tuple[int, tuple[str, ...]]]) -> None:
        for node, path in removed:
            entry = self._summary.entry(path)
            if entry is not None:
                nodes = entry.nodes
                if not isinstance(nodes, list):
                    nodes = list(nodes)
                    entry.nodes = nodes
                try:
                    nodes.remove(node)
                except ValueError:
                    pass
            attrs = self._attrs[node]
            if attrs:
                identifier = attrs.get("id")
                if identifier is not None and self._id_index.get(identifier) == node:
                    del self._id_index[identifier]

    def _after_set_attribute(self, node: int, name: str, value: str) -> None:
        if name == "id":
            self._id_index[value] = node
