"""System C analogue: DTD-derived inlined relational schema.

The paper's System C "reads in a DTD and lets the user generate an optimized
database schema ... this additional information helps to get favorable
performance", and it uses "a data mapping in the spirit of [23] that results
in comparatively simple and efficient execution plans and thus outperforms
all other systems for Q2 and Q3".

The mapping itself lives in :mod:`repro.storage.schema_spec`; this store
interprets it twice — once to shred the parsed document into typed relations,
and once to answer the navigation API by reading columns instead of walking
trees.  Document-centric subtrees are CLOB fragments parsed on demand
(with a buffer-pool-like cache) plus an extracted text column so full-text
predicates (Q14) avoid the parse.
"""

from __future__ import annotations

import sys
import threading

from repro.errors import StorageError
from repro.relational.catalog import Catalog
from repro.relational.table import Column, ColumnType
from repro.storage.interface import Store
from repro.storage.schema_spec import (
    CONTAINER_CONTENTS, ENTITY_SPECS, TABLE_OF_TAG,
    ChildSpec, EntitySpec, FragLeaf, Leaf, Nested, RefLeaf, Struct, Wrapper,
)
from repro.xmlio.dom import Document, Element, Text
from repro.xmlio.parser import parse
from repro.xmlio.serialize import serialize

_INT = ColumnType.INT
_STR = ColumnType.STR

#: Tags that only occur inside CLOB fragments.
FRAGMENT_TAGS = frozenset(("text", "parlist", "listitem", "bold", "keyword", "emph"))

_SITE_CHILDREN = ("regions", "categories", "catgraph", "people",
                  "open_auctions", "closed_auctions")
_REGION_TAGS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


def _spec_at(spec: EntitySpec, idx_path: tuple[int, ...]) -> ChildSpec:
    """Resolve a child spec by its index path within an entity spec."""
    children = spec.children
    node: ChildSpec | None = None
    for index in idx_path:
        node = children[index]
        children = node.children if isinstance(node, Struct) else ()
    if node is None:
        raise StorageError(f"empty idx_path into spec {spec.tag!r}")
    return node


class _Fragment:
    """One parsed CLOB fragment: pre-order node list for stable handles."""

    __slots__ = ("root", "nodes", "index_of")

    def __init__(self, root: Element) -> None:
        self.root = root
        self.nodes: list[Element] = list(root.iter())
        self.index_of = {id(node): i for i, node in enumerate(self.nodes)}


class SchemaStore(Store):
    """DTD-derived inlined schema (System C)."""

    architecture = "relational, DTD-derived inlined schema + CLOB fragments (System C)"

    def __init__(self, fragment_cache_size: int = 4096) -> None:
        super().__init__()
        self.catalog = Catalog()
        self._frag_xml: list[str] = []
        self._frag_text: list[str] = []
        self._frag_tag: list[str] = []
        self._frag_owner: list[tuple] = []      # owner base position + idx path
        self._frag_cache: dict[int, _Fragment] = {}
        self._frag_cache_size = fragment_cache_size
        self._frag_cache_lock = threading.Lock()
        self._container_ord: dict[str, int] = {}
        self._id_index: dict[str, tuple] = {}
        self._nested_spec_idx: dict[tuple[str, str], int] = {}
        self._reachable: dict[str, frozenset[str]] = {}
        # Direct table handles for navigation: the catalog (with its counted
        # metadata accesses) is the *compile-time* surface; at run time the
        # executor works from resolved plans, like a real DBMS.
        self._tables: dict[str, object] = {}
        self._parent_indexes: dict[str, object] = {}
        self._locations: dict[str, list[tuple]] = {}
        self._child_maps: dict[tuple, dict] = {}

    # ------------------------------------------------------------------ load --

    def load(self, text: str) -> None:
        document = parse(text)
        root = document.root
        if root is None or root.tag != "site":
            raise StorageError("schema store requires an auction 'site' document")
        self.catalog = Catalog()
        self._frag_xml, self._frag_text = [], []
        self._frag_tag, self._frag_owner = [], []
        self._frag_cache = {}
        self._container_ord = {}
        self._id_index = {}
        self._make_tables()
        self._compute_reachability()

        counter = 0

        def next_ord() -> int:
            nonlocal counter
            counter += 1
            return counter

        self._container_ord["site"] = next_ord()
        regions = root.find("regions")
        self._container_ord["regions"] = next_ord()
        for region_tag in _REGION_TAGS:
            region = regions.find(region_tag) if regions else None
            self._container_ord[region_tag] = next_ord()
            if region is None:
                continue
            for item in region.find_all("item"):
                self._shred_entity(item, ENTITY_SPECS["item"], next_ord,
                                   extra={"region": region_tag})
        for container, entity_tag in (
            ("categories", "category"), ("catgraph", "edge"), ("people", "person"),
            ("open_auctions", "open_auction"), ("closed_auctions", "closed_auction"),
        ):
            holder = root.find(container)
            self._container_ord[container] = next_ord()
            if holder is None:
                continue
            for element in holder.find_all(entity_tag):
                self._shred_entity(element, ENTITY_SPECS[entity_tag], next_ord)

        for spec in ENTITY_SPECS.values():
            table = self.catalog.table(spec.table)
            self._tables[spec.table] = table
            if table.has_column("parent"):
                self._parent_indexes[spec.table] = self.catalog.create_hash_index(
                    spec.table, "parent")
            if table.has_column("region"):
                self.catalog.create_hash_index(spec.table, "region")
            self.catalog.create_hash_index(spec.table, "ord")
            for attr, column in spec.attr_columns:
                if attr == "id":
                    values = table.column(column)
                    for row, value in enumerate(values):
                        if value is not None:
                            self._id_index[value] = ("e", spec.table, row)
        self._compute_locations()
        self.catalog.analyze()
        self.mark_loaded(text)

    def _compute_locations(self) -> None:
        """For every tag, where it lives: (table, kind, data) triples.

        kind is "row" (the table's own entity tag), "spec" (a leaf/struct/
        wrapper at an idx_path) or "frag" (a CLOB column).  This is the
        schema knowledge a DTD-derived mapping navigates by.
        """
        self._locations = {}

        def note(tag: str, entry: tuple) -> None:
            self._locations.setdefault(tag, []).append(entry)

        for spec in ENTITY_SPECS.values():
            note(spec.tag, (spec.table, "row", None))

            def visit(children: tuple, base: tuple[int, ...]) -> None:
                for index, child in enumerate(children):
                    path = base + (index,)
                    if isinstance(child, (Leaf, RefLeaf)):
                        note(child.tag, (spec.table, "spec", path))
                    elif isinstance(child, FragLeaf):
                        note(child.tag, (spec.table, "frag", child.column))
                    elif isinstance(child, Struct):
                        note(child.tag, (spec.table, "spec", path))
                        visit(child.children, path)
                    elif isinstance(child, Wrapper):
                        note(child.tag, (spec.table, "spec", path))

            visit(spec.children, ())

    def _make_tables(self) -> None:
        for spec in ENTITY_SPECS.values():
            columns = [Column("ord", _INT, nullable=False)]
            if spec.table in self._nested_tables():
                columns.append(Column("parent", _INT, nullable=False))
                columns.append(Column("pos", _INT, nullable=False))
            for name in spec.iter_columns():
                if name.endswith("_present"):
                    columns.append(Column(name, _INT))
                else:
                    columns.append(Column(name, _STR))
            self.catalog.create_table(spec.table, columns)

    @staticmethod
    def _nested_tables() -> frozenset[str]:
        return frozenset(("incategory", "mail", "interest", "watch", "bidder"))

    def _compute_reachability(self) -> None:
        """Tag sets reachable below each entity table (fragments included)."""
        self._nested_spec_idx.clear()

        def reach(spec: EntitySpec) -> frozenset[str]:
            tags: set[str] = set()

            def visit(children: tuple, base: tuple[int, ...]) -> None:
                for index, child in enumerate(children):
                    path = base + (index,)
                    if isinstance(child, Leaf):
                        tags.add(child.tag)
                    elif isinstance(child, RefLeaf):
                        tags.add(child.tag)
                    elif isinstance(child, FragLeaf):
                        tags.add(child.tag)
                        tags.update(FRAGMENT_TAGS)
                    elif isinstance(child, Struct):
                        tags.add(child.tag)
                        visit(child.children, path)
                    elif isinstance(child, Nested):
                        self._nested_spec_idx[(spec.table, child.table)] = index
                        nested = ENTITY_SPECS[child.table]
                        tags.add(nested.tag)
                        tags.update(reach_cache(nested))
                    elif isinstance(child, Wrapper):
                        tags.add(child.tag)
                        self._nested_spec_idx[(spec.table, child.nested.table)] = index
                        nested = ENTITY_SPECS[child.nested.table]
                        tags.add(nested.tag)
                        tags.update(reach_cache(nested))

            visit(spec.children, ())
            return frozenset(tags)

        cache: dict[str, frozenset[str]] = {}

        def reach_cache(spec: EntitySpec) -> frozenset[str]:
            if spec.table not in cache:
                cache[spec.table] = frozenset()  # break cycles (none expected)
                cache[spec.table] = reach(spec)
            return cache[spec.table]

        for spec in ENTITY_SPECS.values():
            self._reachable[spec.table] = reach_cache(spec)

    # -- shredding -----------------------------------------------------------------

    def _shred_entity(self, element: Element, spec: EntitySpec, next_ord,
                      extra: dict | None = None,
                      parent_ord: int | None = None, pos: int | None = None) -> int:
        ord_value = next_ord()
        values: dict = {"ord": ord_value}
        if parent_ord is not None:
            values["parent"] = parent_ord
            values["pos"] = pos
        if extra:
            values.update(extra)
        for attr, column in spec.attr_columns:
            values[column] = element.attributes.get(attr)

        base_position = (ord_value,) if parent_ord is None else None
        # Nested children are shredded after the owner row exists, so collect.
        pending_nested: list[tuple[Nested, Element]] = []

        def walk(children: tuple, holder: Element, idx_base: tuple[int, ...]) -> None:
            for index, child in enumerate(children):
                if isinstance(child, Leaf):
                    node = holder.find(child.tag)
                    values[child.column] = node.immediate_text() if node is not None else None
                elif isinstance(child, RefLeaf):
                    node = holder.find(child.tag)
                    for attr, column in child.attr_columns:
                        values[column] = node.attributes.get(attr) if node is not None else None
                elif isinstance(child, FragLeaf):
                    node = holder.find(child.tag)
                    if node is None:
                        values[child.column] = None
                    else:
                        frag_id = self._store_fragment(node, ord_value, idx_base + (index,))
                        values[child.column] = str(frag_id)
                elif isinstance(child, Struct):
                    node = holder.find(child.tag)
                    values[child.presence_column] = 1 if node is not None else 0
                    for attr, column in child.attr_columns:
                        values[column] = node.attributes.get(attr) if node is not None else None
                    if node is not None:
                        walk(child.children, node, idx_base + (index,))
                    else:
                        for column in _columns_below(child):
                            values.setdefault(column, None)
                elif isinstance(child, Nested):
                    for occurrence in holder.find_all(child.tag):
                        pending_nested.append((child, occurrence))
                elif isinstance(child, Wrapper):
                    node = holder.find(child.tag)
                    if child.presence_column:
                        values[child.presence_column] = 1 if node is not None else 0
                    if node is not None:
                        for occurrence in node.find_all(child.nested.tag):
                            pending_nested.append((child.nested, occurrence))

        walk(spec.children, element, ())
        table = self.catalog.table(spec.table)
        table.append(**values)
        for slot, (nested, occurrence) in enumerate(pending_nested):
            self._shred_entity(occurrence, ENTITY_SPECS[nested.table], next_ord,
                               parent_ord=ord_value, pos=slot)
        return ord_value

    def _store_fragment(self, node: Element, owner_ord: int,
                        idx_path: tuple[int, ...]) -> int:
        frag_id = len(self._frag_xml)
        self._frag_xml.append(serialize(node))
        self._frag_text.append(node.text_content())
        self._frag_tag.append(node.tag)
        self._frag_owner.append((owner_ord,) + idx_path)
        return frag_id

    def size_bytes(self) -> int:
        self.require_loaded()
        total = self.catalog.estimated_bytes()
        total += sum(sys.getsizeof(x) for x in self._frag_xml)
        total += sum(sys.getsizeof(x) for x in self._frag_text)
        return total

    # -- fragment access ------------------------------------------------------------

    def _fragment(self, frag_id: int) -> _Fragment:
        cached = self._frag_cache.get(frag_id)
        if cached is None:
            self.stats.fragments_parsed += 1
            cached = _Fragment(parse(self._frag_xml[frag_id]).root)
            # Concurrent readers share the buffer pool; evict under a lock so
            # two simultaneous misses cannot race the same victim out twice.
            with self._frag_cache_lock:
                if len(self._frag_cache) >= self._frag_cache_size:
                    self._frag_cache.pop(next(iter(self._frag_cache)), None)
                self._frag_cache[frag_id] = cached
        return cached

    # -- navigation -------------------------------------------------------------------

    def root(self):
        self.require_loaded()
        return ("t", "site")

    def tag(self, node) -> str:
        kind = node[0]
        if kind == "t":
            return node[1]
        if kind == "e":
            return ENTITY_SPECS[node[1]].tag
        if kind in ("s", "w", "l"):
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            return spec.tag
        if kind == "fn":
            if node[2] == 0:
                # Fragment roots answer from the extracted tag column: the
                # index builder (and any tag probe) must not force a CLOB
                # parse just to learn the root's name.
                return self._frag_tag[node[1]]
            return self._fragment(node[1]).nodes[node[2]].tag
        raise StorageError(f"bad handle {node!r}")

    def _table_rows(self, table_name: str, region: str | None) -> list[int]:
        table = self._tables[table_name]
        self.stats.table_lookups += len(table)
        if region is None:
            return list(range(len(table)))
        regions = table.column("region")
        return [row for row in range(len(table)) if regions[row] == region]

    def _nested_rows(self, table_name: str, owner_ord: int) -> list[int]:
        index = self._parent_indexes[table_name]
        self.stats.index_lookups += 1
        rows = index.lookup(owner_ord)
        self.stats.table_lookups += len(rows)
        return sorted(rows)

    def children(self, node) -> list:
        kind = node[0]
        self.stats.nodes_visited += 1
        if kind == "t":
            container = node[1]
            if container == "site":
                return [("t", tag) for tag in _SITE_CHILDREN]
            if container == "regions":
                return [("t", tag) for tag in _REGION_TAGS]
            table_name, filter_column = CONTAINER_CONTENTS[container]
            region = container if filter_column else None
            return [("e", table_name, row)
                    for row in self._table_rows(table_name, region)]
        if kind == "e":
            return self._spec_children(node[1], node[2], ENTITY_SPECS[node[1]].children, ())
        if kind == "s":
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            return self._spec_children(node[1], node[2], spec.children, node[3])
        if kind == "w":
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            owner_ord = self._ord_of(node[1], node[2])
            return [("e", spec.nested.table, row)
                    for row in self._nested_rows(spec.nested.table, owner_ord)]
        if kind == "l":
            return []
        if kind == "fn":
            fragment = self._fragment(node[1])
            element = fragment.nodes[node[2]]
            return [("fn", node[1], fragment.index_of[id(child)])
                    for child in element.child_elements()]
        raise StorageError(f"bad handle {node!r}")

    def _spec_children(self, table: str, row: int, children: tuple,
                       idx_base: tuple[int, ...]) -> list:
        table_obj = self._tables[table]
        self.stats.table_lookups += 1
        result: list = []
        for index, child in enumerate(children):
            path = idx_base + (index,)
            if isinstance(child, Leaf):
                if table_obj.get(row, child.column) is not None:
                    result.append(("l", table, row, path))
            elif isinstance(child, RefLeaf):
                if table_obj.get(row, child.presence_column) is not None:
                    result.append(("l", table, row, path))
            elif isinstance(child, FragLeaf):
                if table_obj.get(row, child.column) is not None:
                    result.append(("fn", int(table_obj.get(row, child.column)), 0))
            elif isinstance(child, Struct):
                if table_obj.get(row, child.presence_column):
                    result.append(("s", table, row, path))
            elif isinstance(child, Nested):
                owner_ord = self._ord_of(table, row)
                result.extend(("e", child.table, nested_row)
                              for nested_row in self._nested_rows(child.table, owner_ord))
            elif isinstance(child, Wrapper):
                present = True
                if child.presence_column:
                    present = bool(table_obj.get(row, child.presence_column))
                if present:
                    result.append(("w", table, row, path))
        return result

    def _ord_of(self, table: str, row: int) -> int:
        return self._tables[table].get(row, "ord")

    def children_by_tag(self, node, tag: str) -> list:
        """Direct tag resolution against the derived schema.

        An inlined mapping never scans siblings: the (table, tag) pair
        names the column / nested relation outright — the paper's "simple
        and efficient execution plans" of System C.
        """
        kind = node[0]
        if kind == "e" or kind == "s":
            table, row = node[1], node[2]
            idx_base = node[3] if kind == "s" else ()
            entry = self._child_map(table, idx_base).get(tag)
            if entry is None:
                return []
            index, child = entry
            return self._materialize_child(table, row, idx_base + (index,), child)
        if kind == "w":
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            if ENTITY_SPECS[spec.nested.table].tag != tag:
                return []
            owner_ord = self._ord_of(node[1], node[2])
            return [("e", spec.nested.table, r)
                    for r in self._nested_rows(spec.nested.table, owner_ord)]
        return [child for child in self.children(node) if self.tag(child) == tag]

    def _child_map(self, table: str, idx_base: tuple[int, ...]):
        # Built purely from the static entity specs, so a concurrent rebuild
        # produces an identical dict and the single reference store is benign.
        key = (table, idx_base)
        cached = self._child_maps.get(key)
        if cached is None:
            spec = ENTITY_SPECS[table] if not idx_base else _spec_at(
                ENTITY_SPECS[table], idx_base)
            children = spec.children
            cached = {}
            for index, child in enumerate(children):
                if isinstance(child, Nested):
                    cached[ENTITY_SPECS[child.table].tag] = (index, child)
                else:
                    cached[child.tag] = (index, child)
            self._child_maps[key] = cached
        return cached

    def _materialize_child(self, table: str, row: int, path: tuple[int, ...],
                           child) -> list:
        table_obj = self._tables[table]
        self.stats.table_lookups += 1
        if isinstance(child, Leaf):
            if table_obj.get(row, child.column) is not None:
                return [("l", table, row, path)]
            return []
        if isinstance(child, RefLeaf):
            if table_obj.get(row, child.presence_column) is not None:
                return [("l", table, row, path)]
            return []
        if isinstance(child, FragLeaf):
            value = table_obj.get(row, child.column)
            return [("fn", int(value), 0)] if value is not None else []
        if isinstance(child, Struct):
            if table_obj.get(row, child.presence_column):
                return [("s", table, row, path)]
            return []
        if isinstance(child, Nested):
            owner_ord = table_obj.get(row, "ord")
            return [("e", child.table, r)
                    for r in self._nested_rows(child.table, owner_ord)]
        if isinstance(child, Wrapper):
            present = True
            if child.presence_column:
                present = bool(table_obj.get(row, child.presence_column))
            return [("w", table, row, path)] if present else []
        return []

    def descendants_by_tag(self, node, tag: str) -> list:
        """Schema-aware descent.

        From a container handle, the derived schema knows *exactly* which
        relations and columns can hold ``tag``, so the extent is read
        directly from tables — no tree walk (this is C's DTD advantage on
        the regular-path queries).  Entity-rooted descents fall back to a
        reachability-pruned walk.
        """
        if node[0] == "t":
            direct = self._container_descendants(node[1], tag)
            if direct is not None:
                return direct
        result: list = []
        stack = [child for child in reversed(self.children(node))
                 if self._may_contain(child, tag)]
        while stack:
            current = stack.pop()
            if self.tag(current) == tag:
                result.append(current)
            stack.extend(child for child in reversed(self.children(current))
                         if self._may_contain(child, tag))
        return result

    _CONTAINER_TABLES = {
        "site": tuple(ENTITY_SPECS),
        "regions": ("item", "incategory", "mail"),
        "africa": ("item",), "asia": ("item",), "australia": ("item",),
        "europe": ("item",), "namerica": ("item",), "samerica": ("item",),
        "categories": ("category",),
        "catgraph": ("edge",),
        "people": ("person", "interest", "watch"),
        "open_auctions": ("open_auction", "bidder"),
        "closed_auctions": ("closed_auction",),
    }

    def _container_descendants(self, container: str, tag: str) -> list | None:
        """Read a tag's extent straight from the derived relations.

        Returns None when the extent cannot be computed from columns alone
        (region-scoped non-item tags), signalling the generic walk.
        """
        tables = self._CONTAINER_TABLES.get(container)
        if tables is None:
            return None
        region = container if container in _REGION_TAGS else None
        locations = self._locations.get(tag)
        if locations is None:
            return None  # container tags etc.: generic walk
        handles: list = []
        for table_name, kind, data in locations:
            if table_name not in tables:
                continue
            if region is not None and not (kind == "row" and table_name == "item"):
                return None
            table = self._tables[table_name]
            rows = range(len(table))
            self.stats.table_lookups += len(table)
            if region is not None:
                regions = table.column("region")
                rows = (row for row in rows if regions[row] == region)
            if kind == "row":
                handles.extend(("e", table_name, row) for row in rows)
            elif kind == "frag":
                column = table.column(data)
                handles.extend(("fn", int(column[row]), 0)
                               for row in rows if column[row] is not None)
            else:  # "spec": leaf / struct / wrapper at an idx_path
                spec = _spec_at(ENTITY_SPECS[table_name], data)
                present = self._presence_rows(table, spec, rows)
                if isinstance(spec, Struct):
                    handles.extend(("s", table_name, row, data) for row in present)
                elif isinstance(spec, Wrapper):
                    handles.extend(("w", table_name, row, data) for row in present)
                else:
                    handles.extend(("l", table_name, row, data) for row in present)
        if len(locations) > 1:
            handles.sort(key=self.doc_position)
        return handles

    def _presence_rows(self, table, spec, rows):
        if isinstance(spec, Leaf):
            column = table.column(spec.column)
            return [row for row in rows if column[row] is not None]
        if isinstance(spec, RefLeaf):
            column = table.column(spec.presence_column)
            return [row for row in rows if column[row] is not None]
        if isinstance(spec, Struct):
            column = table.column(spec.presence_column)
            return [row for row in rows if column[row]]
        if isinstance(spec, Wrapper):
            if spec.presence_column is None:
                return list(rows)
            column = table.column(spec.presence_column)
            return [row for row in rows if column[row]]
        return []

    def _may_contain(self, node, tag: str) -> bool:
        if self.tag(node) == tag:
            return True
        kind = node[0]
        if kind == "t":
            container = node[1]
            if container == "site":
                return True
            if container == "regions":
                return tag == "item" or tag in self._reachable["item"]
            table_name, _ = CONTAINER_CONTENTS[container]
            spec = ENTITY_SPECS[table_name]
            return tag == spec.tag or tag in self._reachable[table_name]
        if kind == "e":
            return tag in self._reachable[node[1]]
        if kind in ("s", "w"):
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            tags: set[str] = set()
            _collect_spec_tags(spec, tags)
            return tag in tags
        if kind == "l":
            return False
        if kind == "fn":
            return tag in FRAGMENT_TAGS
        return False

    def parent(self, node):
        kind = node[0]
        if kind == "t":
            if node[1] == "site":
                return None
            if node[1] in _REGION_TAGS:
                return ("t", "regions")
            return ("t", "site")
        if kind == "e":
            table = node[1]
            table_obj = self._tables[table]
            if table_obj.has_column("parent"):
                owner_ord = table_obj.get(node[2], "parent")
                return self._entity_by_ord(owner_ord)
            spec = ENTITY_SPECS[table]
            if spec.table == "item":
                region = table_obj.get(node[2], "region")
                return ("t", region)
            for container, (held, _) in CONTAINER_CONTENTS.items():
                if held == table and container not in _REGION_TAGS:
                    return ("t", container)
            return None
        if kind in ("s", "w", "l"):
            if len(node[3]) == 1:
                return ("e", node[1], node[2])
            return ("s", node[1], node[2], node[3][:-1])
        if kind == "fn":
            fragment = self._fragment(node[1])
            element = fragment.nodes[node[2]]
            if element.parent is None:
                owner = self._frag_owner[node[1]]
                return self._entity_by_ord(owner[0])
            return ("fn", node[1], fragment.index_of[id(element.parent)])
        raise StorageError(f"bad handle {node!r}")

    def _entity_by_ord(self, ord_value: int):
        for spec in ENTITY_SPECS.values():
            index = self.catalog.hash_index(spec.table, "ord")
            if index:
                row = index.unique(ord_value)
                if row is not None:
                    return ("e", spec.table, row)
        return None

    def attribute(self, node, name: str) -> str | None:
        kind = node[0]
        if kind == "e":
            spec = ENTITY_SPECS[node[1]]
            for attr, column in spec.attr_columns:
                if attr == name:
                    self.stats.table_lookups += 1
                    return self._tables[node[1]].get(node[2], column)
            return None
        if kind in ("s", "l"):
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            attr_columns = getattr(spec, "attr_columns", ())
            for attr, column in attr_columns:
                if attr == name:
                    self.stats.table_lookups += 1
                    return self._tables[node[1]].get(node[2], column)
            return None
        if kind == "fn":
            return self._fragment(node[1]).nodes[node[2]].attributes.get(name)
        return None

    def attributes(self, node) -> dict[str, str]:
        kind = node[0]
        if kind == "e":
            spec = ENTITY_SPECS[node[1]]
            table = self._tables[node[1]]
            self.stats.table_lookups += 1
            return {attr: table.get(node[2], column)
                    for attr, column in spec.attr_columns
                    if table.get(node[2], column) is not None}
        if kind in ("s", "l"):
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            attr_columns = getattr(spec, "attr_columns", ())
            table = self._tables[node[1]]
            self.stats.table_lookups += 1
            return {attr: table.get(node[2], column)
                    for attr, column in attr_columns
                    if table.get(node[2], column) is not None}
        if kind == "fn":
            return dict(self._fragment(node[1]).nodes[node[2]].attributes)
        return {}

    def child_texts(self, node) -> list[str]:
        kind = node[0]
        if kind == "l":
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            if isinstance(spec, Leaf):
                self.stats.table_lookups += 1
                value = self._tables[node[1]].get(node[2], spec.column)
                return [value] if value is not None else []
            return []
        if kind == "fn":
            element = self._fragment(node[1]).nodes[node[2]]
            return [child.value for child in element.children if isinstance(child, Text)]
        return []

    def string_value(self, node) -> str:
        kind = node[0]
        if kind == "fn":
            if node[2] == 0:
                return self._frag_text[node[1]]  # extracted text column
            return self._fragment(node[1]).nodes[node[2]].text_content()
        if kind == "l":
            texts = self.child_texts(node)
            return texts[0] if texts else ""
        parts: list[str] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current[0] in ("l", "fn"):
                parts.append(self.string_value(current))
            else:
                stack.extend(reversed(self.children(current)))
        return "".join(parts)

    def content(self, node) -> list:
        kind = node[0]
        if kind == "l":
            return list(self.child_texts(node))
        if kind == "fn":
            fragment = self._fragment(node[1])
            element = fragment.nodes[node[2]]
            return [
                child.value if isinstance(child, Text)
                else ("fn", node[1], fragment.index_of[id(child)])
                for child in element.children
            ]
        return list(self.children(node))

    def doc_position(self, node):
        kind = node[0]
        if kind == "t":
            return (self._container_ord.get(node[1], 0),)
        if kind == "e":
            table = self._tables[node[1]]
            if table.has_column("parent"):
                owner_ord = table.get(node[2], "parent")
                owner_table = self._owner_table(node[1])
                spec_idx = self._nested_spec_idx[(owner_table, node[1])]
                return (owner_ord, spec_idx, table.get(node[2], "pos"))
            return (table.get(node[2], "ord"),)
        if kind in ("s", "w", "l"):
            base = self.doc_position(("e", node[1], node[2]))
            return base + node[3]
        if kind == "fn":
            owner = self._frag_owner[node[1]]
            return owner + (node[2],)
        raise StorageError(f"bad handle {node!r}")

    def _owner_table(self, nested_table: str) -> str:
        for (owner, nested), _ in self._nested_spec_idx.items():
            if nested == nested_table:
                return owner
        raise StorageError(f"no owner for nested table {nested_table!r}")

    # -- capabilities ------------------------------------------------------------------

    def lookup_id(self, value: str):
        self.stats.index_lookups += 1
        return self._id_index.get(value)

    def has_id_index(self) -> bool:
        return True

    def known_tags(self) -> frozenset[str]:
        tags: set[str] = set(_SITE_CHILDREN) | {"site"} | set(_REGION_TAGS)
        for table, reachable in self._reachable.items():
            tags.add(ENTITY_SPECS[table].tag)
            tags.update(reachable)
        return frozenset(tags)

    def table(self, name: str):
        """Direct typed-relation access (used by the relational fast paths)."""
        return self.catalog.table(name)

    def entity_handle(self, table: str, row: int):
        return ("e", table, row)


def _columns_below(struct: Struct):
    for child in struct.children:
        if isinstance(child, Leaf):
            yield child.column
        elif isinstance(child, RefLeaf):
            for _, column in child.attr_columns:
                yield column
        elif isinstance(child, FragLeaf):
            yield child.column
        elif isinstance(child, Struct):
            yield child.presence_column
            for _, column in child.attr_columns:
                yield column
            yield from _columns_below(child)


def _collect_spec_tags(spec: ChildSpec, into: set[str]) -> None:
    if isinstance(spec, Leaf) or isinstance(spec, RefLeaf):
        into.add(spec.tag)
    elif isinstance(spec, FragLeaf):
        into.add(spec.tag)
        into.update(FRAGMENT_TAGS)
    elif isinstance(spec, Struct):
        into.add(spec.tag)
        for child in spec.children:
            _collect_spec_tags(child, into)
    elif isinstance(spec, Nested):
        into.add(spec.tag)
        nested = ENTITY_SPECS[spec.table]
        for child in nested.children:
            _collect_spec_tags(child, into)
    elif isinstance(spec, Wrapper):
        into.add(spec.tag)
        _collect_spec_tags(spec.nested, into)
