"""System C analogue: DTD-derived inlined relational schema.

The paper's System C "reads in a DTD and lets the user generate an optimized
database schema ... this additional information helps to get favorable
performance", and it uses "a data mapping in the spirit of [23] that results
in comparatively simple and efficient execution plans and thus outperforms
all other systems for Q2 and Q3".

The mapping itself lives in :mod:`repro.storage.schema_spec`; this store
interprets it twice — once to shred the parsed document into typed relations,
and once to answer the navigation API by reading columns instead of walking
trees.  Document-centric subtrees are CLOB fragments parsed on demand
(with a buffer-pool-like cache) plus an extracted text column so full-text
predicates (Q14) avoid the parse.
"""

from __future__ import annotations

import sys
import threading

from repro.errors import StorageError
from repro.relational.catalog import Catalog
from repro.relational.table import Column, ColumnType
from repro.storage.interface import Store
from repro.storage.schema_spec import (
    CONTAINER_CONTENTS, ENTITY_SPECS, TABLE_OF_TAG,
    ChildSpec, EntitySpec, FragLeaf, Leaf, Nested, RefLeaf, Struct, Wrapper,
)
from repro.xmlio.dom import Document, Element, Text
from repro.xmlio.parser import parse
from repro.xmlio.serialize import serialize

_INT = ColumnType.INT
_STR = ColumnType.STR

#: Tags that only occur inside CLOB fragments.
FRAGMENT_TAGS = frozenset(("text", "parlist", "listitem", "bold", "keyword", "emph"))

_SITE_CHILDREN = ("regions", "categories", "catgraph", "people",
                  "open_auctions", "closed_auctions")
_REGION_TAGS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


def _spec_at(spec: EntitySpec, idx_path: tuple[int, ...]) -> ChildSpec:
    """Resolve a child spec by its index path within an entity spec."""
    children = spec.children
    node: ChildSpec | None = None
    for index in idx_path:
        node = children[index]
        children = node.children if isinstance(node, Struct) else ()
    if node is None:
        raise StorageError(f"empty idx_path into spec {spec.tag!r}")
    return node


class _Fragment:
    """One parsed CLOB fragment: pre-order node list for stable handles."""

    __slots__ = ("root", "nodes", "index_of")

    def __init__(self, root: Element) -> None:
        self.root = root
        self.nodes: list[Element] = list(root.iter())
        self.index_of = {id(node): i for i, node in enumerate(self.nodes)}


class SchemaStore(Store):
    """DTD-derived inlined schema (System C)."""

    architecture = "relational, DTD-derived inlined schema + CLOB fragments (System C)"

    def __init__(self, fragment_cache_size: int = 4096) -> None:
        super().__init__()
        self.catalog = Catalog()
        self._frag_xml: list[str] = []
        self._frag_text: list[str] = []
        self._frag_tag: list[str] = []
        self._frag_owner: list[tuple] = []      # owner base position + idx path
        self._frag_cache: dict[int, _Fragment] = {}
        self._frag_cache_size = fragment_cache_size
        self._frag_cache_lock = threading.Lock()
        self._container_ord: dict[str, int] = {}
        self._id_index: dict[str, tuple] = {}
        self._nested_spec_idx: dict[tuple[str, str], int] = {}
        self._reachable: dict[str, frozenset[str]] = {}
        # Direct table handles for navigation: the catalog (with its counted
        # metadata accesses) is the *compile-time* surface; at run time the
        # executor works from resolved plans, like a real DBMS.
        self._tables: dict[str, object] = {}
        self._parent_indexes: dict[str, object] = {}
        self._locations: dict[str, list[tuple]] = {}
        self._child_maps: dict[tuple, dict] = {}
        self._next_ord = 0                      # ord allocator for inserted entities
        self._dead: dict[str, set[int]] = {}    # tombstoned rows per table

    # ------------------------------------------------------------------ load --

    def load(self, text: str) -> None:
        document = parse(text)
        root = document.root
        if root is None or root.tag != "site":
            raise StorageError("schema store requires an auction 'site' document")
        self.catalog = Catalog()
        self._frag_xml, self._frag_text = [], []
        self._frag_tag, self._frag_owner = [], []
        self._frag_cache = {}
        self._container_ord = {}
        self._id_index = {}
        self._make_tables()
        self._compute_reachability()

        counter = 0

        def next_ord() -> int:
            nonlocal counter
            counter += 1
            return counter

        self._container_ord["site"] = next_ord()
        regions = root.find("regions")
        self._container_ord["regions"] = next_ord()
        for region_tag in _REGION_TAGS:
            region = regions.find(region_tag) if regions else None
            self._container_ord[region_tag] = next_ord()
            if region is None:
                continue
            for item in region.find_all("item"):
                self._shred_entity(item, ENTITY_SPECS["item"], next_ord,
                                   extra={"region": region_tag})
        for container, entity_tag in (
            ("categories", "category"), ("catgraph", "edge"), ("people", "person"),
            ("open_auctions", "open_auction"), ("closed_auctions", "closed_auction"),
        ):
            holder = root.find(container)
            self._container_ord[container] = next_ord()
            if holder is None:
                continue
            for element in holder.find_all(entity_tag):
                self._shred_entity(element, ENTITY_SPECS[entity_tag], next_ord)

        for spec in ENTITY_SPECS.values():
            table = self.catalog.table(spec.table)
            self._tables[spec.table] = table
            if table.has_column("parent"):
                self._parent_indexes[spec.table] = self.catalog.create_hash_index(
                    spec.table, "parent")
            if table.has_column("region"):
                self.catalog.create_hash_index(spec.table, "region")
            self.catalog.create_hash_index(spec.table, "ord")
            for attr, column in spec.attr_columns:
                if attr == "id":
                    values = table.column(column)
                    for row, value in enumerate(values):
                        if value is not None:
                            self._id_index[value] = ("e", spec.table, row)
        self._compute_locations()
        self.catalog.analyze()
        self._next_ord = counter
        self._dead = {}
        self.mark_loaded(text)

    def _compute_locations(self) -> None:
        """For every tag, where it lives: (table, kind, data) triples.

        kind is "row" (the table's own entity tag), "spec" (a leaf/struct/
        wrapper at an idx_path) or "frag" (a CLOB column).  This is the
        schema knowledge a DTD-derived mapping navigates by.
        """
        self._locations = {}

        def note(tag: str, entry: tuple) -> None:
            self._locations.setdefault(tag, []).append(entry)

        for spec in ENTITY_SPECS.values():
            note(spec.tag, (spec.table, "row", None))

            def visit(children: tuple, base: tuple[int, ...]) -> None:
                for index, child in enumerate(children):
                    path = base + (index,)
                    if isinstance(child, (Leaf, RefLeaf)):
                        note(child.tag, (spec.table, "spec", path))
                    elif isinstance(child, FragLeaf):
                        note(child.tag, (spec.table, "frag", child.column))
                    elif isinstance(child, Struct):
                        note(child.tag, (spec.table, "spec", path))
                        visit(child.children, path)
                    elif isinstance(child, Wrapper):
                        note(child.tag, (spec.table, "spec", path))

            visit(spec.children, ())

    def _make_tables(self) -> None:
        for spec in ENTITY_SPECS.values():
            columns = [Column("ord", _INT, nullable=False)]
            if spec.table in self._nested_tables():
                columns.append(Column("parent", _INT, nullable=False))
                columns.append(Column("pos", _INT, nullable=False))
            for name in spec.iter_columns():
                if name.endswith("_present"):
                    columns.append(Column(name, _INT))
                else:
                    columns.append(Column(name, _STR))
            self.catalog.create_table(spec.table, columns)

    @staticmethod
    def _nested_tables() -> frozenset[str]:
        return frozenset(("incategory", "mail", "interest", "watch", "bidder"))

    def _compute_reachability(self) -> None:
        """Tag sets reachable below each entity table (fragments included)."""
        self._nested_spec_idx.clear()

        def reach(spec: EntitySpec) -> frozenset[str]:
            tags: set[str] = set()

            def visit(children: tuple, base: tuple[int, ...]) -> None:
                for index, child in enumerate(children):
                    path = base + (index,)
                    if isinstance(child, Leaf):
                        tags.add(child.tag)
                    elif isinstance(child, RefLeaf):
                        tags.add(child.tag)
                    elif isinstance(child, FragLeaf):
                        tags.add(child.tag)
                        tags.update(FRAGMENT_TAGS)
                    elif isinstance(child, Struct):
                        tags.add(child.tag)
                        visit(child.children, path)
                    elif isinstance(child, Nested):
                        self._nested_spec_idx[(spec.table, child.table)] = index
                        nested = ENTITY_SPECS[child.table]
                        tags.add(nested.tag)
                        tags.update(reach_cache(nested))
                    elif isinstance(child, Wrapper):
                        tags.add(child.tag)
                        self._nested_spec_idx[(spec.table, child.nested.table)] = index
                        nested = ENTITY_SPECS[child.nested.table]
                        tags.add(nested.tag)
                        tags.update(reach_cache(nested))

            visit(spec.children, ())
            return frozenset(tags)

        cache: dict[str, frozenset[str]] = {}

        def reach_cache(spec: EntitySpec) -> frozenset[str]:
            if spec.table not in cache:
                cache[spec.table] = frozenset()  # break cycles (none expected)
                cache[spec.table] = reach(spec)
            return cache[spec.table]

        for spec in ENTITY_SPECS.values():
            self._reachable[spec.table] = reach_cache(spec)

    # -- shredding -----------------------------------------------------------------

    def _shred_entity(self, element: Element, spec: EntitySpec, next_ord,
                      extra: dict | None = None,
                      parent_ord: int | None = None, pos: int | None = None) -> int:
        ord_value = next_ord()
        values: dict = {"ord": ord_value}
        if parent_ord is not None:
            values["parent"] = parent_ord
            values["pos"] = pos
        if extra:
            values.update(extra)
        for attr, column in spec.attr_columns:
            values[column] = element.attributes.get(attr)

        base_position = (ord_value,) if parent_ord is None else None
        # Nested children are shredded after the owner row exists, so collect.
        pending_nested: list[tuple[Nested, Element]] = []

        def walk(children: tuple, holder: Element, idx_base: tuple[int, ...]) -> None:
            for index, child in enumerate(children):
                if isinstance(child, Leaf):
                    node = holder.find(child.tag)
                    values[child.column] = node.immediate_text() if node is not None else None
                elif isinstance(child, RefLeaf):
                    node = holder.find(child.tag)
                    for attr, column in child.attr_columns:
                        values[column] = node.attributes.get(attr) if node is not None else None
                elif isinstance(child, FragLeaf):
                    node = holder.find(child.tag)
                    if node is None:
                        values[child.column] = None
                    else:
                        frag_id = self._store_fragment(node, ord_value, idx_base + (index,))
                        values[child.column] = str(frag_id)
                elif isinstance(child, Struct):
                    node = holder.find(child.tag)
                    values[child.presence_column] = 1 if node is not None else 0
                    for attr, column in child.attr_columns:
                        values[column] = node.attributes.get(attr) if node is not None else None
                    if node is not None:
                        walk(child.children, node, idx_base + (index,))
                    else:
                        for column in _columns_below(child):
                            values.setdefault(column, None)
                elif isinstance(child, Nested):
                    for occurrence in holder.find_all(child.tag):
                        pending_nested.append((child, occurrence))
                elif isinstance(child, Wrapper):
                    node = holder.find(child.tag)
                    if child.presence_column:
                        values[child.presence_column] = 1 if node is not None else 0
                    if node is not None:
                        for occurrence in node.find_all(child.nested.tag):
                            pending_nested.append((child.nested, occurrence))

        walk(spec.children, element, ())
        table = self.catalog.table(spec.table)
        table.append(**values)
        for slot, (nested, occurrence) in enumerate(pending_nested):
            self._shred_entity(occurrence, ENTITY_SPECS[nested.table], next_ord,
                               parent_ord=ord_value, pos=slot)
        return ord_value

    def _store_fragment(self, node: Element, owner_ord: int,
                        idx_path: tuple[int, ...]) -> int:
        frag_id = len(self._frag_xml)
        self._frag_xml.append(serialize(node))
        self._frag_text.append(node.text_content())
        self._frag_tag.append(node.tag)
        self._frag_owner.append((owner_ord,) + idx_path)
        return frag_id

    def size_bytes(self) -> int:
        self.require_loaded()
        total = self.catalog.estimated_bytes()
        total += sum(sys.getsizeof(x) for x in self._frag_xml)
        total += sum(sys.getsizeof(x) for x in self._frag_text)
        return total

    # -- fragment access ------------------------------------------------------------

    def _fragment(self, frag_id: int) -> _Fragment:
        cached = self._frag_cache.get(frag_id)
        if cached is None:
            self.stats.fragments_parsed += 1
            cached = _Fragment(parse(self._frag_xml[frag_id]).root)
            # Concurrent readers share the buffer pool; evict under a lock so
            # two simultaneous misses cannot race the same victim out twice.
            with self._frag_cache_lock:
                if len(self._frag_cache) >= self._frag_cache_size:
                    self._frag_cache.pop(next(iter(self._frag_cache)), None)
                self._frag_cache[frag_id] = cached
        return cached

    # -- navigation -------------------------------------------------------------------

    def root(self):
        self.require_loaded()
        return ("t", "site")

    def tag(self, node) -> str:
        kind = node[0]
        if kind == "t":
            return node[1]
        if kind == "e":
            return ENTITY_SPECS[node[1]].tag
        if kind in ("s", "w", "l"):
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            return spec.tag
        if kind == "fn":
            if node[2] == 0:
                # Fragment roots answer from the extracted tag column: the
                # index builder (and any tag probe) must not force a CLOB
                # parse just to learn the root's name.
                return self._frag_tag[node[1]]
            return self._fragment(node[1]).nodes[node[2]].tag
        raise StorageError(f"bad handle {node!r}")

    def _live_rows(self, table_name: str):
        dead = self._dead.get(table_name)
        size = len(self._tables[table_name])
        if not dead:
            return range(size)
        return (row for row in range(size) if row not in dead)

    def _table_rows(self, table_name: str, region: str | None) -> list[int]:
        table = self._tables[table_name]
        self.stats.table_lookups += len(table)
        if region is None:
            return list(self._live_rows(table_name))
        regions = table.column("region")
        return [row for row in self._live_rows(table_name) if regions[row] == region]

    def _nested_rows(self, table_name: str, owner_ord: int) -> list[int]:
        index = self._parent_indexes[table_name]
        self.stats.index_lookups += 1
        rows = index.lookup(owner_ord)
        self.stats.table_lookups += len(rows)
        return sorted(rows)

    def children(self, node) -> list:
        kind = node[0]
        self.stats.nodes_visited += 1
        if kind == "t":
            container = node[1]
            if container == "site":
                return [("t", tag) for tag in _SITE_CHILDREN]
            if container == "regions":
                return [("t", tag) for tag in _REGION_TAGS]
            table_name, filter_column = CONTAINER_CONTENTS[container]
            region = container if filter_column else None
            return [("e", table_name, row)
                    for row in self._table_rows(table_name, region)]
        if kind == "e":
            return self._spec_children(node[1], node[2], ENTITY_SPECS[node[1]].children, ())
        if kind == "s":
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            return self._spec_children(node[1], node[2], spec.children, node[3])
        if kind == "w":
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            owner_ord = self._ord_of(node[1], node[2])
            return [("e", spec.nested.table, row)
                    for row in self._nested_rows(spec.nested.table, owner_ord)]
        if kind == "l":
            return []
        if kind == "fn":
            fragment = self._fragment(node[1])
            element = fragment.nodes[node[2]]
            return [("fn", node[1], fragment.index_of[id(child)])
                    for child in element.child_elements()]
        raise StorageError(f"bad handle {node!r}")

    def _spec_children(self, table: str, row: int, children: tuple,
                       idx_base: tuple[int, ...]) -> list:
        table_obj = self._tables[table]
        self.stats.table_lookups += 1
        result: list = []
        for index, child in enumerate(children):
            path = idx_base + (index,)
            if isinstance(child, Leaf):
                if table_obj.get(row, child.column) is not None:
                    result.append(("l", table, row, path))
            elif isinstance(child, RefLeaf):
                if table_obj.get(row, child.presence_column) is not None:
                    result.append(("l", table, row, path))
            elif isinstance(child, FragLeaf):
                if table_obj.get(row, child.column) is not None:
                    result.append(("fn", int(table_obj.get(row, child.column)), 0))
            elif isinstance(child, Struct):
                if table_obj.get(row, child.presence_column):
                    result.append(("s", table, row, path))
            elif isinstance(child, Nested):
                owner_ord = self._ord_of(table, row)
                result.extend(("e", child.table, nested_row)
                              for nested_row in self._nested_rows(child.table, owner_ord))
            elif isinstance(child, Wrapper):
                present = True
                if child.presence_column:
                    present = bool(table_obj.get(row, child.presence_column))
                if present:
                    result.append(("w", table, row, path))
        return result

    def _ord_of(self, table: str, row: int) -> int:
        return self._tables[table].get(row, "ord")

    def children_by_tag(self, node, tag: str) -> list:
        """Direct tag resolution against the derived schema.

        An inlined mapping never scans siblings: the (table, tag) pair
        names the column / nested relation outright — the paper's "simple
        and efficient execution plans" of System C.
        """
        kind = node[0]
        if kind == "e" or kind == "s":
            table, row = node[1], node[2]
            idx_base = node[3] if kind == "s" else ()
            entry = self._child_map(table, idx_base).get(tag)
            if entry is None:
                return []
            index, child = entry
            return self._materialize_child(table, row, idx_base + (index,), child)
        if kind == "w":
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            if ENTITY_SPECS[spec.nested.table].tag != tag:
                return []
            owner_ord = self._ord_of(node[1], node[2])
            return [("e", spec.nested.table, r)
                    for r in self._nested_rows(spec.nested.table, owner_ord)]
        return [child for child in self.children(node) if self.tag(child) == tag]

    def _child_map(self, table: str, idx_base: tuple[int, ...]):
        # Built purely from the static entity specs, so a concurrent rebuild
        # produces an identical dict and the single reference store is benign.
        key = (table, idx_base)
        cached = self._child_maps.get(key)
        if cached is None:
            spec = ENTITY_SPECS[table] if not idx_base else _spec_at(
                ENTITY_SPECS[table], idx_base)
            children = spec.children
            cached = {}
            for index, child in enumerate(children):
                if isinstance(child, Nested):
                    cached[ENTITY_SPECS[child.table].tag] = (index, child)
                else:
                    cached[child.tag] = (index, child)
            self._child_maps[key] = cached
        return cached

    def _materialize_child(self, table: str, row: int, path: tuple[int, ...],
                           child) -> list:
        table_obj = self._tables[table]
        self.stats.table_lookups += 1
        if isinstance(child, Leaf):
            if table_obj.get(row, child.column) is not None:
                return [("l", table, row, path)]
            return []
        if isinstance(child, RefLeaf):
            if table_obj.get(row, child.presence_column) is not None:
                return [("l", table, row, path)]
            return []
        if isinstance(child, FragLeaf):
            value = table_obj.get(row, child.column)
            return [("fn", int(value), 0)] if value is not None else []
        if isinstance(child, Struct):
            if table_obj.get(row, child.presence_column):
                return [("s", table, row, path)]
            return []
        if isinstance(child, Nested):
            owner_ord = table_obj.get(row, "ord")
            return [("e", child.table, r)
                    for r in self._nested_rows(child.table, owner_ord)]
        if isinstance(child, Wrapper):
            present = True
            if child.presence_column:
                present = bool(table_obj.get(row, child.presence_column))
            return [("w", table, row, path)] if present else []
        return []

    def descendants_by_tag(self, node, tag: str) -> list:
        """Schema-aware descent.

        From a container handle, the derived schema knows *exactly* which
        relations and columns can hold ``tag``, so the extent is read
        directly from tables — no tree walk (this is C's DTD advantage on
        the regular-path queries).  Entity-rooted descents fall back to a
        reachability-pruned walk.
        """
        if node[0] == "t":
            direct = self._container_descendants(node[1], tag)
            if direct is not None:
                return direct
        result: list = []
        stack = [child for child in reversed(self.children(node))
                 if self._may_contain(child, tag)]
        while stack:
            current = stack.pop()
            if self.tag(current) == tag:
                result.append(current)
            stack.extend(child for child in reversed(self.children(current))
                         if self._may_contain(child, tag))
        return result

    _CONTAINER_TABLES = {
        "site": tuple(ENTITY_SPECS),
        "regions": ("item", "incategory", "mail"),
        "africa": ("item",), "asia": ("item",), "australia": ("item",),
        "europe": ("item",), "namerica": ("item",), "samerica": ("item",),
        "categories": ("category",),
        "catgraph": ("edge",),
        "people": ("person", "interest", "watch"),
        "open_auctions": ("open_auction", "bidder"),
        "closed_auctions": ("closed_auction",),
    }

    def _container_descendants(self, container: str, tag: str) -> list | None:
        """Read a tag's extent straight from the derived relations.

        Returns None when the extent cannot be computed from columns alone
        (region-scoped non-item tags), signalling the generic walk.
        """
        tables = self._CONTAINER_TABLES.get(container)
        if tables is None:
            return None
        region = container if container in _REGION_TAGS else None
        locations = self._locations.get(tag)
        if locations is None:
            return None  # container tags etc.: generic walk
        handles: list = []
        for table_name, kind, data in locations:
            if table_name not in tables:
                continue
            if region is not None and not (kind == "row" and table_name == "item"):
                return None
            table = self._tables[table_name]
            rows = self._live_rows(table_name)
            self.stats.table_lookups += len(table)
            if region is not None:
                regions = table.column("region")
                rows = (row for row in rows if regions[row] == region)
            if kind == "row":
                handles.extend(("e", table_name, row) for row in rows)
            elif kind == "frag":
                column = table.column(data)
                handles.extend(("fn", int(column[row]), 0)
                               for row in rows if column[row] is not None)
            else:  # "spec": leaf / struct / wrapper at an idx_path
                spec = _spec_at(ENTITY_SPECS[table_name], data)
                present = self._presence_rows(table, spec, rows)
                if isinstance(spec, Struct):
                    handles.extend(("s", table_name, row, data) for row in present)
                elif isinstance(spec, Wrapper):
                    handles.extend(("w", table_name, row, data) for row in present)
                else:
                    handles.extend(("l", table_name, row, data) for row in present)
        if len(locations) > 1:
            handles.sort(key=self.doc_position)
        return handles

    def _presence_rows(self, table, spec, rows):
        if isinstance(spec, Leaf):
            column = table.column(spec.column)
            return [row for row in rows if column[row] is not None]
        if isinstance(spec, RefLeaf):
            column = table.column(spec.presence_column)
            return [row for row in rows if column[row] is not None]
        if isinstance(spec, Struct):
            column = table.column(spec.presence_column)
            return [row for row in rows if column[row]]
        if isinstance(spec, Wrapper):
            if spec.presence_column is None:
                return list(rows)
            column = table.column(spec.presence_column)
            return [row for row in rows if column[row]]
        return []

    def _may_contain(self, node, tag: str) -> bool:
        if self.tag(node) == tag:
            return True
        kind = node[0]
        if kind == "t":
            container = node[1]
            if container == "site":
                return True
            if container == "regions":
                return tag == "item" or tag in self._reachable["item"]
            table_name, _ = CONTAINER_CONTENTS[container]
            spec = ENTITY_SPECS[table_name]
            return tag == spec.tag or tag in self._reachable[table_name]
        if kind == "e":
            return tag in self._reachable[node[1]]
        if kind in ("s", "w"):
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            tags: set[str] = set()
            _collect_spec_tags(spec, tags)
            return tag in tags
        if kind == "l":
            return False
        if kind == "fn":
            return tag in FRAGMENT_TAGS
        return False

    def parent(self, node):
        kind = node[0]
        if kind == "t":
            if node[1] == "site":
                return None
            if node[1] in _REGION_TAGS:
                return ("t", "regions")
            return ("t", "site")
        if kind == "e":
            table = node[1]
            table_obj = self._tables[table]
            if table_obj.has_column("parent"):
                owner_ord = table_obj.get(node[2], "parent")
                return self._entity_by_ord(owner_ord)
            spec = ENTITY_SPECS[table]
            if spec.table == "item":
                region = table_obj.get(node[2], "region")
                return ("t", region)
            for container, (held, _) in CONTAINER_CONTENTS.items():
                if held == table and container not in _REGION_TAGS:
                    return ("t", container)
            return None
        if kind in ("s", "w", "l"):
            if len(node[3]) == 1:
                return ("e", node[1], node[2])
            return ("s", node[1], node[2], node[3][:-1])
        if kind == "fn":
            fragment = self._fragment(node[1])
            element = fragment.nodes[node[2]]
            if element.parent is None:
                owner = self._frag_owner[node[1]]
                return self._entity_by_ord(owner[0])
            return ("fn", node[1], fragment.index_of[id(element.parent)])
        raise StorageError(f"bad handle {node!r}")

    def _entity_by_ord(self, ord_value: int):
        for spec in ENTITY_SPECS.values():
            index = self.catalog.hash_index(spec.table, "ord")
            if index:
                row = index.unique(ord_value)
                if row is not None:
                    return ("e", spec.table, row)
        return None

    def attribute(self, node, name: str) -> str | None:
        kind = node[0]
        if kind == "e":
            spec = ENTITY_SPECS[node[1]]
            for attr, column in spec.attr_columns:
                if attr == name:
                    self.stats.table_lookups += 1
                    return self._tables[node[1]].get(node[2], column)
            return None
        if kind in ("s", "l"):
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            attr_columns = getattr(spec, "attr_columns", ())
            for attr, column in attr_columns:
                if attr == name:
                    self.stats.table_lookups += 1
                    return self._tables[node[1]].get(node[2], column)
            return None
        if kind == "fn":
            return self._fragment(node[1]).nodes[node[2]].attributes.get(name)
        return None

    def attributes(self, node) -> dict[str, str]:
        kind = node[0]
        if kind == "e":
            spec = ENTITY_SPECS[node[1]]
            table = self._tables[node[1]]
            self.stats.table_lookups += 1
            return {attr: table.get(node[2], column)
                    for attr, column in spec.attr_columns
                    if table.get(node[2], column) is not None}
        if kind in ("s", "l"):
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            attr_columns = getattr(spec, "attr_columns", ())
            table = self._tables[node[1]]
            self.stats.table_lookups += 1
            return {attr: table.get(node[2], column)
                    for attr, column in attr_columns
                    if table.get(node[2], column) is not None}
        if kind == "fn":
            return dict(self._fragment(node[1]).nodes[node[2]].attributes)
        return {}

    def child_texts(self, node) -> list[str]:
        kind = node[0]
        if kind == "l":
            spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
            if isinstance(spec, Leaf):
                self.stats.table_lookups += 1
                value = self._tables[node[1]].get(node[2], spec.column)
                return [value] if value is not None else []
            return []
        if kind == "fn":
            element = self._fragment(node[1]).nodes[node[2]]
            return [child.value for child in element.children if isinstance(child, Text)]
        return []

    def string_value(self, node) -> str:
        kind = node[0]
        if kind == "fn":
            if node[2] == 0:
                return self._frag_text[node[1]]  # extracted text column
            return self._fragment(node[1]).nodes[node[2]].text_content()
        if kind == "l":
            texts = self.child_texts(node)
            return texts[0] if texts else ""
        parts: list[str] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current[0] in ("l", "fn"):
                parts.append(self.string_value(current))
            else:
                stack.extend(reversed(self.children(current)))
        return "".join(parts)

    def content(self, node) -> list:
        kind = node[0]
        if kind == "l":
            return list(self.child_texts(node))
        if kind == "fn":
            fragment = self._fragment(node[1])
            element = fragment.nodes[node[2]]
            return [
                child.value if isinstance(child, Text)
                else ("fn", node[1], fragment.index_of[id(child)])
                for child in element.children
            ]
        return list(self.children(node))

    #: Container holding each top-level entity table (items carry a region).
    _TABLE_CONTAINER = {
        "category": "categories", "edge": "catgraph", "person": "people",
        "open_auction": "open_auctions", "closed_auction": "closed_auctions",
    }

    def _rank_of(self, table: str, row: int) -> int:
        """The containing top-level container's ord — the leading component
        of every entity's document position.  Ords allocated for inserted
        entities exceed every load-time ord, so prefixing the (fixed)
        container rank keeps cross-container document order correct while
        appends within a container sort by ord as before."""
        table_obj = self._tables[table]
        if table_obj.has_column("parent"):
            owner = self._entity_by_ord(table_obj.get(row, "parent"))
            return self._rank_of(owner[1], owner[2])
        if table == "item":
            return self._container_ord[table_obj.get(row, "region")]
        return self._container_ord[self._TABLE_CONTAINER[table]]

    def doc_position(self, node):
        kind = node[0]
        if kind == "t":
            return (self._container_ord.get(node[1], 0),)
        if kind == "e":
            table = self._tables[node[1]]
            rank = self._rank_of(node[1], node[2])
            if table.has_column("parent"):
                owner_ord = table.get(node[2], "parent")
                owner_table = self._owner_table(node[1])
                spec_idx = self._nested_spec_idx[(owner_table, node[1])]
                return (rank, owner_ord, spec_idx, table.get(node[2], "pos"))
            return (rank, table.get(node[2], "ord"))
        if kind in ("s", "w", "l"):
            base = self.doc_position(("e", node[1], node[2]))
            return base + node[3]
        if kind == "fn":
            owner = self._frag_owner[node[1]]
            entity = self._entity_by_ord(owner[0])
            rank = self._rank_of(entity[1], entity[2]) if entity is not None else 0
            return (rank,) + owner + (node[2],)
        raise StorageError(f"bad handle {node!r}")

    def order_key(self, node):
        """Ord-based positions are cheap here — no relabeling to avoid."""
        return self.doc_position(node)

    def _owner_table(self, nested_table: str) -> str:
        for (owner, nested), _ in self._nested_spec_idx.items():
            if nested == nested_table:
                return owner
        raise StorageError(f"no owner for nested table {nested_table!r}")

    # -- capabilities ------------------------------------------------------------------

    def lookup_id(self, value: str):
        self.stats.index_lookups += 1
        return self._id_index.get(value)

    def has_id_index(self) -> bool:
        return True

    def known_tags(self) -> frozenset[str]:
        tags: set[str] = set(_SITE_CHILDREN) | {"site"} | set(_REGION_TAGS)
        for table, reachable in self._reachable.items():
            tags.add(ENTITY_SPECS[table].tag)
            tags.update(reachable)
        return frozenset(tags)

    def table(self, name: str):
        """Direct typed-relation access (used by the relational fast paths)."""
        return self.catalog.table(name)

    def entity_handle(self, table: str, row: int):
        return ("e", table, row)

    # -- mutation: schema-directed shredding and cascaded tuple deletes -------------
    #
    # A DTD-derived mapping can only take writes the derived schema has a
    # place for: whole entities (person, bidder, closed_auction, ...) are
    # shredded into their relations exactly like at bulkload — appended at
    # their set's end, which is the only position the schema can express —
    # and scalar writes update inlined columns.  Anything else (a new
    # element kind, a mid-set insert) raises, which is the honest behaviour
    # of a schema-bound store.

    def _allocate_ord(self) -> int:
        self._next_ord += 1
        return self._next_ord

    def _index_new_rows(self, snapshot: dict[str, int]) -> None:
        """Register every row appended since ``snapshot`` with the table's
        hash indexes and the ID index (the per-tuple index touches)."""
        for table_name, old_size in snapshot.items():
            table = self._tables[table_name]
            if len(table) == old_size:
                continue
            spec = ENTITY_SPECS[table_name]
            ord_index = self.catalog.hash_index(table_name, "ord")
            parent_index = self._parent_indexes.get(table_name)
            region_index = (self.catalog.hash_index(table_name, "region")
                            if table.has_column("region") else None)
            for row in range(old_size, len(table)):
                ord_index.insert(table.get(row, "ord"), row)
                if parent_index is not None:
                    parent_index.insert(table.get(row, "parent"), row)
                if region_index is not None:
                    region_index.insert(table.get(row, "region"), row)
                for attr, column in spec.attr_columns:
                    if attr == "id":
                        value = table.get(row, column)
                        if value is not None:
                            self._id_index[value] = ("e", table_name, row)

    def insert_child(self, parent, element, index: int | None = None):
        self.require_loaded()
        snapshot = {name: len(table) for name, table in self._tables.items()}
        kind = parent[0]
        if kind == "t":
            entry = CONTAINER_CONTENTS.get(parent[1])
            if entry is None or TABLE_OF_TAG.get(element.tag) != entry[0]:
                raise StorageError(
                    f"the derived schema has no place for <{element.tag}> "
                    f"under <{parent[1]}>")
            table_name = entry[0]
            extra = {"region": parent[1]} if entry[1] else None
            self._shred_entity(element, ENTITY_SPECS[table_name],
                               self._allocate_ord, extra=extra)
        elif kind in ("e", "w"):
            if kind == "w":
                spec = _spec_at(ENTITY_SPECS[parent[1]], parent[3])
                nested = spec.nested
            else:
                entry = self._child_map(parent[1], ()).get(element.tag)
                if entry is None or not isinstance(entry[1], Nested):
                    raise StorageError(
                        f"the derived schema has no set-valued place for "
                        f"<{element.tag}> under <{self.tag(parent)}>")
                nested = entry[1]
            if ENTITY_SPECS[nested.table].tag != element.tag:
                raise StorageError(
                    f"<{element.tag}> does not match the nested set "
                    f"<{ENTITY_SPECS[nested.table].tag}>")
            owner_ord = self._ord_of(parent[1], parent[2])
            existing = self._nested_rows(nested.table, owner_ord)
            table = self._tables[nested.table]
            next_pos = (max(table.get(row, "pos") for row in existing) + 1
                        if existing else 0)
            self._shred_entity(element, ENTITY_SPECS[nested.table],
                               self._allocate_ord,
                               parent_ord=owner_ord, pos=next_pos)
        else:
            raise StorageError(
                f"the inlined schema cannot insert under handle {parent!r}")
        self._index_new_rows(snapshot)
        root_table = (entry[0] if kind == "t" else nested.table)
        return ("e", root_table, snapshot[root_table])

    def _nested_tables_of(self, table_name: str) -> list[str]:
        return [nested for owner, nested in self._nested_spec_idx
                if owner == table_name]

    def remove_node(self, node) -> None:
        self.require_loaded()
        if node[0] != "e":
            raise StorageError(
                f"the inlined schema only removes whole entities, not {node!r}")
        doomed: list[tuple[str, int]] = []
        stack = [(node[1], node[2])]
        while stack:
            table_name, row = stack.pop()
            doomed.append((table_name, row))
            owner_ord = self._ord_of(table_name, row)
            for nested in self._nested_tables_of(table_name):
                stack.extend((nested, nested_row)
                             for nested_row in self._nested_rows(nested, owner_ord))
        for table_name, row in doomed:
            table = self._tables[table_name]
            spec = ENTITY_SPECS[table_name]
            self.catalog.hash_index(table_name, "ord").remove(
                table.get(row, "ord"), row)
            parent_index = self._parent_indexes.get(table_name)
            if parent_index is not None:
                parent_index.remove(table.get(row, "parent"), row)
            if table.has_column("region"):
                region_index = self.catalog.hash_index(table_name, "region")
                if region_index is not None:
                    region_index.remove(table.get(row, "region"), row)
            for attr, column in spec.attr_columns:
                if attr == "id":
                    value = table.get(row, column)
                    if value is not None and \
                            self._id_index.get(value) == ("e", table_name, row):
                        del self._id_index[value]
            self._dead.setdefault(table_name, set()).add(row)

    def set_text(self, node, text: str) -> None:
        self.require_loaded()
        if node[0] != "l":
            raise StorageError(
                f"the inlined schema only retexts leaf columns, not {node!r}")
        spec = _spec_at(ENTITY_SPECS[node[1]], node[3])
        if not isinstance(spec, Leaf):
            raise StorageError(f"handle {node!r} is not an inlined PCDATA leaf")
        self._tables[node[1]].set(node[2], spec.column, text)

    def set_attribute(self, node, name: str, value: str) -> None:
        self.require_loaded()
        kind = node[0]
        if kind == "e":
            attr_columns = ENTITY_SPECS[node[1]].attr_columns
        elif kind in ("s", "l"):
            attr_columns = getattr(
                _spec_at(ENTITY_SPECS[node[1]], node[3]), "attr_columns", ())
        else:
            raise StorageError(
                f"the inlined schema cannot set attributes on {node!r}")
        for attr, column in attr_columns:
            if attr == name:
                self._tables[node[1]].set(node[2], column, value)
                if kind == "e" and attr == "id":
                    self._id_index[value] = ("e", node[1], node[2])
                return
        raise StorageError(
            f"the derived schema has no column for @{name} on {self.tag(node)!r}")


def _columns_below(struct: Struct):
    for child in struct.children:
        if isinstance(child, Leaf):
            yield child.column
        elif isinstance(child, RefLeaf):
            for _, column in child.attr_columns:
                yield column
        elif isinstance(child, FragLeaf):
            yield child.column
        elif isinstance(child, Struct):
            yield child.presence_column
            for _, column in child.attr_columns:
                yield column
            yield from _columns_below(child)


def _collect_spec_tags(spec: ChildSpec, into: set[str]) -> None:
    if isinstance(spec, Leaf) or isinstance(spec, RefLeaf):
        into.add(spec.tag)
    elif isinstance(spec, FragLeaf):
        into.add(spec.tag)
        into.update(FRAGMENT_TAGS)
    elif isinstance(spec, Struct):
        into.add(spec.tag)
        for child in spec.children:
            _collect_spec_tags(child, into)
    elif isinstance(spec, Nested):
        into.add(spec.tag)
        nested = ENTITY_SPECS[spec.table]
        for child in nested.children:
            _collect_spec_tags(child, into)
    elif isinstance(spec, Wrapper):
        into.add(spec.tag)
        _collect_spec_tags(spec.nested, into)
