"""System G analogue: an embedded, naive DOM query target.

The paper's System G is an in-process query processor "intended to serve as
embedded query processors in programming languages and aim at small to
medium sized documents"; it failed at scaling factor 1.0 and showed a flat
interpretive overhead at 100 kB / 1 MB (Figure 4).  This store wraps the
parse-time DOM directly: no indexes of any kind, every operation is a fresh
recursive walk, and an optional document-size guard mimics G's inability to
process large inputs.
"""

from __future__ import annotations

import sys

from repro.errors import StorageError
from repro.storage.interface import Store
from repro.xmlio.dom import Document, Element, Text
from repro.xmlio.parser import parse

#: Default refusal threshold: G "failed to do so" at scale 1.0; we refuse
#: anything over ~1/4 of the standard document so the failure is reproducible.
DEFAULT_DOCUMENT_LIMIT = 25_000_000


class DomStore(Store):
    """Naive embedded DOM store (System G).

    "No indexes" describes the *architecture and its profile*: G's planner
    never uses an access structure.  Like every store it still builds the
    uniform secondary IndexSet at mark_loaded — that is what lets the
    ablation benchmark and the probe==scan property tests compare both
    access paths on one and the same loaded store.
    """

    architecture = "embedded in-process DOM, no native indexes (System G)"

    def __init__(self, document_limit: int = DEFAULT_DOCUMENT_LIMIT) -> None:
        super().__init__()
        self._document: Document | None = None
        self._positions: dict[int, int] = {}
        self._positions_stale = False
        self._source_bytes = 0
        self._document_limit = document_limit

    def load(self, text: str) -> None:
        if len(text) > self._document_limit:
            raise StorageError(
                f"document of {len(text)} bytes exceeds the embedded processor's "
                f"capacity ({self._document_limit} bytes) — the paper's System G "
                "equally failed at scaling factor 1.0"
            )
        self._document = parse(text)
        self._source_bytes = len(text)
        self._renumber()
        self.mark_loaded(text)

    def _renumber(self) -> None:
        # Document-order numbering for the << comparisons (Q4); the id() of a
        # DOM node is stable for the life of the tree we hold.
        self._positions.clear()
        order = 0
        if self._document.root is not None:
            stack: list[Element] = [self._document.root]
            while stack:
                node = stack.pop()
                self._positions[id(node)] = order
                order += 1
                stack.extend(reversed(list(node.child_elements())))
        self._positions_stale = False

    def size_bytes(self) -> int:
        self.require_loaded()
        total = 0
        root = self._document.root
        stack: list[Element | Text] = [root] if root is not None else []
        while stack:
            node = stack.pop()
            total += sys.getsizeof(node)
            if isinstance(node, Element):
                total += sys.getsizeof(node.attributes)
                total += sum(sys.getsizeof(k) + sys.getsizeof(v)
                             for k, v in node.attributes.items())
                stack.extend(node.children)
            else:
                total += sys.getsizeof(node.value)
        return total

    # -- navigation -----------------------------------------------------------

    def root(self) -> Element:
        self.require_loaded()
        return self._document.root

    def tag(self, node: Element) -> str:
        return node.tag

    def children(self, node: Element) -> list[Element]:
        self.stats.nodes_visited += 1
        return list(node.child_elements())

    def children_by_tag(self, node: Element, tag: str) -> list[Element]:
        self.stats.nodes_visited += 1
        return node.find_all(tag)

    def descendants_by_tag(self, node: Element, tag: str) -> list[Element]:
        found = []
        for descendant in node.descendants(tag):
            self.stats.nodes_visited += 1
            found.append(descendant)
        return found

    def parent(self, node: Element) -> Element | None:
        return node.parent

    def attribute(self, node: Element, name: str) -> str | None:
        return node.attributes.get(name)

    def attributes(self, node: Element) -> dict[str, str]:
        return dict(node.attributes)

    def child_texts(self, node: Element) -> list[str]:
        self.stats.nodes_visited += 1
        return [child.value for child in node.children if isinstance(child, Text)]

    def string_value(self, node: Element) -> str:
        self.stats.nodes_visited += 1
        return node.text_content()

    def content(self, node: Element) -> list[Element | str]:
        self.stats.nodes_visited += 1
        return [
            child.value if isinstance(child, Text) else child
            for child in node.children
        ]

    def doc_position(self, node: Element) -> int:
        if self._positions_stale:
            self._renumber()
        return self._positions[id(node)]

    def build_dom(self, node: Element) -> Element:
        return node.copy()

    # -- mutation: direct DOM pointer splices -----------------------------------

    def insert_child(self, parent: Element, element: Element,
                     index: int | None = None) -> Element:
        self.require_loaded()
        node = element.copy()
        node.parent = parent
        parent.children.insert(_content_slot(parent, index), node)
        self._positions_stale = True
        return node

    def remove_node(self, node: Element) -> None:
        self.require_loaded()
        if node.parent is None:
            raise StorageError("cannot remove the document root")
        node.parent.children.remove(node)
        node.parent = None
        self._positions_stale = True

    def set_text(self, node: Element, text: str) -> None:
        self.require_loaded()
        replaced = False
        rebuilt: list[Element | Text] = []
        for child in node.children:
            if isinstance(child, Text):
                if text and not replaced:
                    run = Text(text)
                    run.parent = node
                    rebuilt.append(run)
                    replaced = True
            else:
                rebuilt.append(child)
        if text and not replaced:
            run = Text(text)
            run.parent = node
            rebuilt.append(run)
        node.children = rebuilt

    def set_attribute(self, node: Element, name: str, value: str) -> None:
        self.require_loaded()
        node.attributes[name] = value


def _content_slot(parent: Element, index: int | None) -> int:
    """The children-list position placing a new node before the ``index``-th
    element child (None: after every existing child)."""
    if index is None:
        return len(parent.children)
    seen = 0
    for slot, child in enumerate(parent.children):
        if isinstance(child, Element):
            if seen == index:
                return slot
            seen += 1
    return len(parent.children)
