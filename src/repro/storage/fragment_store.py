"""System B analogue: the "highly fragmenting" per-path relational mapping.

The paper on System B: "System B on the other hand uses a highly fragmenting
mapping. Consequently, System A has to access fewer metadata to compile a
query than System B, thus spending only half as much time on query
compilation ... [but B's] actual cost of accessing the real data is
[lower]".

Every distinct root-to-element path gets its own relation (the Monet/binary
association style of [20]):

* ``site/people/person``            -> (pre, post, parent, pos)
* ``site/people/person/@id``        -> (parent, value)
* ``site/people/person/name/#text`` -> (pre, parent, pos, value)

Navigation inside a known path is a small-table index probe (fast), but
*every* step resolution goes through the catalog by table name, and
descendant steps must inspect the whole catalog — the metadata weight that
dominates B's compile times in Table 2.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.errors import StorageError
from repro.relational.catalog import Catalog
from repro.relational.table import Column, ColumnType
from repro.storage.interface import Store, rank_by_walk
from repro.xmlio.dom import Element, Text
from repro.xmlio.events import Characters, EndElement, StartElement
from repro.xmlio.parser import iterparse

_INT = ColumnType.INT
_STR = ColumnType.STR

Path = tuple[str, ...]
Handle = tuple[Path, int]


def _table_name(path: Path) -> str:
    return "/".join(path)


def _text_table_name(path: Path) -> str:
    return _table_name(path) + "/#text"


def _attr_table_name(path: Path, attr: str) -> str:
    return _table_name(path) + "/@" + attr


_ELEM_COLUMNS = [
    Column("pre", _INT, nullable=False),
    Column("post", _INT, nullable=False),
    Column("parent", _INT),
    Column("pos", _INT, nullable=False),
]
_TEXT_COLUMNS = [
    Column("pre", _INT, nullable=False),
    Column("parent", _INT, nullable=False),
    Column("pos", _INT, nullable=False),
    Column("value", _STR, nullable=False),
]
_ATTR_COLUMNS = [
    Column("parent", _INT, nullable=False),
    Column("value", _STR, nullable=False),
]


class FragmentStore(Store):
    """One relation per distinct path (System B)."""

    architecture = "relational, one table per distinct path (System B)"

    def __init__(self) -> None:
        super().__init__()
        self.catalog = Catalog()
        self._children_map: dict[Path, list[str]] = {}
        self._text_paths: set[Path] = set()
        self._attr_map: dict[Path, list[str]] = {}
        self._paths_by_tag: dict[str, list[Path]] = {}
        self._id_index: dict[str, Handle] = {}
        self._root_path: Path = ()
        self._text_tables_below: dict[Path, list[str]] = {}
        self._next_pre = 0                      # pre allocator for inserted tuples
        self._mutated = False                   # pre order == doc order until then
        self._order: dict[Handle, int] | None = None
        self._dead_rows: dict[str, set[int]] = {}

    # -- bulkload -----------------------------------------------------------------

    def load(self, text: str) -> None:
        self.catalog = Catalog()
        self._children_map = {}
        self._text_paths = set()
        self._attr_map = {}
        self._paths_by_tag = {}
        self._id_index = {}
        self._text_tables_below = {}

        elem_columns = _ELEM_COLUMNS
        text_columns = _TEXT_COLUMNS
        attr_columns = _ATTR_COLUMNS

        sequence = 0
        stack: list[tuple[Path, int, int]] = []  # (path, pre, next slot)
        patches: list[tuple[Path, int, int]] = []  # (path, row, post)

        for event in iterparse(text):
            if isinstance(event, StartElement):
                parent_path = stack[-1][0] if stack else ()
                path = parent_path + (event.tag,)
                pre = sequence
                sequence += 1
                parent_pre = stack[-1][1] if stack else None
                slot = 0
                if stack:
                    slot = stack[-1][2]
                    stack[-1] = (stack[-1][0], stack[-1][1], slot + 1)
                if path not in self._children_map:
                    self._register_path(path, parent_path)
                table = self.catalog.ensure_table(_table_name(path), elem_columns)
                row = table.append(pre=pre, post=pre, parent=parent_pre, pos=slot)
                patches_entry = (path, row, 0)
                for name, value in event.attributes:
                    attr_table = self.catalog.ensure_table(
                        _attr_table_name(path, name), attr_columns)
                    if name not in self._attr_map.setdefault(path, []):
                        self._attr_map[path].append(name)
                    attr_table.append(parent=pre, value=value)
                    if name == "id":
                        self._id_index[value] = (path, pre)
                stack.append((path, pre, 0))
            elif isinstance(event, EndElement):
                path, pre, _ = stack.pop()
                table = self.catalog.ensure_table(_table_name(path), elem_columns)
                # Patch post: the row for `pre` is the one whose pre == pre.
                pres = table.column("pre")
                # Rows are appended in pre order; find via bisect.
                row = bisect_left(pres, pre)
                table.column("post")[row] = sequence - 1
            else:
                path, parent_pre, slot = stack[-1]
                stack[-1] = (path, parent_pre, slot + 1)
                text_table = self.catalog.ensure_table(
                    _text_table_name(path), text_columns)
                self._text_paths.add(path)
                text_table.append(pre=sequence, parent=parent_pre, pos=slot,
                                  value=event.text)
                sequence += 1

        # Build parent indexes on every element and text table.
        for path in self._children_map:
            name = _table_name(path)
            self.catalog.create_hash_index(name, "parent")
            self.catalog.create_hash_index(name, "pre")
        for path in self._text_paths:
            self.catalog.create_hash_index(_text_table_name(path), "parent")
        for path, attr_names in self._attr_map.items():
            for attr in attr_names:
                self.catalog.create_hash_index(_attr_table_name(path, attr), "parent")
        self.catalog.analyze()
        # Resolve the text tables below every registered path now: the catalog
        # never changes after load, and precomputing keeps string_value() free
        # of shared mutable scratch, so concurrent readers are safe.
        below: dict[Path, list[str]] = {path: [] for path in self._children_map}
        for text_path in self._text_paths:
            name = _text_table_name(text_path)
            for depth in range(1, len(text_path) + 1):
                prefix = text_path[:depth]
                if prefix in below:
                    below[prefix].append(name)
        self._text_tables_below = {path: sorted(names) for path, names in below.items()}
        self._next_pre = sequence
        self._mutated = False
        self._order = None
        self._dead_rows = {}
        self.mark_loaded(text)

    def _register_path(self, path: Path, parent_path: Path) -> None:
        self._children_map[path] = []
        if parent_path in self._children_map and path[-1] not in self._children_map[parent_path]:
            self._children_map[parent_path].append(path[-1])
        self._paths_by_tag.setdefault(path[-1], []).append(path)
        if len(path) == 1:
            self._root_path = path

    def size_bytes(self) -> int:
        self.require_loaded()
        return self.catalog.estimated_bytes()

    @property
    def table_count(self) -> int:
        return self.catalog.table_count()

    # -- path metadata (counted catalog traffic) -------------------------------------

    def paths_extending(self, prefix: Path, tag: str) -> list[Path]:
        """All registered element paths that extend ``prefix`` and end in
        ``tag`` — a full catalog inspection, the B compile-time workload."""
        prefix_name = _table_name(prefix)
        matches = self.catalog.match_table_names(
            lambda name: name.startswith(prefix_name + "/")
            and name.endswith("/" + tag)
            and "#" not in name and "@" not in name
        )
        return [tuple(name.split("/")) for name in matches]

    def child_path_exists(self, prefix: Path, tag: str) -> bool:
        return self.catalog.has_table(_table_name(prefix + (tag,)))

    # -- navigation -----------------------------------------------------------------

    def root(self) -> Handle:
        self.require_loaded()
        return (self._root_path, 0)

    def tag(self, node: Handle) -> str:
        return node[0][-1]

    def _rows_for_parent(self, child_path: Path, parent_pre: int) -> list[int]:
        index = self.catalog.hash_index(_table_name(child_path), "parent")
        self.stats.index_lookups += 1
        return index.lookup(parent_pre) if index else []

    def children(self, node: Handle) -> list[Handle]:
        path, pre = node
        merged: list[tuple[int, Handle]] = []
        for tag in self._children_map.get(path, ()):
            child_path = path + (tag,)
            table = self.catalog.table(_table_name(child_path))
            rows = self._rows_for_parent(child_path, pre)
            self.stats.table_lookups += len(rows)
            pres = table.column("pre")
            poss = table.column("pos")
            merged.extend((poss[row], (child_path, pres[row])) for row in rows)
        merged.sort(key=lambda pair: pair[0])
        return [handle for _, handle in merged]

    def children_by_tag(self, node: Handle, tag: str) -> list[Handle]:
        path, pre = node
        child_path = path + (tag,)
        if not self.catalog.has_table(_table_name(child_path)):
            return []
        table = self.catalog.table(_table_name(child_path))
        rows = self._rows_for_parent(child_path, pre)
        self.stats.table_lookups += len(rows)
        pres = table.column("pre")
        if self._mutated:
            # Row order is append order, not sibling order, once tuples
            # have been inserted: restore it from the pos column.
            poss = table.column("pos")
            rows = sorted(rows, key=poss.__getitem__)
            return [(child_path, pres[row]) for row in rows]
        return [(child_path, pres[row]) for row in sorted(rows)]

    def descendants_by_tag(self, node: Handle, tag: str) -> list[Handle]:
        if self._mutated:
            # Inserted pres break the per-table pre intervals: navigate.
            found: list[Handle] = []
            stack = [child for child in reversed(self.children(node))]
            while stack:
                current = stack.pop()
                if current[0][-1] == tag:
                    found.append(current)
                stack.extend(reversed(self.children(current)))
            return found
        path, pre = node
        post = self._post_of(node)
        found = []
        for descendant_path in self.paths_extending(path, tag):
            table = self.catalog.table(_table_name(descendant_path))
            pres = table.column("pre")
            start = bisect_right(pres, pre)
            stop = bisect_right(pres, post)
            self.stats.table_lookups += stop - start
            found.extend((descendant_path, pres[row]) for row in range(start, stop))
        found.sort(key=lambda handle: handle[1])
        return found

    def _row_of(self, node: Handle) -> int:
        path, pre = node
        index = self.catalog.hash_index(_table_name(path), "pre")
        self.stats.index_lookups += 1
        row = index.unique(pre)
        if row is None:
            raise StorageError(f"no row for handle {node!r}")
        return row

    def _post_of(self, node: Handle) -> int:
        table = self.catalog.table(_table_name(node[0]))
        return table.get(self._row_of(node), "post")

    def parent(self, node: Handle) -> Handle | None:
        path, _ = node
        if len(path) <= 1:
            return None
        table = self.catalog.table(_table_name(path))
        parent_pre = table.get(self._row_of(node), "parent")
        self.stats.table_lookups += 1
        return (path[:-1], parent_pre)

    def attribute(self, node: Handle, name: str) -> str | None:
        path, pre = node
        if name not in self._attr_map.get(path, ()):
            return None
        table_name = _attr_table_name(path, name)
        index = self.catalog.hash_index(table_name, "parent")
        self.stats.index_lookups += 1
        rows = index.lookup(pre) if index else []
        if not rows:
            return None
        self.stats.table_lookups += 1
        return self.catalog.table(table_name).get(rows[0], "value")

    def attributes(self, node: Handle) -> dict[str, str]:
        path, _ = node
        result: dict[str, str] = {}
        for name in self._attr_map.get(path, ()):
            value = self.attribute(node, name)
            if value is not None:
                result[name] = value
        return result

    def child_texts(self, node: Handle) -> list[str]:
        path, pre = node
        if path not in self._text_paths:
            return []
        table_name = _text_table_name(path)
        index = self.catalog.hash_index(table_name, "parent")
        self.stats.index_lookups += 1
        rows = sorted(index.lookup(pre)) if index else []
        self.stats.table_lookups += len(rows)
        values = self.catalog.table(table_name).column("value")
        return [values[row] for row in rows]

    def string_value(self, node: Handle) -> str:
        if self._mutated:
            parts: list[str] = []
            stack: list = [node]
            while stack:
                current = stack.pop()
                if isinstance(current, str):
                    parts.append(current)
                else:
                    stack.extend(reversed(self.content(current)))
            return "".join(parts)
        path, pre = node
        post = self._post_of(node)
        collected: list[tuple[int, str]] = []
        # The text tables below a path never change after load; the mapping is
        # precomputed at load time (a real system would have this in its
        # compiled plan), so this read path mutates no shared state.
        text_tables = self._text_tables_below.get(path, ())
        for name in text_tables:
            table = self.catalog.table(name)
            pres = table.column("pre")
            values = table.column("value")
            start = bisect_left(pres, pre)
            stop = bisect_right(pres, post)
            self.stats.table_lookups += stop - start
            collected.extend((pres[row], values[row]) for row in range(start, stop))
        collected.sort(key=lambda pair: pair[0])
        return "".join(value for _, value in collected)

    def content(self, node: Handle) -> list:
        path, pre = node
        merged: list[tuple[int, object]] = [
            (self._pos_of(child), child) for child in self.children(node)
        ]
        if path in self._text_paths:
            table_name = _text_table_name(path)
            index = self.catalog.hash_index(table_name, "parent")
            self.stats.index_lookups += 1
            rows = index.lookup(pre) if index else []
            table = self.catalog.table(table_name)
            poss = table.column("pos")
            values = table.column("value")
            merged.extend((poss[row], values[row]) for row in rows)
        merged.sort(key=lambda pair: pair[0])
        return [part for _, part in merged]

    def _pos_of(self, node: Handle) -> int:
        table = self.catalog.table(_table_name(node[0]))
        return table.get(self._row_of(node), "pos")

    def doc_position(self, node: Handle) -> int:
        if not self._mutated:
            return node[1]
        if self._order is None:
            self._order = rank_by_walk(self)
        return self._order[node]

    # -- capabilities ------------------------------------------------------------------

    def lookup_id(self, value: str) -> Handle | None:
        self.stats.index_lookups += 1
        return self._id_index.get(value)

    def has_id_index(self) -> bool:
        return True

    def nodes_at_path(self, path: Path) -> list[Handle] | None:
        """A path extent is exactly one table scan in this mapping."""
        name = _table_name(path)
        if not self.catalog.has_table(name):
            return []
        table = self.catalog.table(name)
        pres = table.column("pre")
        self.stats.table_lookups += len(pres)
        dead = self._dead_rows.get(name)
        handles = [(path, pre) for row, pre in enumerate(pres)
                   if not dead or row not in dead]
        if self._mutated:
            handles.sort(key=self.doc_position)
        return handles

    def known_tags(self) -> frozenset[str]:
        return frozenset(self._paths_by_tag)

    # -- mutation: tuple inserts/deletes across the per-path relations ------------------

    def _note_mutation(self) -> None:
        self._mutated = True
        self._order = None

    def _ensure_elem_table(self, path: Path, parent_path: Path):
        name = _table_name(path)
        if not self.catalog.has_table(name):
            self.catalog.ensure_table(name, _ELEM_COLUMNS)
            self._register_path(path, parent_path)
            self.catalog.create_hash_index(name, "parent")
            self.catalog.create_hash_index(name, "pre")
            self._text_tables_below.setdefault(path, [])
        return self.catalog.table(name)

    def _ensure_text_table(self, path: Path):
        name = _text_table_name(path)
        if not self.catalog.has_table(name):
            self.catalog.ensure_table(name, _TEXT_COLUMNS)
            self.catalog.create_hash_index(name, "parent")
            self._text_paths.add(path)
            for depth in range(1, len(path) + 1):
                prefix = path[:depth]
                tables = self._text_tables_below.setdefault(prefix, [])
                if name not in tables:
                    tables.append(name)
                    tables.sort()
        return self.catalog.table(name)

    def _ensure_attr_table(self, path: Path, attr: str):
        name = _attr_table_name(path, attr)
        if not self.catalog.has_table(name):
            self.catalog.ensure_table(name, _ATTR_COLUMNS)
            self.catalog.create_hash_index(name, "parent")
        if attr not in self._attr_map.setdefault(path, []):
            self._attr_map[path].append(attr)
        return self.catalog.table(name)

    def _content_pos(self, node: Handle, index: int | None) -> int:
        """The pos value for a new child at element ``index``, shifting the
        pos of every following sibling tuple across all child relations."""
        path, pre = node
        children = self.children(node)
        if index is None or index >= len(children):
            highest = -1
            for child in children:
                highest = max(highest, self._pos_of(child))
            if path in self._text_paths:
                table = self.catalog.table(_text_table_name(path))
                index_obj = self.catalog.hash_index(_text_table_name(path), "parent")
                for row in index_obj.lookup(pre) if index_obj else []:
                    highest = max(highest, table.get(row, "pos"))
            return highest + 1
        target = self._pos_of(children[index])
        for tag in self._children_map.get(path, ()):
            child_path = path + (tag,)
            table = self.catalog.table(_table_name(child_path))
            index_obj = self.catalog.hash_index(_table_name(child_path), "parent")
            for row in index_obj.lookup(pre) if index_obj else []:
                pos = table.get(row, "pos")
                if pos >= target:
                    table.set(row, "pos", pos + 1)
        if path in self._text_paths:
            table = self.catalog.table(_text_table_name(path))
            index_obj = self.catalog.hash_index(_text_table_name(path), "parent")
            for row in index_obj.lookup(pre) if index_obj else []:
                pos = table.get(row, "pos")
                if pos >= target:
                    table.set(row, "pos", pos + 1)
        return target

    def insert_child(self, parent: Handle, element: Element,
                     index: int | None = None) -> Handle:
        self.require_loaded()
        pos = self._content_pos(parent, index)
        handle = self._insert_subtree(element, parent[0], parent[1], pos)
        self._note_mutation()
        return handle

    def _insert_subtree(self, element: Element, parent_path: Path,
                        parent_pre: int | None, pos: int) -> Handle:
        path = parent_path + (element.tag,)
        table = self._ensure_elem_table(path, parent_path)
        pre = self._next_pre
        self._next_pre += 1
        row = table.append(pre=pre, post=pre, parent=parent_pre, pos=pos)
        self.catalog.hash_index(_table_name(path), "parent").insert(parent_pre, row)
        self.catalog.hash_index(_table_name(path), "pre").insert(pre, row)
        for name, value in element.attributes.items():
            attr_table = self._ensure_attr_table(path, name)
            attr_row = attr_table.append(parent=pre, value=value)
            self.catalog.hash_index(_attr_table_name(path, name), "parent").insert(
                pre, attr_row)
            if name == "id":
                self._id_index[value] = (path, pre)
        slot = 0
        for child in element.children:
            if isinstance(child, Text):
                text_table = self._ensure_text_table(path)
                text_pre = self._next_pre
                self._next_pre += 1
                text_row = text_table.append(pre=text_pre, parent=pre, pos=slot,
                                             value=child.value)
                self.catalog.hash_index(_text_table_name(path), "parent").insert(
                    pre, text_row)
            else:
                self._insert_subtree(child, path, pre, slot)
            slot += 1
        return (path, pre)

    def remove_node(self, node: Handle) -> None:
        self.require_loaded()
        if len(node[0]) <= 1:
            raise StorageError("cannot remove the document root")
        doomed = [node]
        stack = list(self.children(node))
        while stack:
            current = stack.pop()
            doomed.append(current)
            stack.extend(self.children(current))
        for path, pre in doomed:
            name = _table_name(path)
            table = self.catalog.table(name)
            row = self.catalog.hash_index(name, "pre").unique(pre)
            self.catalog.hash_index(name, "pre").remove(pre, row)
            self.catalog.hash_index(name, "parent").remove(
                table.get(row, "parent"), row)
            self._dead_rows.setdefault(name, set()).add(row)
            for attr in self._attr_map.get(path, ()):
                attr_name = _attr_table_name(path, attr)
                attr_index = self.catalog.hash_index(attr_name, "parent")
                for attr_row in list(attr_index.lookup(pre)) if attr_index else []:
                    value = self.catalog.table(attr_name).get(attr_row, "value")
                    if attr == "id" and self._id_index.get(value) == (path, pre):
                        del self._id_index[value]
                    attr_index.remove(pre, attr_row)
            if path in self._text_paths:
                text_name = _text_table_name(path)
                text_index = self.catalog.hash_index(text_name, "parent")
                for text_row in list(text_index.lookup(pre)) if text_index else []:
                    text_index.remove(pre, text_row)
        self._note_mutation()

    def set_text(self, node: Handle, text: str) -> None:
        self.require_loaded()
        path, pre = node
        if path in self._text_paths:
            text_name = _text_table_name(path)
            table = self.catalog.table(text_name)
            text_index = self.catalog.hash_index(text_name, "parent")
            rows = sorted(text_index.lookup(pre),
                          key=table.column("pos").__getitem__) if text_index else []
        else:
            rows = []
        if rows:
            if text:
                table.set(rows[0], "value", text)
                extra = rows[1:]
            else:
                extra = rows
            for row in extra:
                text_index.remove(pre, row)
        elif text:
            pos = self._content_pos(node, None)
            table = self._ensure_text_table(path)
            text_pre = self._next_pre
            self._next_pre += 1
            row = table.append(pre=text_pre, parent=pre, pos=pos, value=text)
            self.catalog.hash_index(_text_table_name(path), "parent").insert(pre, row)
        self._note_mutation()

    def set_attribute(self, node: Handle, name: str, value: str) -> None:
        self.require_loaded()
        path, pre = node
        table = self._ensure_attr_table(path, name)
        attr_index = self.catalog.hash_index(_attr_table_name(path, name), "parent")
        rows = attr_index.lookup(pre) if attr_index else []
        if rows:
            table.set(rows[0], "value", value)
        else:
            row = table.append(parent=pre, value=value)
            self.catalog.hash_index(_attr_table_name(path, name), "parent").insert(
                pre, row)
        if name == "id":
            self._id_index[value] = (path, pre)
        self._note_mutation()
