"""System B analogue: the "highly fragmenting" per-path relational mapping.

The paper on System B: "System B on the other hand uses a highly fragmenting
mapping. Consequently, System A has to access fewer metadata to compile a
query than System B, thus spending only half as much time on query
compilation ... [but B's] actual cost of accessing the real data is
[lower]".

Every distinct root-to-element path gets its own relation (the Monet/binary
association style of [20]):

* ``site/people/person``            -> (pre, post, parent, pos)
* ``site/people/person/@id``        -> (parent, value)
* ``site/people/person/name/#text`` -> (pre, parent, pos, value)

Navigation inside a known path is a small-table index probe (fast), but
*every* step resolution goes through the catalog by table name, and
descendant steps must inspect the whole catalog — the metadata weight that
dominates B's compile times in Table 2.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.relational.catalog import Catalog
from repro.relational.table import Column, ColumnType
from repro.storage.interface import Store
from repro.xmlio.events import Characters, EndElement, StartElement
from repro.xmlio.parser import iterparse

_INT = ColumnType.INT
_STR = ColumnType.STR

Path = tuple[str, ...]
Handle = tuple[Path, int]


def _table_name(path: Path) -> str:
    return "/".join(path)


def _text_table_name(path: Path) -> str:
    return _table_name(path) + "/#text"


def _attr_table_name(path: Path, attr: str) -> str:
    return _table_name(path) + "/@" + attr


class FragmentStore(Store):
    """One relation per distinct path (System B)."""

    architecture = "relational, one table per distinct path (System B)"

    def __init__(self) -> None:
        super().__init__()
        self.catalog = Catalog()
        self._children_map: dict[Path, list[str]] = {}
        self._text_paths: set[Path] = set()
        self._attr_map: dict[Path, list[str]] = {}
        self._paths_by_tag: dict[str, list[Path]] = {}
        self._id_index: dict[str, Handle] = {}
        self._root_path: Path = ()
        self._text_tables_below: dict[Path, list[str]] = {}

    # -- bulkload -----------------------------------------------------------------

    def load(self, text: str) -> None:
        self.catalog = Catalog()
        self._children_map = {}
        self._text_paths = set()
        self._attr_map = {}
        self._paths_by_tag = {}
        self._id_index = {}
        self._text_tables_below = {}

        elem_columns = [
            Column("pre", _INT, nullable=False),
            Column("post", _INT, nullable=False),
            Column("parent", _INT),
            Column("pos", _INT, nullable=False),
        ]
        text_columns = [
            Column("pre", _INT, nullable=False),
            Column("parent", _INT, nullable=False),
            Column("pos", _INT, nullable=False),
            Column("value", _STR, nullable=False),
        ]
        attr_columns = [
            Column("parent", _INT, nullable=False),
            Column("value", _STR, nullable=False),
        ]

        sequence = 0
        stack: list[tuple[Path, int, int]] = []  # (path, pre, next slot)
        patches: list[tuple[Path, int, int]] = []  # (path, row, post)

        for event in iterparse(text):
            if isinstance(event, StartElement):
                parent_path = stack[-1][0] if stack else ()
                path = parent_path + (event.tag,)
                pre = sequence
                sequence += 1
                parent_pre = stack[-1][1] if stack else None
                slot = 0
                if stack:
                    slot = stack[-1][2]
                    stack[-1] = (stack[-1][0], stack[-1][1], slot + 1)
                if path not in self._children_map:
                    self._register_path(path, parent_path)
                table = self.catalog.ensure_table(_table_name(path), elem_columns)
                row = table.append(pre=pre, post=pre, parent=parent_pre, pos=slot)
                patches_entry = (path, row, 0)
                for name, value in event.attributes:
                    attr_table = self.catalog.ensure_table(
                        _attr_table_name(path, name), attr_columns)
                    if name not in self._attr_map.setdefault(path, []):
                        self._attr_map[path].append(name)
                    attr_table.append(parent=pre, value=value)
                    if name == "id":
                        self._id_index[value] = (path, pre)
                stack.append((path, pre, 0))
            elif isinstance(event, EndElement):
                path, pre, _ = stack.pop()
                table = self.catalog.ensure_table(_table_name(path), elem_columns)
                # Patch post: the row for `pre` is the one whose pre == pre.
                pres = table.column("pre")
                # Rows are appended in pre order; find via bisect.
                row = bisect_left(pres, pre)
                table.column("post")[row] = sequence - 1
            else:
                path, parent_pre, slot = stack[-1]
                stack[-1] = (path, parent_pre, slot + 1)
                text_table = self.catalog.ensure_table(
                    _text_table_name(path), text_columns)
                self._text_paths.add(path)
                text_table.append(pre=sequence, parent=parent_pre, pos=slot,
                                  value=event.text)
                sequence += 1

        # Build parent indexes on every element and text table.
        for path in self._children_map:
            name = _table_name(path)
            self.catalog.create_hash_index(name, "parent")
            self.catalog.create_hash_index(name, "pre")
        for path in self._text_paths:
            self.catalog.create_hash_index(_text_table_name(path), "parent")
        for path, attr_names in self._attr_map.items():
            for attr in attr_names:
                self.catalog.create_hash_index(_attr_table_name(path, attr), "parent")
        self.catalog.analyze()
        # Resolve the text tables below every registered path now: the catalog
        # never changes after load, and precomputing keeps string_value() free
        # of shared mutable scratch, so concurrent readers are safe.
        below: dict[Path, list[str]] = {path: [] for path in self._children_map}
        for text_path in self._text_paths:
            name = _text_table_name(text_path)
            for depth in range(1, len(text_path) + 1):
                prefix = text_path[:depth]
                if prefix in below:
                    below[prefix].append(name)
        self._text_tables_below = {path: sorted(names) for path, names in below.items()}
        self.mark_loaded(text)

    def _register_path(self, path: Path, parent_path: Path) -> None:
        self._children_map[path] = []
        if parent_path in self._children_map and path[-1] not in self._children_map[parent_path]:
            self._children_map[parent_path].append(path[-1])
        self._paths_by_tag.setdefault(path[-1], []).append(path)
        if len(path) == 1:
            self._root_path = path

    def size_bytes(self) -> int:
        self.require_loaded()
        return self.catalog.estimated_bytes()

    @property
    def table_count(self) -> int:
        return self.catalog.table_count()

    # -- path metadata (counted catalog traffic) -------------------------------------

    def paths_extending(self, prefix: Path, tag: str) -> list[Path]:
        """All registered element paths that extend ``prefix`` and end in
        ``tag`` — a full catalog inspection, the B compile-time workload."""
        prefix_name = _table_name(prefix)
        matches = self.catalog.match_table_names(
            lambda name: name.startswith(prefix_name + "/")
            and name.endswith("/" + tag)
            and "#" not in name and "@" not in name
        )
        return [tuple(name.split("/")) for name in matches]

    def child_path_exists(self, prefix: Path, tag: str) -> bool:
        return self.catalog.has_table(_table_name(prefix + (tag,)))

    # -- navigation -----------------------------------------------------------------

    def root(self) -> Handle:
        self.require_loaded()
        return (self._root_path, 0)

    def tag(self, node: Handle) -> str:
        return node[0][-1]

    def _rows_for_parent(self, child_path: Path, parent_pre: int) -> list[int]:
        index = self.catalog.hash_index(_table_name(child_path), "parent")
        self.stats.index_lookups += 1
        return index.lookup(parent_pre) if index else []

    def children(self, node: Handle) -> list[Handle]:
        path, pre = node
        merged: list[tuple[int, Handle]] = []
        for tag in self._children_map.get(path, ()):
            child_path = path + (tag,)
            table = self.catalog.table(_table_name(child_path))
            rows = self._rows_for_parent(child_path, pre)
            self.stats.table_lookups += len(rows)
            pres = table.column("pre")
            poss = table.column("pos")
            merged.extend((poss[row], (child_path, pres[row])) for row in rows)
        merged.sort(key=lambda pair: pair[0])
        return [handle for _, handle in merged]

    def children_by_tag(self, node: Handle, tag: str) -> list[Handle]:
        path, pre = node
        child_path = path + (tag,)
        if not self.catalog.has_table(_table_name(child_path)):
            return []
        table = self.catalog.table(_table_name(child_path))
        rows = self._rows_for_parent(child_path, pre)
        self.stats.table_lookups += len(rows)
        pres = table.column("pre")
        return [(child_path, pres[row]) for row in sorted(rows)]

    def descendants_by_tag(self, node: Handle, tag: str) -> list[Handle]:
        path, pre = node
        post = self._post_of(node)
        found: list[Handle] = []
        for descendant_path in self.paths_extending(path, tag):
            table = self.catalog.table(_table_name(descendant_path))
            pres = table.column("pre")
            start = bisect_right(pres, pre)
            stop = bisect_right(pres, post)
            self.stats.table_lookups += stop - start
            found.extend((descendant_path, pres[row]) for row in range(start, stop))
        found.sort(key=lambda handle: handle[1])
        return found

    def _row_of(self, node: Handle) -> int:
        path, pre = node
        index = self.catalog.hash_index(_table_name(path), "pre")
        self.stats.index_lookups += 1
        row = index.unique(pre)
        if row is None:
            raise KeyError(f"no row for handle {node!r}")
        return row

    def _post_of(self, node: Handle) -> int:
        table = self.catalog.table(_table_name(node[0]))
        return table.get(self._row_of(node), "post")

    def parent(self, node: Handle) -> Handle | None:
        path, _ = node
        if len(path) <= 1:
            return None
        table = self.catalog.table(_table_name(path))
        parent_pre = table.get(self._row_of(node), "parent")
        self.stats.table_lookups += 1
        return (path[:-1], parent_pre)

    def attribute(self, node: Handle, name: str) -> str | None:
        path, pre = node
        if name not in self._attr_map.get(path, ()):
            return None
        table_name = _attr_table_name(path, name)
        index = self.catalog.hash_index(table_name, "parent")
        self.stats.index_lookups += 1
        rows = index.lookup(pre) if index else []
        if not rows:
            return None
        self.stats.table_lookups += 1
        return self.catalog.table(table_name).get(rows[0], "value")

    def attributes(self, node: Handle) -> dict[str, str]:
        path, _ = node
        result: dict[str, str] = {}
        for name in self._attr_map.get(path, ()):
            value = self.attribute(node, name)
            if value is not None:
                result[name] = value
        return result

    def child_texts(self, node: Handle) -> list[str]:
        path, pre = node
        if path not in self._text_paths:
            return []
        table_name = _text_table_name(path)
        index = self.catalog.hash_index(table_name, "parent")
        self.stats.index_lookups += 1
        rows = sorted(index.lookup(pre)) if index else []
        self.stats.table_lookups += len(rows)
        values = self.catalog.table(table_name).column("value")
        return [values[row] for row in rows]

    def string_value(self, node: Handle) -> str:
        path, pre = node
        post = self._post_of(node)
        collected: list[tuple[int, str]] = []
        # The text tables below a path never change after load; the mapping is
        # precomputed at load time (a real system would have this in its
        # compiled plan), so this read path mutates no shared state.
        text_tables = self._text_tables_below.get(path, ())
        for name in text_tables:
            table = self.catalog.table(name)
            pres = table.column("pre")
            values = table.column("value")
            start = bisect_left(pres, pre)
            stop = bisect_right(pres, post)
            self.stats.table_lookups += stop - start
            collected.extend((pres[row], values[row]) for row in range(start, stop))
        collected.sort(key=lambda pair: pair[0])
        return "".join(value for _, value in collected)

    def content(self, node: Handle) -> list:
        path, pre = node
        merged: list[tuple[int, object]] = [
            (self._pos_of(child), child) for child in self.children(node)
        ]
        if path in self._text_paths:
            table_name = _text_table_name(path)
            index = self.catalog.hash_index(table_name, "parent")
            self.stats.index_lookups += 1
            rows = index.lookup(pre) if index else []
            table = self.catalog.table(table_name)
            poss = table.column("pos")
            values = table.column("value")
            merged.extend((poss[row], values[row]) for row in rows)
        merged.sort(key=lambda pair: pair[0])
        return [part for _, part in merged]

    def _pos_of(self, node: Handle) -> int:
        table = self.catalog.table(_table_name(node[0]))
        return table.get(self._row_of(node), "pos")

    def doc_position(self, node: Handle) -> int:
        return node[1]

    # -- capabilities ------------------------------------------------------------------

    def lookup_id(self, value: str) -> Handle | None:
        self.stats.index_lookups += 1
        return self._id_index.get(value)

    def has_id_index(self) -> bool:
        return True

    def nodes_at_path(self, path: Path) -> list[Handle] | None:
        """A path extent is exactly one table scan in this mapping."""
        if not self.catalog.has_table(_table_name(path)):
            return []
        table = self.catalog.table(_table_name(path))
        pres = table.column("pre")
        self.stats.table_lookups += len(pres)
        return [(path, pre) for pre in pres]

    def known_tags(self) -> frozenset[str]:
        return frozenset(self._paths_by_tag)
