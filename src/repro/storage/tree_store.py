"""Main-memory tree stores: Systems F (pure traversal) and E (tag index).

Both build a flat array representation straight from the streaming parser —
nodes are dense pre-order integers, so handles are ints and document order
is the natural integer order.

* :class:`TreeStore` (System F) navigates by walking the tree; it spends
  extra space on materialised per-node child lists — a traversal-speed
  choice that makes it the *largest* database of the main-memory systems,
  matching Table 1 (F: 345 MB vs E: 302 MB vs D: 142 MB).
* :class:`IndexedTreeStore` (System E) adds an inverted tag index with
  pre/post containment filtering, accelerating descendant-axis queries
  without a full structural summary.
"""

from __future__ import annotations

import sys
from bisect import bisect_left, bisect_right

from repro.errors import StorageError
from repro.storage.interface import Store
from repro.xmlio.dom import Element, Text
from repro.xmlio.events import Characters, EndElement, StartElement
from repro.xmlio.parser import iterparse

#: Parent sentinel for nodes detached by remove_node (root keeps -1).
_DETACHED = -2


class TreeStore(Store):
    """Pure-traversal main-memory store (System F).

    Updates: new nodes are *appended* to the flat arrays (handles stay
    dense ints and existing handles never move), which deliberately breaks
    the load-time invariant that array position equals pre-order rank.
    While ``_sequential`` is False the pre/post interval tricks degrade to
    pointer traversal and document order comes from a lazily recomputed
    rank labeling (``_ensure_order``) — the classic update tax of a
    read-optimized clustered layout, paid explicitly instead of hidden.
    """

    architecture = "main memory, pure tree traversal, heuristic optimizer (System F)"

    #: System D derives children from content and overrides the hooks.
    _maintains_child_lists = True

    def __init__(self) -> None:
        super().__init__()
        self._tags: list[str] = []
        self._parents: list[int] = []
        self._posts: list[int] = []
        self._attrs: list[dict[str, str] | None] = []
        self._content: list[list] = []          # interleaved int child ids / str runs
        self._children: list[list[int]] = []    # materialised element children
        self._sequential = True                 # array position == pre-order rank
        self._order: list[int] | None = None    # lazy doc-order ranks (mutated only)
        self._stop: list[int] | None = None     # max rank within each subtree

    def load(self, text: str) -> None:
        self._tags.clear()
        self._parents.clear()
        self._posts.clear()
        self._attrs.clear()
        self._content.clear()
        self._children.clear()
        self._sequential = True
        self._order = None
        self._stop = None
        stack: list[int] = []
        for event in iterparse(text):
            if isinstance(event, StartElement):
                node = len(self._tags)
                self._tags.append(sys.intern(event.tag))
                self._parents.append(stack[-1] if stack else -1)
                self._posts.append(node)
                self._attrs.append(dict(event.attributes) if event.attributes else None)
                self._content.append([])
                self._children.append([])
                if stack:
                    self._content[stack[-1]].append(node)
                    self._children[stack[-1]].append(node)
                stack.append(node)
            elif isinstance(event, EndElement):
                node = stack.pop()
                self._posts[node] = len(self._tags) - 1
            else:
                self._append_text(stack[-1], event.text)
        self.mark_loaded(text)

    def _append_text(self, node: int, text: str) -> None:
        content = self._content[node]
        if content and isinstance(content[-1], str):
            content[-1] += text
        else:
            content.append(text)

    def size_bytes(self) -> int:
        self.require_loaded()
        total = sum(
            sys.getsizeof(lst)
            for lst in (self._tags, self._parents, self._posts, self._attrs,
                        self._content, self._children)
        )
        total += sum(8 for _ in self._parents) * 2   # parents + posts payloads
        for attrs in self._attrs:
            if attrs:
                total += sys.getsizeof(attrs)
                total += sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in attrs.items())
        for content in self._content:
            total += sys.getsizeof(content)
            total += sum(sys.getsizeof(part) for part in content if isinstance(part, str))
        for children in self._children:
            total += sys.getsizeof(children) + 8 * len(children)
        return total

    # -- navigation -----------------------------------------------------------

    def root(self) -> int:
        self.require_loaded()
        return 0

    def tag(self, node: int) -> str:
        return self._tags[node]

    def children(self, node: int) -> list[int]:
        self.stats.nodes_visited += 1
        return self._children[node]

    def children_by_tag(self, node: int, tag: str) -> list[int]:
        self.stats.nodes_visited += 1
        tags = self._tags
        return [child for child in self._children[node] if tags[child] == tag]

    def descendants_by_tag(self, node: int, tag: str) -> list[int]:
        if not self._sequential:
            return self._descendants_walk(node, tag)
        # Pre-order ids are contiguous within a subtree: scan [node+1, post].
        tags = self._tags
        found = []
        stop = self._posts[node]
        self.stats.nodes_visited += max(0, stop - node)
        for candidate in range(node + 1, stop + 1):
            if tags[candidate] == tag:
                found.append(candidate)
        return found

    def _descendants_walk(self, node: int, tag: str) -> list[int]:
        """Pointer traversal: id contiguity is gone after a mutation."""
        tags = self._tags
        found: list[int] = []
        stack = list(reversed(self._child_ids(node)))
        while stack:
            current = stack.pop()
            self.stats.nodes_visited += 1
            if tags[current] == tag:
                found.append(current)
            stack.extend(reversed(self._child_ids(current)))
        return found

    def parent(self, node: int) -> int | None:
        parent = self._parents[node]
        return None if parent < 0 else parent

    def attribute(self, node: int, name: str) -> str | None:
        attrs = self._attrs[node]
        return attrs.get(name) if attrs else None

    def attributes(self, node: int) -> dict[str, str]:
        attrs = self._attrs[node]
        return dict(attrs) if attrs else {}

    def child_texts(self, node: int) -> list[str]:
        self.stats.nodes_visited += 1
        return [part for part in self._content[node] if isinstance(part, str)]

    def string_value(self, node: int) -> str:
        parts: list[str] = []
        stack: list = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, str):
                parts.append(current)
            else:
                self.stats.nodes_visited += 1
                stack.extend(reversed(self._content[current]))
        return "".join(parts)

    def content(self, node: int) -> list:
        self.stats.nodes_visited += 1
        return list(self._content[node])

    def doc_position(self, node: int) -> int:
        if self._sequential:
            return node
        self._ensure_order()
        return self._order[node]

    def node_count(self) -> int:
        return len(self._tags)

    # -- mutation: array appends + lazy rank relabeling ----------------------------

    def _child_ids(self, node: int) -> list[int]:
        """Raw (uncounted) element-child ids, independent of child lists."""
        if self._maintains_child_lists:
            return self._children[node]
        return [part for part in self._content[node] if isinstance(part, int)]

    def _label_path(self, node: int) -> tuple[str, ...]:
        """Root-to-node tag sequence via the parent chain."""
        parts: list[str] = []
        current = node
        while current >= 0:
            parts.append(self._tags[current])
            current = self._parents[current]
        parts.reverse()
        return tuple(parts)

    def _note_mutation(self) -> None:
        self._sequential = False
        self._order = None
        self._stop = None

    def _ensure_order(self) -> None:
        """Recompute document-order ranks (and per-subtree max rank) from
        the pointer structure — one O(n) pass per mutation batch, amortised
        over every order-dependent read until the next write."""
        if self._order is not None:
            return
        size = len(self._tags)
        order = [0] * size
        stop = [0] * size
        rank = 0
        stack: list[tuple[int, bool]] = [(0, False)]
        while stack:
            node, done = stack.pop()
            if done:
                stop[node] = rank - 1
                continue
            order[node] = rank
            rank += 1
            stack.append((node, True))
            for child in reversed(self._child_ids(node)):
                stack.append((child, False))
        self._order = order
        self._stop = stop

    def _seal_content(self, parts: list):
        """New-node content representation (SummaryStore freezes tuples)."""
        return parts

    def _splice_content(self, parent: int, slot: int, node_id: int) -> None:
        self._content[parent].insert(slot, node_id)
        if self._maintains_child_lists:
            self._children[parent] = [
                part for part in self._content[parent] if isinstance(part, int)]

    def _unsplice_content(self, parent: int, node_id: int) -> None:
        self._content[parent].remove(node_id)
        if self._maintains_child_lists:
            self._children[parent] = [
                part for part in self._content[parent] if isinstance(part, int)]

    def _content_slot(self, parent: int, index: int | None) -> int:
        parts = self._content[parent]
        if index is None:
            return len(parts)
        seen = 0
        for slot, part in enumerate(parts):
            if isinstance(part, int):
                if seen == index:
                    return slot
                seen += 1
        return len(parts)

    def insert_child(self, parent: int, element: Element,
                     index: int | None = None) -> int:
        self.require_loaded()
        new_ids: list[int] = []

        def build(elem: Element, parent_id: int) -> int:
            node_id = len(self._tags)
            new_ids.append(node_id)
            self._tags.append(sys.intern(elem.tag))
            self._parents.append(parent_id)
            self._posts.append(node_id)     # stale by design: _sequential is off
            self._attrs.append(dict(elem.attributes) if elem.attributes else None)
            parts: list = []
            self._content.append(parts)     # placeholder; sealed below
            if self._maintains_child_lists:
                self._children.append([])
            for child in elem.children:
                if isinstance(child, Text):
                    if parts and isinstance(parts[-1], str):
                        parts[-1] += child.value
                    else:
                        parts.append(child.value)
                else:
                    child_id = build(child, node_id)
                    parts.append(child_id)
            if self._maintains_child_lists:
                self._children[node_id] = [p for p in parts if isinstance(p, int)]
            self._content[node_id] = self._seal_content(parts)
            return node_id

        slot = self._content_slot(parent, index)
        root_id = build(element, parent)
        self._splice_content(parent, slot, root_id)
        self._note_mutation()
        self._after_insert(new_ids)
        return root_id

    def remove_node(self, node: int) -> None:
        self.require_loaded()
        parent = self._parents[node]
        if parent < 0:
            raise StorageError("cannot remove the document root")
        removed: list[tuple[int, tuple[str, ...]]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            removed.append((current, self._label_path(current)))
            stack.extend(self._child_ids(current))
        self._unsplice_content(parent, node)
        self._parents[node] = _DETACHED
        self._note_mutation()
        self._after_remove(removed)

    def set_text(self, node: int, text: str) -> None:
        self.require_loaded()
        rebuilt: list = []
        placed = False
        for part in self._content[node]:
            if isinstance(part, str):
                if text and not placed:
                    rebuilt.append(text)
                    placed = True
            else:
                rebuilt.append(part)
        if text and not placed:
            rebuilt.append(text)
        self._content[node] = self._seal_content(rebuilt)

    def set_attribute(self, node: int, name: str, value: str) -> None:
        self.require_loaded()
        attrs = self._attrs[node]
        if attrs is None:
            attrs = {}
            self._attrs[node] = attrs
        attrs[name] = value
        self._after_set_attribute(node, name, value)

    # Subclass hooks for store-native access structures (E's tag index,
    # D's structural summary and ID index).

    def _after_insert(self, new_ids: list[int]) -> None:
        pass

    def _after_remove(self, removed: list[tuple[int, tuple[str, ...]]]) -> None:
        pass

    def _after_set_attribute(self, node: int, name: str, value: str) -> None:
        pass


class IndexedTreeStore(TreeStore):
    """Tag-indexed main-memory store (System E)."""

    architecture = "main memory, inverted tag index + pre/post containment (System E)"

    def __init__(self) -> None:
        super().__init__()
        self._tag_index: dict[str, list[int]] = {}

    def load(self, text: str) -> None:
        super().load(text)
        self._tag_index.clear()
        for node, tag in enumerate(self._tags):
            self._tag_index.setdefault(tag, []).append(node)

    def size_bytes(self) -> int:
        total = super().size_bytes()
        total += sys.getsizeof(self._tag_index)
        for nodes in self._tag_index.values():
            total += sys.getsizeof(nodes) + 8 * len(nodes)
        return total

    def descendants_by_tag(self, node: int, tag: str) -> list[int]:
        self.stats.index_lookups += 1
        extent = self._tag_index.get(tag)
        if not extent:
            return []
        if not self._sequential:
            # Containment degrades from a bisection to an extent scan over
            # the lazy rank labels until the store is reloaded (compacted).
            self._ensure_order()
            order = self._order
            low, high = order[node], self._stop[node]
            result = sorted(
                (n for n in extent if low < order[n] <= high),
                key=order.__getitem__)
            self.stats.nodes_visited += len(result)
            return result
        # Extent lists are in pre-order; a subtree is the id range (node, post].
        start = bisect_right(extent, node)
        stop = bisect_right(extent, self._posts[node])
        result = extent[start:stop]
        self.stats.nodes_visited += len(result)
        return result

    def known_tags(self) -> frozenset[str]:
        return frozenset(self._tag_index)

    def all_with_tag(self, tag: str) -> list[int]:
        """The whole extent of one tag (document-ordered)."""
        self.stats.index_lookups += 1
        extent = list(self._tag_index.get(tag, ()))
        if not self._sequential:
            self._ensure_order()
            extent.sort(key=self._order.__getitem__)
        return extent

    # -- mutation hooks: the inverted tag index takes per-node deltas ----------

    def _after_insert(self, new_ids: list[int]) -> None:
        for node in new_ids:
            self._tag_index.setdefault(self._tags[node], []).append(node)

    def _after_remove(self, removed: list[tuple[int, tuple[str, ...]]]) -> None:
        for node, _path in removed:
            extent = self._tag_index.get(self._tags[node])
            if extent is not None:
                try:
                    extent.remove(node)
                except ValueError:
                    pass
                if not extent:
                    del self._tag_index[self._tags[node]]
