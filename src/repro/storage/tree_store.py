"""Main-memory tree stores: Systems F (pure traversal) and E (tag index).

Both build a flat array representation straight from the streaming parser —
nodes are dense pre-order integers, so handles are ints and document order
is the natural integer order.

* :class:`TreeStore` (System F) navigates by walking the tree; it spends
  extra space on materialised per-node child lists — a traversal-speed
  choice that makes it the *largest* database of the main-memory systems,
  matching Table 1 (F: 345 MB vs E: 302 MB vs D: 142 MB).
* :class:`IndexedTreeStore` (System E) adds an inverted tag index with
  pre/post containment filtering, accelerating descendant-axis queries
  without a full structural summary.
"""

from __future__ import annotations

import sys
from bisect import bisect_left, bisect_right

from repro.storage.interface import Store
from repro.xmlio.events import Characters, EndElement, StartElement
from repro.xmlio.parser import iterparse


class TreeStore(Store):
    """Pure-traversal main-memory store (System F)."""

    architecture = "main memory, pure tree traversal, heuristic optimizer (System F)"

    def __init__(self) -> None:
        super().__init__()
        self._tags: list[str] = []
        self._parents: list[int] = []
        self._posts: list[int] = []
        self._attrs: list[dict[str, str] | None] = []
        self._content: list[list] = []          # interleaved int child ids / str runs
        self._children: list[list[int]] = []    # materialised element children

    def load(self, text: str) -> None:
        self._tags.clear()
        self._parents.clear()
        self._posts.clear()
        self._attrs.clear()
        self._content.clear()
        self._children.clear()
        stack: list[int] = []
        for event in iterparse(text):
            if isinstance(event, StartElement):
                node = len(self._tags)
                self._tags.append(sys.intern(event.tag))
                self._parents.append(stack[-1] if stack else -1)
                self._posts.append(node)
                self._attrs.append(dict(event.attributes) if event.attributes else None)
                self._content.append([])
                self._children.append([])
                if stack:
                    self._content[stack[-1]].append(node)
                    self._children[stack[-1]].append(node)
                stack.append(node)
            elif isinstance(event, EndElement):
                node = stack.pop()
                self._posts[node] = len(self._tags) - 1
            else:
                self._append_text(stack[-1], event.text)
        self.mark_loaded(text)

    def _append_text(self, node: int, text: str) -> None:
        content = self._content[node]
        if content and isinstance(content[-1], str):
            content[-1] += text
        else:
            content.append(text)

    def size_bytes(self) -> int:
        self.require_loaded()
        total = sum(
            sys.getsizeof(lst)
            for lst in (self._tags, self._parents, self._posts, self._attrs,
                        self._content, self._children)
        )
        total += sum(8 for _ in self._parents) * 2   # parents + posts payloads
        for attrs in self._attrs:
            if attrs:
                total += sys.getsizeof(attrs)
                total += sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in attrs.items())
        for content in self._content:
            total += sys.getsizeof(content)
            total += sum(sys.getsizeof(part) for part in content if isinstance(part, str))
        for children in self._children:
            total += sys.getsizeof(children) + 8 * len(children)
        return total

    # -- navigation -----------------------------------------------------------

    def root(self) -> int:
        self.require_loaded()
        return 0

    def tag(self, node: int) -> str:
        return self._tags[node]

    def children(self, node: int) -> list[int]:
        self.stats.nodes_visited += 1
        return self._children[node]

    def children_by_tag(self, node: int, tag: str) -> list[int]:
        self.stats.nodes_visited += 1
        tags = self._tags
        return [child for child in self._children[node] if tags[child] == tag]

    def descendants_by_tag(self, node: int, tag: str) -> list[int]:
        # Pre-order ids are contiguous within a subtree: scan [node+1, post].
        tags = self._tags
        found = []
        stop = self._posts[node]
        self.stats.nodes_visited += max(0, stop - node)
        for candidate in range(node + 1, stop + 1):
            if tags[candidate] == tag:
                found.append(candidate)
        return found

    def parent(self, node: int) -> int | None:
        parent = self._parents[node]
        return None if parent < 0 else parent

    def attribute(self, node: int, name: str) -> str | None:
        attrs = self._attrs[node]
        return attrs.get(name) if attrs else None

    def attributes(self, node: int) -> dict[str, str]:
        attrs = self._attrs[node]
        return dict(attrs) if attrs else {}

    def child_texts(self, node: int) -> list[str]:
        self.stats.nodes_visited += 1
        return [part for part in self._content[node] if isinstance(part, str)]

    def string_value(self, node: int) -> str:
        parts: list[str] = []
        stack: list = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, str):
                parts.append(current)
            else:
                self.stats.nodes_visited += 1
                stack.extend(reversed(self._content[current]))
        return "".join(parts)

    def content(self, node: int) -> list:
        self.stats.nodes_visited += 1
        return list(self._content[node])

    def doc_position(self, node: int) -> int:
        return node

    def node_count(self) -> int:
        return len(self._tags)


class IndexedTreeStore(TreeStore):
    """Tag-indexed main-memory store (System E)."""

    architecture = "main memory, inverted tag index + pre/post containment (System E)"

    def __init__(self) -> None:
        super().__init__()
        self._tag_index: dict[str, list[int]] = {}

    def load(self, text: str) -> None:
        super().load(text)
        self._tag_index.clear()
        for node, tag in enumerate(self._tags):
            self._tag_index.setdefault(tag, []).append(node)

    def size_bytes(self) -> int:
        total = super().size_bytes()
        total += sys.getsizeof(self._tag_index)
        for nodes in self._tag_index.values():
            total += sys.getsizeof(nodes) + 8 * len(nodes)
        return total

    def descendants_by_tag(self, node: int, tag: str) -> list[int]:
        self.stats.index_lookups += 1
        extent = self._tag_index.get(tag)
        if not extent:
            return []
        # Extent lists are in pre-order; a subtree is the id range (node, post].
        start = bisect_right(extent, node)
        stop = bisect_right(extent, self._posts[node])
        result = extent[start:stop]
        self.stats.nodes_visited += len(result)
        return result

    def known_tags(self) -> frozenset[str]:
        return frozenset(self._tag_index)

    def all_with_tag(self, tag: str) -> list[int]:
        """The whole extent of one tag (document-ordered)."""
        self.stats.index_lookups += 1
        return list(self._tag_index.get(tag, ()))
