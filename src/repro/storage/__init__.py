"""XML storage engines — the paper's Systems A through G.

Each store implements the same :class:`~repro.storage.interface.Store` API
with a different physical mapping, reproducing the architecture spectrum the
paper evaluates (Section 7):

======  ==============================  ==========================================
System  Class                           Physical mapping
======  ==============================  ==========================================
A       :class:`HeapStore`              relational, "one big heap": a single
                                        generic node/edge relation
B       :class:`FragmentStore`          relational, "highly fragmenting": one
                                        table per distinct root-to-node path
C       :class:`SchemaStore`            relational, DTD-derived inlined schema
                                        (needs the DTD, like the paper's C)
D       :class:`SummaryStore`           main memory + structural summary
                                        (DataGuide with path-indexed extents)
E       :class:`IndexedTreeStore`       main memory, inverted tag index with
                                        pre/post containment filtering
F       :class:`TreeStore`              main memory, pure tree traversal
G       :class:`DomStore`               embedded naive DOM interpreter
======  ==============================  ==========================================

All stores are loaded through :func:`repro.storage.bulkload.bulkload`, which
times parse + conversion as one completed transaction, exactly like Table 1.
"""

from repro.storage.interface import Store, StoreStats
from repro.storage.dom_store import DomStore
from repro.storage.tree_store import IndexedTreeStore, TreeStore
from repro.storage.summary_store import SummaryStore
from repro.storage.heap_store import HeapStore
from repro.storage.fragment_store import FragmentStore
from repro.storage.schema_store import SchemaStore
from repro.storage.bulkload import BulkloadReport, bulkload
from repro.storage.structural_summary import StructuralSummary

__all__ = [
    "Store", "StoreStats",
    "DomStore", "TreeStore", "IndexedTreeStore", "SummaryStore",
    "HeapStore", "FragmentStore", "SchemaStore",
    "bulkload", "BulkloadReport",
    "StructuralSummary",
]
