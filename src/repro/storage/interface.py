"""The abstract store interface shared by all seven systems.

The query evaluator navigates documents exclusively through this API, so the
*same* plan executed on two stores differs only in what the store's physical
mapping makes cheap or expensive — which is precisely the comparison the
benchmark is designed to expose.

Handles are opaque: each store chooses its own node-handle representation
(DOM objects, dense ints, composite tuples).  The only contract is that
handles are hashable and that :meth:`Store.doc_position` returns keys that
sort in document order *within one store*.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.errors import StorageError
from repro.xmlio.dom import Element

Handle = Any


def document_digest(text: str) -> str:
    """Content digest of a document (cache keys, invalidation)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def chain_digest(previous: str | None, op_token: str) -> str:
    """One link of the digest hash chain over applied operation tokens.

    Factored out of :meth:`Store.advance_digest` so the write-ahead log
    can compute the post-commit digest of an operation *before* applying
    it — the WAL record must carry the digest the store will have, and
    recovery verifies the replayed chain against exactly these values.
    """
    return hashlib.sha256(
        f"{previous or ''}|{op_token}".encode("utf-8")).hexdigest()[:16]


@dataclass(slots=True)
class StoreStats:
    """Work counters; read by tests and the benchmark report."""

    nodes_visited: int = 0
    index_lookups: int = 0
    table_lookups: int = 0
    fragments_parsed: int = 0

    def reset(self) -> None:
        self.nodes_visited = 0
        self.index_lookups = 0
        self.table_lookups = 0
        self.fragments_parsed = 0


class Store(ABC):
    """Abstract XML store."""

    #: Human-readable architecture description (shown in reports).
    architecture: str = "abstract"

    def __init__(self) -> None:
        self.stats = StoreStats()
        self.indexes = None             # IndexSet, built at mark_loaded
        self._loaded = False
        self._document_digest: str | None = None
        #: How the secondary indexes are kept current under document
        #: mutations: "incremental" applies per-node deltas, "rebuild"
        #: reconstructs the whole IndexSet after every update (the ablation
        #: baseline priced by benchmarks/bench_update_maintenance.py).
        self.index_maintenance: str = "incremental"

    # -- lifecycle ---------------------------------------------------------------

    @abstractmethod
    def load(self, text: str) -> None:
        """Bulkload a document (parse + convert, one completed transaction)."""

    def index_spec(self):
        """The secondary-index declarations built at load, or None for none.

        The default is the benchmark's auction spec
        (:data:`repro.index.spec.DEFAULT_AUCTION_SPEC`); on non-auction
        documents its fields simply index empty extents, and the generic
        path index still covers every walked label path.

        The build is deliberately uniform across all seven systems even
        though the scan-only profiles (F, G) never probe: *use* is the
        optimizer profile's choice, exactly as System D's store carries an
        ID index that an ablation profile may ignore — and the
        indexed-vs-scan ablation plus the probe==scan property tests need
        both access paths available on one and the same loaded store.
        Subclasses wanting a different trade-off override this.
        """
        from repro.index.spec import DEFAULT_AUCTION_SPEC
        return DEFAULT_AUCTION_SPEC

    def drop_indexes(self) -> None:
        """Invalidate the secondary indexes (document superseded).

        Compiled plans carrying index-backed access paths degrade to their
        scan equivalents when the indexes are gone — the evaluator checks
        before every probe — so dropping is always safe, never wrong.
        """
        self.indexes = None

    def mark_loaded(self, text: str) -> None:
        """Record a completed load: flips the loaded flag, remembers the
        document's content digest (the invalidation key for result caches),
        and builds the secondary indexes — index construction is part of
        the completed transaction, exactly like Table 1's "conversion
        effort".  Work counters accumulated while loading and indexing are
        reset so post-load stats start from zero."""
        self._document_digest = document_digest(text)
        self._loaded = True
        self.indexes = None
        spec = self.index_spec()
        if spec is not None:
            from repro.index.builder import build_index_set
            self.indexes = build_index_set(self, spec)
        self.stats.reset()

    def document_digest(self) -> str | None:
        """Digest of the currently loaded document, or None before load."""
        return self._document_digest

    def advance_digest(self, op_token: str) -> str:
        """Chain the document digest over one applied update.

        Re-serializing the whole store per write would make the digest an
        O(document) cost; instead the digest evolves as a hash chain over
        the canonical operation tokens.  Two stores holding the same
        document lineage (same load, same update sequence) therefore agree
        on the digest without ever comparing texts, which is exactly what
        the result cache keys need.
        """
        self._document_digest = chain_digest(self._document_digest, op_token)
        return self._document_digest

    def restore_digest(self, digest: str | None) -> None:
        """Adopt a recovered digest-chain value.

        After crash recovery the store holds the recovered *content* (it
        was bulkloaded from the recovered serialization), but its digest
        is the content digest of that text, not the operation hash chain
        the pre-crash lineage carried.  Recovery restores the chain value
        here so caches, result keys, and digest-equality proofs line up
        with the never-crashed oracle.
        """
        self._document_digest = digest

    def require_loaded(self) -> None:
        if not self._loaded:
            raise StorageError(f"{type(self).__name__} has no document loaded")

    @abstractmethod
    def size_bytes(self) -> int:
        """Estimated resident size of the database after load (Table 1)."""

    # -- navigation ---------------------------------------------------------------

    @abstractmethod
    def root(self) -> Handle:
        """The document's root element."""

    @abstractmethod
    def tag(self, node: Handle) -> str:
        """The element name of ``node``."""

    @abstractmethod
    def children(self, node: Handle) -> list[Handle]:
        """Child *elements* in document order."""

    def children_by_tag(self, node: Handle, tag: str) -> list[Handle]:
        """Child elements with the given tag (default: filter children)."""
        return [child for child in self.children(node) if self.tag(child) == tag]

    @abstractmethod
    def descendants_by_tag(self, node: Handle, tag: str) -> list[Handle]:
        """Descendant elements with the given tag, in document order."""

    def descendants(self, node: Handle) -> Iterator[Handle]:
        """All descendant elements in document order (generic walk)."""
        stack = list(reversed(self.children(node)))
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self.children(current)))

    @abstractmethod
    def parent(self, node: Handle) -> Handle | None:
        """Parent element, or None at the root."""

    @abstractmethod
    def attribute(self, node: Handle, name: str) -> str | None:
        """Attribute value or None."""

    @abstractmethod
    def attributes(self, node: Handle) -> dict[str, str]:
        """All attributes."""

    @abstractmethod
    def child_texts(self, node: Handle) -> list[str]:
        """Values of the direct text-node children (contiguous runs merged)."""

    @abstractmethod
    def string_value(self, node: Handle) -> str:
        """Concatenated text of the whole subtree (XPath string value)."""

    @abstractmethod
    def content(self, node: Handle) -> list[Handle | str]:
        """Interleaved child elements and text runs (for reconstruction)."""

    @abstractmethod
    def doc_position(self, node: Handle):
        """A sortable document-order key (valid within this store only)."""

    # -- optional capabilities ------------------------------------------------------

    def lookup_id(self, value: str) -> Handle | None:
        """ID-indexed lookup, or None when the store has no ID index."""
        return None

    def has_id_index(self) -> bool:
        return False

    def count_path(self, path: tuple[str, ...]) -> int | None:
        """Cardinality of an absolute child path via a structural summary."""
        return None

    def nodes_at_path(self, path: tuple[str, ...]) -> list[Handle] | None:
        """All nodes at an absolute child path via a path index."""
        return None

    def known_tags(self) -> frozenset[str] | None:
        """The set of element names in the database (for path validation —
        the paper's Section 7 wish: warn on path expressions containing
        non-existing tags)."""
        return None

    def order_key(self, node: Handle):
        """A document-order key that is cheap even mid-write.

        ``doc_position`` may lazily relabel the whole store after a
        mutation (an O(document) pass); index maintenance instead bisects
        extents on this key, which the default computes locally from the
        sibling chain.  Stores whose ``doc_position`` is cheap without
        relabeling override this to return it directly.
        """
        return sibling_order_key(self, node)

    # -- mutation ----------------------------------------------------------------------
    #
    # The physical write surface.  Each architecture implements these with
    # its own strategy (DOM pointer splice, array append + lazy relabeling,
    # tuple insert/delete with index touches, schema-directed shredding);
    # see docs/UPDATES.md.  They mutate ONLY the physical mapping: callers
    # are responsible for the logical bookkeeping (secondary-index deltas,
    # digest chaining, cache invalidation) — `repro.update.engine` is the
    # supported write path that does all three, exactly like `bulkload` is
    # the supported load path over `load()`.

    def insert_child(self, parent: Handle, element: Element, index: int | None = None) -> Handle:
        """Splice a detached DOM subtree in as a child element of ``parent``.

        ``index`` positions the new node among the *element* children of
        ``parent`` (None appends after every existing child).  Returns the
        handle of the inserted subtree's root.  The store takes its own
        copy/representation of ``element``; the argument is not captured.
        """
        raise StorageError(f"{type(self).__name__} does not support insert_child")

    def remove_node(self, node: Handle) -> None:
        """Detach the subtree rooted at ``node`` from the document.

        Handles into the removed subtree become invalid; removing the
        document root is an error.
        """
        raise StorageError(f"{type(self).__name__} does not support remove_node")

    def set_text(self, node: Handle, text: str) -> None:
        """Replace the direct text runs of ``node`` with the single run
        ``text`` (an empty string leaves the node without text)."""
        raise StorageError(f"{type(self).__name__} does not support set_text")

    def set_attribute(self, node: Handle, name: str, value: str) -> None:
        """Set (create or overwrite) one attribute of ``node``."""
        raise StorageError(f"{type(self).__name__} does not support set_attribute")

    # -- reconstruction ----------------------------------------------------------------

    def build_dom(self, node: Handle) -> Element:
        """Copy the subtree rooted at ``node`` into a result DOM.

        The default implementation reassembles the subtree through the
        navigation API, so its cost reflects the store's own navigation
        cost — reconstruction-heavy queries (Q10, Q13) are expensive exactly
        where the paper says they are.
        """
        element = Element(self.tag(node), dict(self.attributes(node)))
        for part in self.content(node):
            if isinstance(part, str):
                element.append_text(part)
            else:
                element.append(self.build_dom(part))
        return element


def sibling_order_key(store: Store, node: Handle) -> tuple[int, ...]:
    """A document-order key computed locally, without global relabeling.

    The tuple of sibling positions along the root-to-node chain sorts in
    document order for any two nodes of one store.  Cost is
    O(depth x fanout) per call — the point: index maintenance can bisect a
    path extent with O(log n) such keys instead of forcing the store's
    O(document) rank relabel inside the write path.
    """
    key: list[int] = []
    current = node
    while True:
        parent = store.parent(current)
        if parent is None:
            break
        key.append(store.children(parent).index(current))
        current = parent
    key.reverse()
    return tuple(key)


def rank_by_walk(store: Store) -> dict:
    """Document-order ranks recomputed from the pointer structure.

    Shared by the relational stores, whose dense pre numbering stops
    encoding document order once tuples have been inserted: one O(n)
    navigation walk per mutation batch, cached by the store until the
    next write.
    """
    order: dict = {}
    rank = 0
    stack = [store.root()]
    while stack:
        node = stack.pop()
        order[node] = rank
        rank += 1
        stack.extend(reversed(store.children(node)))
    return order


def store_document_text(store: Store) -> str:
    """Serialize the store's current document back to XML text.

    Reconstructs through the navigation API, so it reflects the document as
    the store would answer queries over it — the oracle the differential
    update tests load into a fresh store.
    """
    from repro.xmlio.serialize import serialize
    store.require_loaded()
    return serialize(store.build_dom(store.root()))
