"""Append-only WAL streams: durable appends, group commit, torn-tail scans.

A :class:`WriteAheadLog` owns one stream file.  ``append()`` writes one
encoded record and makes it durable according to the sync policy:

* ``"commit"`` (the default) — flush + fsync on every append: a commit
  that returned is on stable storage.
* ``"batch"`` — group commit: appends accumulate and one fsync covers
  the group, forced every ``group_size`` records, on :meth:`sync`, and
  on :meth:`close`.  The classic latency/durability trade: a crash can
  lose the unsynced suffix of the group, but never tear the log into an
  unreadable state (the tail scanner drops a half-record either way).
* ``"none"`` — no explicit fsync (tests, benchmarks measuring the
  append path without device latency).

Reading is one function: :func:`scan_wal` returns every intact record
plus a :class:`WalScan` describing how the file ends.  Recovery treats a
non-clean tail as a crash artifact — :meth:`WriteAheadLog.repair`
truncates the file back to its valid prefix before the stream accepts
new appends, so a recovered database never writes after garbage.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DurabilityError
from repro.obs.trace import NULL_TRACER
from repro.storage.wal.records import TAIL_CLEAN, WalRecord, iter_records

#: Valid sync policies, strictest first.
SYNC_MODES = ("commit", "batch", "none")


@dataclass(slots=True)
class WalScan:
    """What one pass over a WAL stream found."""

    path: str
    records: list[WalRecord] = field(default_factory=list)
    #: TAIL_* constant: how the byte stream ended.
    tail: str = TAIL_CLEAN
    #: File offset up to which the stream is intact (== file size iff clean).
    valid_bytes: int = 0
    #: Bytes dropped after the valid prefix (0 iff clean).
    torn_bytes: int = 0

    @property
    def clean(self) -> bool:
        return self.tail == TAIL_CLEAN

    def last_lsn(self) -> int | None:
        return self.records[-1].lsn if self.records else None


def scan_wal(path: str | Path) -> WalScan:
    """Read every intact record of one stream; never raises on torn tails."""
    data = Path(path).read_bytes()
    scan = WalScan(path=str(path))
    for offset, item in iter_records(data):
        if isinstance(item, WalRecord):
            scan.records.append(item)
        else:
            scan.tail = item
            scan.valid_bytes = offset
            scan.torn_bytes = len(data) - offset
    return scan


class WriteAheadLog:
    """One append-only, CRC-guarded record stream."""

    def __init__(self, path: str | Path, *, sync: str = "commit",
                 group_size: int = 8, tracer=NULL_TRACER,
                 registry=None, stream: int = 0) -> None:
        if sync not in SYNC_MODES:
            raise DurabilityError(
                f"unknown WAL sync mode {sync!r}; choose from {SYNC_MODES}")
        if group_size < 1:
            raise DurabilityError(f"group_size must be >= 1, got {group_size}")
        self.path = Path(path)
        self.sync_mode = sync
        self.group_size = group_size
        self.stream = stream
        self._tracer = tracer
        self._registry = registry
        self._pending = 0               # appends not yet covered by an fsync
        self._file = None
        self.appended_records = 0
        self.appended_bytes = 0
        self.fsyncs = 0

    # -- the append path ---------------------------------------------------------

    def _handle(self):
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "ab")
        return self._file

    def append(self, record: WalRecord) -> int:
        """Append one record; returns its starting offset.

        Durability on return is the sync policy's promise: everything up
        to and including this record under ``"commit"``, possibly less
        under ``"batch"``/``"none"``.
        """
        encoded = record.encode()
        handle = self._handle()
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span("wal.append", stream=self.stream,
                             lsn=record.lsn, kind=record.kind,
                             bytes=len(encoded)):
                offset = handle.tell()
                handle.write(encoded)
        else:
            offset = handle.tell()
            handle.write(encoded)
        self._pending += 1
        self.appended_records += 1
        self.appended_bytes += len(encoded)
        if self._registry is not None:
            self._registry.counter("wal.records_total",
                                   stream=str(self.stream)).inc()
            self._registry.counter("wal.bytes_total",
                                   stream=str(self.stream)).inc(len(encoded))
        if self.sync_mode == "commit" or (
                self.sync_mode == "batch" and self._pending >= self.group_size):
            self.sync()
        return offset

    def sync(self) -> None:
        """Force the pending appends to stable storage (one group commit)."""
        if self._file is None or self._pending == 0:
            return
        covered = self._pending
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span("wal.fsync", stream=self.stream,
                             records=covered):
                self._fsync()
        else:
            self._fsync()
        self._pending = 0
        self.fsyncs += 1
        if self._registry is not None:
            self._registry.counter("wal.fsyncs_total",
                                   stream=str(self.stream)).inc()
            self._registry.histogram("wal.group_commit_records").observe(
                float(covered))

    def _fsync(self) -> None:
        self._file.flush()
        if self.sync_mode != "none":
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery-side maintenance ------------------------------------------------

    def repair(self) -> WalScan:
        """Drop a torn tail so the stream is clean for new appends.

        Returns the scan (with the pre-repair tail classification);
        truncation happens only when the scan found damage, and the
        truncated file is fsynced before returning.
        """
        if self._file is not None:
            raise DurabilityError("repair an unopened stream, not a live one")
        if not self.path.exists():
            return WalScan(path=str(self.path))
        scan = scan_wal(self.path)
        if not scan.clean:
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return scan

    def rewrite(self, records: list[WalRecord]) -> None:
        """Atomically replace the stream's contents (checkpoint compaction).

        The surviving records are written to a sibling temp file, fsynced,
        and renamed over the stream — a crash anywhere leaves either the
        old complete stream or the new complete stream, both consistent.
        """
        if self._file is not None:
            raise DurabilityError("rewrite an unopened stream, not a live one")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_suffix(".compact")
        with open(temp, "wb") as handle:
            for record in records:
                handle.write(record.encode())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
