"""Checkpoint snapshots: a store's state as one durable, checksummed file.

Two snapshot kinds cover every deployment:

* ``"document"`` — the store's serialization (via the navigation API, so
  byte-identical across all seven architectures — the conformance suite's
  proven property).  One snapshot therefore restores *any* requested
  system: recovery bulkloads the text into fresh stores.
* ``"sharded"`` — a :class:`~repro.shard.store.ShardedStore` checkpoint:
  the per-shard fragment serializations plus the global-order seeds and
  the id routing map.  Recovery reloads the fragments shard-parallel and
  reassembles the exact pre-crash partition without re-partitioning.

Either kind records the ``lsn`` of the last commit it covers and the
digest-chain value at that point; WAL replay starts after that LSN and
chains from that digest.

Durability protocol: the JSON document is written to a sibling temp
file, fsynced, and atomically renamed into place — a crash mid-checkpoint
leaves either the previous snapshot or the new one, never a torn file.
A CRC over the embedded document text(s) guards the content against
storage-level garbling; :func:`read_snapshot` refuses a snapshot whose
checksum disagrees (:class:`~repro.errors.RecoveryError`).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.errors import RecoveryError

SNAPSHOT_FORMAT = 1

KIND_DOCUMENT = "document"
KIND_SHARDED = "sharded"


def _content_crc(snapshot: dict) -> int:
    """CRC over the text payloads (the parts JSON decoding cannot verify)."""
    crc = 0
    if snapshot["kind"] == KIND_DOCUMENT:
        crc = zlib.crc32(snapshot["document"].encode("utf-8"))
    else:
        for fragment in snapshot["fragments"]:
            crc = zlib.crc32(fragment.encode("utf-8"), crc)
    return crc


def document_snapshot(lsn: int, digest: str, document: str) -> dict:
    """A ``"document"``-kind snapshot payload."""
    return {"format": SNAPSHOT_FORMAT, "kind": KIND_DOCUMENT,
            "lsn": lsn, "digest": digest, "document": document}


def sharded_snapshot(lsn: int, digest: str, *, backends: list[str],
                     fragments: list[str],
                     extent_seqs: dict[str, list[list[int]]],
                     id_map: dict[str, list]) -> dict:
    """A ``"sharded"``-kind snapshot payload.

    ``extent_seqs`` maps ``"/".join(extent path)`` to the per-shard
    ascending global-sequence lists; ``id_map`` maps entity id to
    ``[shard, "/".join(extent path)]`` — exactly the state
    :meth:`repro.shard.store.ShardedStore.partition_state` exports.
    """
    return {"format": SNAPSHOT_FORMAT, "kind": KIND_SHARDED,
            "lsn": lsn, "digest": digest,
            "shard_count": len(fragments), "backends": list(backends),
            "fragments": list(fragments), "extent_seqs": extent_seqs,
            "id_map": id_map}


def write_snapshot(path: str | Path, snapshot: dict) -> None:
    """Durably write one snapshot payload (temp + fsync + atomic rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = dict(snapshot, crc=_content_crc(snapshot))
    temp = path.with_suffix(path.suffix + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, separators=(",", ":"), ensure_ascii=False)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def read_snapshot(path: str | Path) -> dict:
    """Load and verify one snapshot; raises
    :class:`~repro.errors.RecoveryError` on any inconsistency."""
    path = Path(path)
    try:
        snapshot = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise RecoveryError(f"snapshot {path} is missing") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise RecoveryError(f"snapshot {path} is not readable: {exc}") from exc
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise RecoveryError(
            f"snapshot {path} has unsupported format "
            f"{snapshot.get('format')!r}")
    if snapshot.get("kind") not in (KIND_DOCUMENT, KIND_SHARDED):
        raise RecoveryError(
            f"snapshot {path} has unknown kind {snapshot.get('kind')!r}")
    if snapshot.get("crc") != _content_crc(snapshot):
        raise RecoveryError(f"snapshot {path} fails its content checksum")
    return snapshot
