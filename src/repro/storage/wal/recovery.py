"""Crash recovery: snapshot load + WAL-suffix replay + digest verification.

:func:`recover` rebuilds the durable directory's document lineage:

1. **Root** — read the manifest (atomically replaced, so always whole)
   and the snapshot it points at (checksummed; a snapshot that fails its
   CRC is refused).
2. **Scan** — read every WAL stream, dropping torn tails.  The surviving
   records of all streams merge by LSN into one totally-ordered logical
   log; the merged history is cut at the first missing LSN, because a
   commit that is not durable invalidates everything logged after it
   (with serial writers that only happens when a *middle* of a stream
   was damaged — a tail torn by a crash is always the globally last
   commit).
3. **Load** — a ``"document"`` snapshot bulkloads into a scratch store
   of the requested backend; a ``"sharded"`` snapshot reassembles the
   exact pre-crash :class:`~repro.shard.store.ShardedStore` from its
   fragments, shard-parallel.
4. **Replay** — each record's operations run through the real update
   engine (the same code path that applied them originally), advancing
   the digest chain exactly as the original commit did: per op token for
   ``"op"`` records, once per batch token for ``"txn"`` records.  Before
   each record the store's digest must equal the record's ``prev``
   digest, and after a successful apply it must equal the record's
   ``digest`` — any mismatch is a :class:`~repro.errors.RecoveryError`,
   never a silently different database.  A record whose apply fails
   deterministically (the op was logged but refused in memory too —
   e.g. a duplicate person id) is skipped, which replays the original
   no-op faithfully.

The result carries the recovered serialization (loadable into any of
the seven architectures), the recovered digest-chain value, and — for
sharded deployments — the live reassembled store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.obs.trace import NULL_TRACER
from repro.storage.wal.manager import DurabilityManager
from repro.storage.wal.records import KIND_TXN, WalRecord
from repro.storage.wal.snapshot import KIND_SHARDED

#: Default scratch backend for replay: System F, the cheapest loader.
DEFAULT_REPLAY_BACKEND = "F"


@dataclass(slots=True)
class RecoveryReport:
    """What recovery found, dropped, replayed, and rebuilt."""

    directory: str
    document: str                       # recovered serialization
    digest: str | None                  # recovered digest-chain value
    snapshot_lsn: int
    snapshot_digest: str
    last_lsn: int                       # last commit in the recovered state
    replayed: int = 0                   # records applied
    skipped: int = 0                    # records whose apply no-opped again
    #: stream index -> tail classification, for streams that did not end
    #: cleanly (see records.TAIL_*).
    torn_tails: dict[int, str] = field(default_factory=dict)
    #: records dropped because an earlier LSN was missing (mid-log damage).
    dropped_after_gap: int = 0
    load_seconds: float = 0.0
    replay_seconds: float = 0.0
    #: the reassembled sharded store (sharded snapshots only).
    sharded_store: object = None

    def summary(self) -> dict:
        """JSON-ready view (CLI, benchmarks)."""
        return {
            "directory": self.directory,
            "digest": self.digest,
            "snapshot_lsn": self.snapshot_lsn,
            "last_lsn": self.last_lsn,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "torn_tails": {str(k): v for k, v in self.torn_tails.items()},
            "dropped_after_gap": self.dropped_after_gap,
            "load_seconds": round(self.load_seconds, 6),
            "replay_seconds": round(self.replay_seconds, 6),
            "sharded": self.sharded_store is not None,
        }


def _merge_streams(scans, snapshot_lsn: int):
    """Merge per-stream records into one contiguous LSN-ordered history."""
    merged: dict[int, WalRecord] = {}
    for scan in scans:
        for record in scan.records:
            if record.lsn <= snapshot_lsn:
                continue
            if record.lsn in merged:
                raise RecoveryError(
                    f"duplicate LSN {record.lsn} across WAL streams")
            merged[record.lsn] = record
    ordered: list[WalRecord] = []
    expected = snapshot_lsn + 1
    while expected in merged:
        ordered.append(merged.pop(expected))
        expected += 1
    return ordered, len(merged)         # records beyond the first gap


def _load_snapshot_store(snapshot: dict, manifest: dict, backend: str,
                         parallel: bool):
    """A loaded store holding the snapshot state, digest restored."""
    from repro.benchmark.systems import make_store
    if snapshot["kind"] == KIND_SHARDED:
        from repro.shard.partition import restore_partition
        from repro.shard.store import ShardedStore
        backends = tuple(snapshot.get("backends")
                         or manifest.get("shard_backends") or ("F",))
        partition = restore_partition(
            snapshot["fragments"], snapshot["extent_seqs"],
            snapshot["id_map"])
        store = ShardedStore(partition.shard_count, backends)
        store.load_partition(partition, parallel=parallel)
    else:
        store = make_store(backend)
        store.load(snapshot["document"])
    store.restore_digest(snapshot["digest"])
    return store


def _replay_record(store, record: WalRecord, report: RecoveryReport) -> None:
    from repro.errors import TransactionError, XMarkError
    from repro.update.engine import apply_transaction_ops, apply_update
    from repro.update.ops import transaction_token
    if store.document_digest() != record.prev_digest:
        raise RecoveryError(
            f"digest chain broken before LSN {record.lsn}: store at "
            f"{store.document_digest()!r}, record expects "
            f"{record.prev_digest!r}")
    if record.kind == KIND_TXN:
        try:
            apply_transaction_ops({"recover": store}, list(record.ops))
        except TransactionError:
            # The original commit failed at the same deterministic point;
            # the engine re-chained the digest over the applied prefix,
            # exactly as the live database did.  The next record's prev
            # digest re-anchors verification.
            report.skipped += 1
            return
        store.advance_digest(transaction_token(record.ops))
    else:
        try:
            apply_update(store, record.ops[0])
        except XMarkError:
            # Logged, then refused in memory (duplicate id, missing
            # target): the live database kept state and digest unchanged.
            report.skipped += 1
            return
    if store.document_digest() != record.digest:
        raise RecoveryError(
            f"digest chain broken after LSN {record.lsn}: store at "
            f"{store.document_digest()!r}, record claims {record.digest!r}")
    report.replayed += 1


def recover(directory, *, backend: str = DEFAULT_REPLAY_BACKEND,
            parallel: bool = True, tracer=NULL_TRACER,
            registry=None) -> RecoveryReport:
    """Rebuild the durable directory's state; see the module docstring.

    ``backend`` picks the scratch architecture for replaying a
    ``"document"`` snapshot (any letter works — serializations are
    byte-identical); sharded snapshots replay on the reassembled
    :class:`~repro.shard.store.ShardedStore` itself, loading fragments
    in parallel unless ``parallel=False``.
    """
    from repro.storage.interface import store_document_text
    manifest = DurabilityManager.read_manifest(directory)
    manager = DurabilityManager(directory)
    snapshot_pointer = manifest["snapshot"]
    with tracer.span("recovery.load_snapshot", lsn=snapshot_pointer["lsn"]):
        snapshot = manager.current_snapshot()
        started = time.perf_counter()
        store = _load_snapshot_store(snapshot, manifest, backend, parallel)
        load_seconds = time.perf_counter() - started

    scans = manager.scan_streams()
    records, beyond_gap = _merge_streams(scans, snapshot["lsn"])
    report = RecoveryReport(
        directory=str(directory),
        document="",
        digest=snapshot["digest"],
        snapshot_lsn=snapshot["lsn"],
        snapshot_digest=snapshot["digest"],
        last_lsn=records[-1].lsn if records else snapshot["lsn"],
        torn_tails={index: scan.tail for index, scan in enumerate(scans)
                    if not scan.clean},
        dropped_after_gap=beyond_gap,
        load_seconds=load_seconds,
    )
    with tracer.span("recovery.replay", records=len(records)) as span:
        started = time.perf_counter()
        for record in records:
            _replay_record(store, record, report)
        report.replay_seconds = time.perf_counter() - started
        span.set(replayed=report.replayed, skipped=report.skipped,
                 torn_streams=len(report.torn_tails))
    report.digest = store.document_digest()
    report.document = store_document_text(store)
    if snapshot["kind"] == KIND_SHARDED:
        report.sharded_store = store
    if registry is not None:
        registry.counter("recovery.runs_total").inc()
        registry.counter("recovery.records_replayed").inc(report.replayed)
        registry.counter("recovery.records_skipped").inc(report.skipped)
        registry.counter("recovery.torn_tails").inc(len(report.torn_tails))
        registry.counter("recovery.dropped_after_gap").inc(
            report.dropped_after_gap)
    return report
