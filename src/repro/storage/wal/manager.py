"""The durable directory: manifest, WAL streams, snapshots, commit protocol.

On disk::

    <dir>/
      MANIFEST.json            # deployment shape + current snapshot pointer
      wal/stream-0000.wal      # one stream per shard (one for unsharded)
      snapshots/snap-<lsn>.json

The manifest is the recovery root: it names the stream count, the shard
backends (``null`` for unsharded deployments), the base document's
content digest (the start of the digest chain — a reopened connection
offering a *different* base document is refused rather than silently
forked), and the current snapshot.  It is always replaced atomically,
so recovery sees either the pre- or post-checkpoint root, and both are
complete.

Commit protocol (the WAL invariant): :meth:`DurabilityManager.log_commit`
appends the record — and, under ``sync="commit"``, fsyncs — *before* the
caller applies the operations in memory.  A crash between the two
replays the record at recovery; a crash during the append leaves a torn
tail the scanner drops.  Either way the recovered state is some exact
prefix of the commit history.

Per-shard streams: a sharded deployment routes each single-op commit to
its primary shard's stream (the shard its target entity lives on);
transaction batches and unsharded deployments use stream 0.  LSNs are
global across streams — writers already serialize on the update lock —
so recovery merges the streams back into one totally-ordered logical
log and a torn tail in any stream cuts the merged history at exactly
that commit.

Checkpoints: :meth:`checkpoint` durably writes a new snapshot, points
the manifest at it, then compacts every stream down to the records the
snapshot does not cover and deletes superseded snapshot files.  A crash
anywhere in that sequence recovers: the manifest flip is the commit
point, and compaction only removes what the flipped manifest proves
redundant.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import DurabilityError, RecoveryError
from repro.obs.trace import NULL_TRACER
from repro.storage.wal.log import WalScan, WriteAheadLog, scan_wal
from repro.storage.wal.records import KIND_OP, KIND_TXN, WalRecord
from repro.storage.wal.snapshot import read_snapshot, write_snapshot

MANIFEST_FORMAT = 1
MANIFEST_NAME = "MANIFEST.json"


def _atomic_write_json(path: Path, document: dict) -> None:
    temp = path.with_suffix(path.suffix + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


class DurabilityManager:
    """One durable directory's layout, manifest, and WAL streams."""

    def __init__(self, directory: str | Path, *, sync: str = "commit",
                 group_size: int = 8, tracer=NULL_TRACER,
                 registry=None) -> None:
        self.directory = Path(directory)
        self.sync_mode = sync
        self.group_size = group_size
        self.tracer = tracer
        self.registry = registry
        self._streams: list[WriteAheadLog] = []
        self._manifest: dict | None = None
        self._next_lsn = 1
        self._closed = False

    # -- layout ------------------------------------------------------------------

    @classmethod
    def exists(cls, directory: str | Path) -> bool:
        """Is there a durable deployment rooted at ``directory``?"""
        return (Path(directory) / MANIFEST_NAME).exists()

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def stream_path(self, stream: int) -> Path:
        return self.directory / "wal" / f"stream-{stream:04d}.wal"

    def snapshot_path(self, lsn: int) -> Path:
        return self.directory / "snapshots" / f"snap-{lsn:012d}.json"

    # -- manifest ----------------------------------------------------------------

    @property
    def manifest(self) -> dict:
        if self._manifest is None:
            self._manifest = self.read_manifest(self.directory)
        return self._manifest

    @classmethod
    def read_manifest(cls, directory: str | Path) -> dict:
        path = Path(directory) / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise RecoveryError(
                f"{directory} is not a durable directory (no {MANIFEST_NAME})"
            ) from None
        except json.JSONDecodeError as exc:
            raise RecoveryError(f"manifest {path} is unreadable: {exc}") from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise RecoveryError(
                f"manifest {path} has unsupported format "
                f"{manifest.get('format')!r}")
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        _atomic_write_json(self.manifest_path, manifest)
        self._manifest = manifest

    # -- creation ----------------------------------------------------------------

    def initialize(self, snapshot: dict, *, streams: int = 1,
                   base_digest: str | None = None,
                   shard_backends: list[str] | None = None) -> None:
        """Create a fresh durable directory around a base snapshot.

        The base snapshot is the loaded document at LSN 0: recovery of a
        never-written deployment is just a snapshot load.
        """
        if self.exists(self.directory):
            raise DurabilityError(
                f"{self.directory} already holds a durable deployment")
        if streams < 1:
            raise DurabilityError(f"streams must be >= 1, got {streams}")
        self.directory.mkdir(parents=True, exist_ok=True)
        write_snapshot(self.snapshot_path(snapshot["lsn"]), snapshot)
        self._write_manifest({
            "format": MANIFEST_FORMAT,
            "streams": streams,
            "base_digest": base_digest or snapshot["digest"],
            "shard_backends": shard_backends,
            "snapshot": {"lsn": snapshot["lsn"],
                         "digest": snapshot["digest"],
                         "file": self.snapshot_path(snapshot["lsn"]).name},
        })
        self._open_streams(streams)
        self._next_lsn = snapshot["lsn"] + 1

    def attach(self, last_lsn: int) -> None:
        """Bind to an existing directory after recovery scanned it.

        Repairs every stream's torn tail (recovery already proved the
        valid prefix is the whole usable history) so appends never land
        after garbage, then continues the LSN sequence.
        """
        streams = self.manifest["streams"]
        self._open_streams(streams)
        for stream in self._streams:
            stream.repair()
        self._next_lsn = last_lsn + 1

    def _open_streams(self, count: int) -> None:
        self._streams = [
            WriteAheadLog(self.stream_path(index), sync=self.sync_mode,
                          group_size=self.group_size, tracer=self.tracer,
                          registry=self.registry, stream=index)
            for index in range(count)
        ]

    def bind_registry(self, registry) -> None:
        """Late-bind the metrics registry (connections build it after the
        durable directory is opened)."""
        self.registry = registry
        for stream in self._streams:
            stream._registry = registry

    # -- the commit path ---------------------------------------------------------

    @property
    def stream_count(self) -> int:
        return len(self._streams)

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def log_commit(self, ops, *, kind: str, prev_digest: str, digest: str,
                   stream: int = 0) -> WalRecord:
        """Make one commit durable *before* it is applied in memory.

        ``kind`` is ``"op"`` (digest advances over the op token) or
        ``"txn"`` (one advance over the batch token) — it must match how
        the caller will advance the digest, because recovery re-derives
        the chain from exactly this record.
        """
        self._require_open()
        if kind not in (KIND_OP, KIND_TXN):
            raise DurabilityError(f"unknown commit kind {kind!r}")
        if not 0 <= stream < len(self._streams):
            raise DurabilityError(
                f"stream {stream} out of range (deployment has "
                f"{len(self._streams)})")
        record = WalRecord(lsn=self._next_lsn, kind=kind, ops=tuple(ops),
                           prev_digest=prev_digest, digest=digest)
        self._streams[stream].append(record)
        self._next_lsn += 1
        return record

    def sync(self) -> None:
        """Force every stream's pending group to stable storage."""
        for stream in self._streams:
            stream.sync()

    # -- checkpoints --------------------------------------------------------------

    def checkpoint(self, snapshot: dict) -> dict:
        """Install a new snapshot and compact the WAL streams behind it.

        ``snapshot`` must carry ``lsn`` (the last commit it covers —
        normally :attr:`last_lsn`) and ``digest`` (the chain value
        there).  Returns a small report of what was dropped.
        """
        self._require_open()
        lsn = snapshot["lsn"]
        if lsn > self.last_lsn:
            raise DurabilityError(
                f"snapshot claims lsn {lsn} but only {self.last_lsn} "
                "commits were logged")
        self.sync()
        write_snapshot(self.snapshot_path(lsn), snapshot)
        old_snapshot = self.manifest["snapshot"]
        manifest = dict(self.manifest)
        manifest["snapshot"] = {"lsn": lsn, "digest": snapshot["digest"],
                                "file": self.snapshot_path(lsn).name}
        self._write_manifest(manifest)     # <- the checkpoint commit point
        dropped = 0
        for stream in self._streams:
            stream.close()
            scan = stream.repair()
            kept = [record for record in scan.records if record.lsn > lsn]
            if len(kept) != len(scan.records):
                dropped += len(scan.records) - len(kept)
                stream.rewrite(kept)
        if old_snapshot["file"] != manifest["snapshot"]["file"]:
            old_path = self.directory / "snapshots" / old_snapshot["file"]
            old_path.unlink(missing_ok=True)
        return {"lsn": lsn, "records_dropped": dropped,
                "snapshot": manifest["snapshot"]["file"]}

    def current_snapshot(self) -> dict:
        """The manifest's snapshot payload, verified."""
        pointer = self.manifest["snapshot"]
        return read_snapshot(self.directory / "snapshots" / pointer["file"])

    # -- reading -----------------------------------------------------------------

    def scan_streams(self) -> list[WalScan]:
        """Scan every stream file (used offline by recovery and tools)."""
        streams = self.manifest["streams"]
        scans = []
        for index in range(streams):
            path = self.stream_path(index)
            scans.append(scan_wal(path) if path.exists()
                         else WalScan(path=str(path)))
        return scans

    # -- lifecycle ----------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise DurabilityError("durability manager is closed")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for stream in self._streams:
                stream.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
