"""Durability: write-ahead logging, snapshots, crash-consistent recovery.

Every store architecture is load-once and memory-only; this package makes
a document lineage survive the process.  The design logs *logical* typed
update operations (the same value objects the update engine applies), not
physical pages:

* :mod:`repro.storage.wal.records` — the binary record codec:
  length-prefixed, per-record CRC, typed payloads (single ops and
  transaction batches) carrying the digest chain values the store had
  before and will have after the commit.
* :mod:`repro.storage.wal.log` — append-only WAL streams with
  fsync-on-commit and a batched group-commit option, plus the torn-tail
  scanner recovery reads with.
* :mod:`repro.storage.wal.snapshot` — checkpoints: the store's
  serialization (byte-identical across all seven architectures, which is
  what lets one snapshot serve any of them) or, for a sharded
  deployment, the per-shard fragments with their order seeds.
* :mod:`repro.storage.wal.manager` — the on-disk directory layout
  (manifest, WAL streams, snapshots) and the commit protocol: append +
  fsync *before* the in-memory apply.
* :mod:`repro.storage.wal.recovery` — load snapshot, replay the WAL
  suffix through the real update engine, verify the recovered digest
  chain against the recorded one.

The correctness contract is proved by ``tests/test_recovery.py``: a
crash at *any* byte of the WAL leaves a prefix that recovers to a store
whose digest, serialization, and query results are bit-identical to a
never-crashed oracle at that prefix.  See docs/DURABILITY.md.
"""

from repro.storage.wal.log import WalScan, WriteAheadLog, scan_wal
from repro.storage.wal.manager import DurabilityManager
from repro.storage.wal.records import WalRecord, decode_op, encode_op
from repro.storage.wal.recovery import RecoveryReport, recover
from repro.storage.wal.snapshot import read_snapshot, write_snapshot

__all__ = [
    "WalRecord", "encode_op", "decode_op",
    "WriteAheadLog", "WalScan", "scan_wal",
    "write_snapshot", "read_snapshot",
    "DurabilityManager",
    "recover", "RecoveryReport",
]
