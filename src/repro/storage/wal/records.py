"""The WAL record codec: length-prefixed, CRC-guarded, typed payloads.

On disk a record is::

    +--------+----------+---------+----------------------+
    | magic  | length   | crc32   | payload (JSON, utf-8)|
    | 4 bytes| 4 bytes  | 4 bytes | ``length`` bytes     |
    +--------+----------+---------+----------------------+

``length`` counts payload bytes only and ``crc32`` covers payload bytes
only, so the three torn-write classes the fault-injection harness
exercises are cleanly distinguishable: a truncation inside the 12-byte
header (*torn header*), a truncation inside the payload (*torn
payload*), and a garbled payload byte (*bad CRC*; garbling the header's
own length/crc fields surfaces as torn payload or bad CRC, garbling the
magic as *bad magic*).  Whatever the class, the scanner never yields the
damaged record or anything after it: a half-record is dropped, never
applied.

The payload is the *logical* commit::

    {"lsn": 7, "kind": "op" | "txn", "ops": [...],
     "prev": "<digest before>", "digest": "<digest after>"}

``prev``/``digest`` are the store's operation-hash-chain values around
the commit (see :func:`repro.storage.interface.chain_digest`); recovery
replays the ops through the real update engine and verifies the chain it
produces against these recorded values link by link.

Operations are encoded by kind.  The scalar ops carry their fields
verbatim; ``register_person`` carries the person subtree as XML text and
is parsed back on decode — the round trip is exact because the document
generator's serializer is canonical.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

from repro.errors import DurabilityError
from repro.update.ops import (
    CloseAuction, DeleteItem, PlaceBid, RegisterPerson, UpdateOp,
)
from repro.xmlio.parser import parse
from repro.xmlio.serialize import serialize

#: Per-record magic: lets the scanner reject files that are not WALs at
#: all (and any overwrite garbage) without trusting the length field.
MAGIC = b"XWAL"

_HEADER = struct.Struct("<4sII")        # magic, payload length, payload crc32
HEADER_SIZE = _HEADER.size

#: Record kinds: a single operation (digest advances over the op token)
#: vs a transaction batch (one digest advance over the batch token).
KIND_OP = "op"
KIND_TXN = "txn"


# -- operation encoding ----------------------------------------------------------


def encode_op(op: UpdateOp) -> dict:
    """One update operation as a JSON-ready dict."""
    if isinstance(op, RegisterPerson):
        return {"kind": op.kind, "person": serialize(op.person)}
    if isinstance(op, PlaceBid):
        return {"kind": op.kind, "auction": op.auction_id,
                "person": op.person_id, "increase": op.increase,
                "date": op.date, "time": op.time}
    if isinstance(op, CloseAuction):
        return {"kind": op.kind, "auction": op.auction_id, "date": op.date}
    if isinstance(op, DeleteItem):
        return {"kind": op.kind, "item": op.item_id}
    raise DurabilityError(f"cannot log unknown update operation {op!r}")


def decode_op(encoded: dict) -> UpdateOp:
    """The inverse of :func:`encode_op`."""
    kind = encoded.get("kind")
    if kind == "register_person":
        person = parse(encoded["person"]).root
        if person is None:
            raise DurabilityError("register_person record has no subtree")
        return RegisterPerson(person)
    if kind == "place_bid":
        return PlaceBid(encoded["auction"], encoded["person"],
                        encoded["increase"], encoded["date"], encoded["time"])
    if kind == "close_auction":
        return CloseAuction(encoded["auction"], encoded["date"])
    if kind == "delete_item":
        return DeleteItem(encoded["item"])
    raise DurabilityError(f"unknown logged operation kind {kind!r}")


# -- records ---------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One logical commit: a single op or a transaction batch."""

    lsn: int
    kind: str                           # KIND_OP | KIND_TXN
    ops: tuple[UpdateOp, ...]
    prev_digest: str
    digest: str

    def __post_init__(self) -> None:
        if self.kind not in (KIND_OP, KIND_TXN):
            raise DurabilityError(f"unknown WAL record kind {self.kind!r}")
        if self.kind == KIND_OP and len(self.ops) != 1:
            raise DurabilityError(
                f"an '{KIND_OP}' record carries exactly one operation, "
                f"got {len(self.ops)}")

    def encode(self) -> bytes:
        payload = json.dumps(
            {"lsn": self.lsn, "kind": self.kind,
             "ops": [encode_op(op) for op in self.ops],
             "prev": self.prev_digest, "digest": self.digest},
            separators=(",", ":"), ensure_ascii=False).encode("utf-8")
        return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload

    @classmethod
    def decode_payload(cls, payload: bytes) -> "WalRecord":
        document = json.loads(payload.decode("utf-8"))
        return cls(
            lsn=document["lsn"],
            kind=document["kind"],
            ops=tuple(decode_op(op) for op in document["ops"]),
            prev_digest=document["prev"],
            digest=document["digest"],
        )


#: How a WAL byte stream ended (`WalScan.tail`).  Everything except
#: ``clean`` means a tail was dropped; recovery reports which class.
TAIL_CLEAN = "clean"
TAIL_TORN_HEADER = "torn-header"
TAIL_TORN_PAYLOAD = "torn-payload"
TAIL_BAD_CRC = "bad-crc"
TAIL_BAD_MAGIC = "bad-magic"


def iter_records(data: bytes):
    """Yield ``(offset, WalRecord)`` for every intact record, then one
    final ``(valid_end, tail_status)`` pair describing how the bytes end.

    The scanner is strictly prefix-consistent: the first damaged record
    ends the scan, whatever follows it.  A record that decodes but whose
    payload is semantically broken (unknown kind, unparseable subtree)
    raises :class:`~repro.errors.DurabilityError` — that is corruption
    the CRC says did not happen on the wire, so it is never silently
    dropped.
    """
    offset = 0
    total = len(data)
    while True:
        if offset == total:
            yield offset, TAIL_CLEAN
            return
        if total - offset < HEADER_SIZE:
            yield offset, TAIL_TORN_HEADER
            return
        magic, length, crc = _HEADER.unpack_from(data, offset)
        if magic != MAGIC:
            yield offset, TAIL_BAD_MAGIC
            return
        start = offset + HEADER_SIZE
        if total - start < length:
            yield offset, TAIL_TORN_PAYLOAD
            return
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            yield offset, TAIL_BAD_CRC
            return
        yield offset, WalRecord.decode_payload(payload)
        offset = start + length
