"""Structural summary (DataGuide) for System D.

The paper: "System D keeps a detailed structural summary of the database and
can exploit it to optimize traversal-intensive queries; this actually makes
Q6 and Q7 surprisingly fast" — counts are answered from the summary without
touching the document, and non-existing paths (Q7 looks for paths that do
not exist everywhere) are recognised immediately.

The summary maps every distinct root-to-element path to its *extent*: the
document-ordered list of nodes with that path.  It doubles as the catalogue
behind the Section 7 suggestion of warning about path expressions that
contain non-existing tags.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass, field


@dataclass(slots=True)
class PathEntry:
    """One distinct path: its extent and pre-computed cardinality."""

    path: tuple[str, ...]
    nodes: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.nodes)


class StructuralSummary:
    """DataGuide over a tree store's node arrays."""

    __slots__ = ("_entries", "_by_tag", "_tags")

    def __init__(self) -> None:
        self._entries: dict[tuple[str, ...], PathEntry] = {}
        self._by_tag: dict[str, list[PathEntry]] = {}
        self._tags: set[str] = set()

    @classmethod
    def build(cls, tags: list[str], parents: list[int]) -> "StructuralSummary":
        """Build from parallel pre-order tag/parent arrays in one pass."""
        summary = cls()
        paths: list[tuple[str, ...]] = [()] * len(tags)
        for node, tag in enumerate(tags):
            parent = parents[node]
            path = (paths[parent] + (tag,)) if parent >= 0 else (tag,)
            paths[node] = path
            summary.add(path, node)
        return summary

    def add(self, path: tuple[str, ...], node: int) -> None:
        entry = self._entries.get(path)
        if entry is None:
            entry = PathEntry(path)
            self._entries[path] = entry
            self._by_tag.setdefault(path[-1], []).append(entry)
            self._tags.add(path[-1])
        entry.nodes.append(node)

    # -- queries --------------------------------------------------------------

    def entry(self, path: tuple[str, ...]) -> PathEntry | None:
        return self._entries.get(path)

    def count(self, path: tuple[str, ...]) -> int:
        """Extent cardinality; 0 for paths that do not exist (Q7's trick)."""
        entry = self._entries.get(path)
        return entry.count if entry else 0

    def nodes(self, path: tuple[str, ...]) -> list[int]:
        entry = self._entries.get(path)
        return entry.nodes if entry else []

    def paths_through(self, prefix: tuple[str, ...], tag: str) -> list[PathEntry]:
        """Entries ending in ``tag`` that strictly extend ``prefix`` —
        resolves a descendant step without touching the document."""
        candidates = self._by_tag.get(tag, ())
        return [
            entry for entry in candidates
            if len(entry.path) > len(prefix) and entry.path[: len(prefix)] == prefix
        ]

    def paths_ending_in(self, tag: str) -> list[PathEntry]:
        return list(self._by_tag.get(tag, ()))

    def has_tag(self, tag: str) -> bool:
        return tag in self._tags

    def tags(self) -> frozenset[str]:
        return frozenset(self._tags)

    def path_count(self) -> int:
        """Number of distinct paths (the summary's size in 'schema' terms)."""
        return len(self._entries)

    def compact(self) -> None:
        """Freeze extents into packed 64-bit arrays.

        This is System D's compactness story made real: after bulkload the
        extents are immutable, so a packed array (8 bytes/node, no per-item
        object overhead) replaces the build-time list.
        """
        for entry in self._entries.values():
            entry.nodes = array("q", entry.nodes)

    def size_bytes(self) -> int:
        total = sys.getsizeof(self._entries)
        for entry in self._entries.values():
            total += sys.getsizeof(entry.nodes)
            if isinstance(entry.nodes, list):
                total += 8 * len(entry.nodes)
            total += sum(sys.getsizeof(part) for part in entry.path)
        return total
