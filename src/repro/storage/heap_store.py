"""System A analogue: the "one big heap" generic relational mapping.

The paper on System A: "System A basically stores all XML data on one big
heap, i.e., only a single relation. ... System A has to access fewer
metadata to compile a query than System B ... However, this comes at a cost.
Because the data mapping deployed in System A has less explicit semantics,
the actual cost of accessing the real data is higher."

The mapping is the classic edge/node relation (Florescu–Kossmann style):

* ``nodes(pre, post, parent, tag, pos)`` — one row per element, ``pre`` in
  document order, ``post`` the last sequence number in the subtree;
* ``texts(pre, parent, pos, value)`` — one row per text run;
* ``attrs(parent, name, value)`` — one row per attribute.

Every navigation step is an index probe plus row fetches against these three
relations, so path-heavy and reconstruction-heavy queries (Q10!) pay the
per-step relational toll the paper reports.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.errors import StorageError
from repro.relational.catalog import Catalog
from repro.relational.table import Column, ColumnType
from repro.storage.interface import Store, rank_by_walk
from repro.xmlio.dom import Element, Text
from repro.xmlio.events import Characters, EndElement, StartElement
from repro.xmlio.parser import iterparse

_INT = ColumnType.INT
_STR = ColumnType.STR


class HeapStore(Store):
    """Single-relation generic edge mapping (System A)."""

    architecture = "relational single heap: one generic node relation (System A)"

    def __init__(self) -> None:
        super().__init__()
        self.catalog = Catalog()
        self._nodes = None
        self._texts = None
        self._attrs = None
        self._children_index = None
        self._texts_index = None
        self._attrs_index = None
        self._tag_index = None
        self._id_index: dict[str, int] = {}
        self._row_by_pre: dict[int, int] = {}
        self._next_pre = 0                      # pre allocator for inserted tuples
        self._mutated = False                   # pre order == doc order until then
        self._order: dict[int, int] | None = None

    # -- bulkload -----------------------------------------------------------------

    def load(self, text: str) -> None:
        self.catalog = Catalog()
        nodes = self.catalog.create_table("nodes", [
            Column("pre", _INT, nullable=False),
            Column("post", _INT, nullable=False),
            Column("parent", _INT),
            Column("tag", _STR, nullable=False),
            Column("pos", _INT, nullable=False),
        ])
        texts = self.catalog.create_table("texts", [
            Column("pre", _INT, nullable=False),
            Column("parent", _INT, nullable=False),
            Column("pos", _INT, nullable=False),
            Column("value", _STR, nullable=False),
        ])
        attrs = self.catalog.create_table("attrs", [
            Column("parent", _INT, nullable=False),
            Column("name", _STR, nullable=False),
            Column("value", _STR, nullable=False),
        ])

        sequence = 0
        stack: list[tuple[int, int]] = []  # (pre, next child slot)
        pre_row: dict[int, int] = {}
        post_patch: list[tuple[int, int]] = []

        for event in iterparse(text):
            if isinstance(event, StartElement):
                pre = sequence
                sequence += 1
                parent_pre, slot = (stack[-1] if stack else (None, 0))
                if stack:
                    stack[-1] = (stack[-1][0], stack[-1][1] + 1)
                row = nodes.append(pre=pre, post=pre, parent=parent_pre,
                                   tag=event.tag, pos=slot)
                pre_row[pre] = row
                for name, value in event.attributes:
                    attrs.append(parent=pre, name=name, value=value)
                stack.append((pre, 0))
            elif isinstance(event, EndElement):
                pre, _ = stack.pop()
                post_patch.append((pre_row[pre], sequence - 1))
            else:
                parent_pre, slot = stack[-1]
                stack[-1] = (parent_pre, slot + 1)
                texts.append(pre=sequence, parent=parent_pre, pos=slot,
                             value=event.text)
                sequence += 1

        post_column = nodes.column("post")
        for row, post in post_patch:
            post_column[row] = post

        self._nodes, self._texts, self._attrs = nodes, texts, attrs
        self._row_by_pre = pre_row
        self._children_index = self.catalog.create_hash_index("nodes", "parent")
        self._texts_index = self.catalog.create_hash_index("texts", "parent")
        self._attrs_index = self.catalog.create_hash_index("attrs", "parent")
        self._tag_index = self.catalog.create_hash_index("nodes", "tag")
        self._id_index = {}
        values = attrs.column("value")
        names = attrs.column("name")
        parents = attrs.column("parent")
        for row in range(len(attrs)):
            if names[row] == "id":
                self._id_index[values[row]] = parents[row]
        self.catalog.analyze()
        self._next_pre = sequence
        self._mutated = False
        self._order = None
        self.mark_loaded(text)

    def size_bytes(self) -> int:
        self.require_loaded()
        return self.catalog.estimated_bytes()

    # -- navigation -----------------------------------------------------------------

    def root(self) -> int:
        self.require_loaded()
        return 0

    def tag(self, node: int) -> str:
        self.stats.table_lookups += 1
        return self._nodes.get(self._row_by_pre[node], "tag")

    def children(self, node: int) -> list[int]:
        self.stats.index_lookups += 1
        rows = self._children_index.lookup(node)
        self.stats.table_lookups += len(rows)
        pres = self._nodes.column("pre")
        if self._mutated:
            # Bucket order is append order, not sibling order, once tuples
            # have been inserted: restore it from the pos column.
            poss = self._nodes.column("pos")
            rows = sorted(rows, key=poss.__getitem__)
        return [pres[row] for row in rows]

    def children_by_tag(self, node: int, tag: str) -> list[int]:
        self.stats.index_lookups += 1
        rows = self._children_index.lookup(node)
        self.stats.table_lookups += len(rows)
        pres = self._nodes.column("pre")
        tags = self._nodes.column("tag")
        if self._mutated:
            poss = self._nodes.column("pos")
            rows = sorted(rows, key=poss.__getitem__)
        return [pres[row] for row in rows if tags[row] == tag]

    def descendants_by_tag(self, node: int, tag: str) -> list[int]:
        if self._mutated:
            # Inserted pres break the pre/post interval encoding: navigate.
            tags = self._nodes.column("tag")
            found: list[int] = []
            stack = list(reversed(self.children(node)))
            while stack:
                current = stack.pop()
                if tags[self._row_by_pre[current]] == tag:
                    found.append(current)
                stack.extend(reversed(self.children(current)))
            return found
        # B-tree on (tag, pre): probe the tag extent, bisect the pre interval.
        self.stats.index_lookups += 1
        rows = self._tag_index.lookup(tag)
        pres = self._nodes.column("pre")
        extent = [pres[row] for row in rows]  # ascending: heap is in doc order
        self.stats.table_lookups += len(extent)
        post = self._nodes.get(self._row_by_pre[node], "post")
        start = bisect_right(extent, node)
        stop = bisect_right(extent, post)
        return extent[start:stop]

    def parent(self, node: int) -> int | None:
        self.stats.table_lookups += 1
        return self._nodes.get(self._row_by_pre[node], "parent")

    def attribute(self, node: int, name: str) -> str | None:
        self.stats.index_lookups += 1
        rows = self._attrs_index.lookup(node)
        self.stats.table_lookups += len(rows)
        names = self._attrs.column("name")
        values = self._attrs.column("value")
        for row in rows:
            if names[row] == name:
                return values[row]
        return None

    def attributes(self, node: int) -> dict[str, str]:
        self.stats.index_lookups += 1
        rows = self._attrs_index.lookup(node)
        self.stats.table_lookups += len(rows)
        names = self._attrs.column("name")
        values = self._attrs.column("value")
        return {names[row]: values[row] for row in rows}

    def child_texts(self, node: int) -> list[str]:
        self.stats.index_lookups += 1
        rows = self._texts_index.lookup(node)
        self.stats.table_lookups += len(rows)
        values = self._texts.column("value")
        return [values[row] for row in rows]

    def string_value(self, node: int) -> str:
        if self._mutated:
            # The text heap interleaves inserted runs out of pre order:
            # reassemble through content() like the update literature's
            # declustered-CLOB case.
            parts: list[str] = []
            stack: list = [node]
            while stack:
                current = stack.pop()
                if isinstance(current, str):
                    parts.append(current)
                else:
                    stack.extend(reversed(self.content(current)))
            return "".join(parts)
        # Texts are stored in document order: bisect the subtree interval.
        self.stats.index_lookups += 1
        text_pres = self._texts.column("pre")
        post = self._nodes.get(self._row_by_pre[node], "post")
        start = bisect_left(text_pres, node)
        stop = bisect_right(text_pres, post)
        values = self._texts.column("value")
        self.stats.table_lookups += stop - start
        return "".join(values[row] for row in range(start, stop))

    def content(self, node: int) -> list:
        self.stats.index_lookups += 2
        child_rows = self._children_index.lookup(node)
        text_rows = self._texts_index.lookup(node)
        self.stats.table_lookups += len(child_rows) + len(text_rows)
        pres = self._nodes.column("pre")
        node_pos = self._nodes.column("pos")
        text_pos = self._texts.column("pos")
        values = self._texts.column("value")
        merged: list[tuple[int, object]] = [
            (node_pos[row], pres[row]) for row in child_rows
        ]
        merged.extend((text_pos[row], values[row]) for row in text_rows)
        merged.sort(key=lambda pair: pair[0])
        return [part for _, part in merged]

    def doc_position(self, node: int) -> int:
        if not self._mutated:
            return node
        if self._order is None:
            self._order = rank_by_walk(self)
        return self._order[node]

    # -- capabilities ------------------------------------------------------------------

    def lookup_id(self, value: str) -> int | None:
        self.stats.index_lookups += 1
        return self._id_index.get(value)

    def has_id_index(self) -> bool:
        return True

    def all_with_tag(self, tag: str) -> list[int]:
        """Whole extent of one tag (ascending pre) — the relational access
        path for unrooted element scans."""
        self.stats.index_lookups += 1
        rows = self._tag_index.lookup(tag)
        pres = self._nodes.column("pre")
        self.stats.table_lookups += len(rows)
        extent = [pres[row] for row in rows]
        if self._mutated:
            extent.sort(key=self.doc_position)
        return extent

    # -- mutation: tuple inserts/deletes with index and stats touches ------------------

    def _note_mutation(self) -> None:
        self._mutated = True
        self._order = None

    def _content_pos(self, parent: int, index: int | None) -> int:
        """The pos value for a new child at element ``index``, shifting the
        pos of every following sibling tuple (elements and text runs) up."""
        child_rows = sorted(self._children_index.lookup(parent),
                            key=self._nodes.column("pos").__getitem__)
        if index is None or index >= len(child_rows):
            text_rows = self._texts_index.lookup(parent)
            highest = -1
            for row in child_rows:
                highest = max(highest, self._nodes.get(row, "pos"))
            for row in text_rows:
                highest = max(highest, self._texts.get(row, "pos"))
            return highest + 1
        target = self._nodes.get(child_rows[index], "pos")
        for row in self._children_index.lookup(parent):
            pos = self._nodes.get(row, "pos")
            if pos >= target:
                self._nodes.set(row, "pos", pos + 1)
        for row in self._texts_index.lookup(parent):
            pos = self._texts.get(row, "pos")
            if pos >= target:
                self._texts.set(row, "pos", pos + 1)
        return target

    def insert_child(self, parent: int, element: Element,
                     index: int | None = None) -> int:
        self.require_loaded()
        pos = self._content_pos(parent, index)
        root_pre = self._insert_subtree(element, parent, pos)
        self._note_mutation()
        return root_pre

    def _insert_subtree(self, element: Element, parent_pre: int, pos: int) -> int:
        pre = self._next_pre
        self._next_pre += 1
        row = self._nodes.append(pre=pre, post=pre, parent=parent_pre,
                                 tag=element.tag, pos=pos)
        self._row_by_pre[pre] = row
        self._children_index.insert(parent_pre, row)
        self._tag_index.insert(element.tag, row)
        for name, value in element.attributes.items():
            attr_row = self._attrs.append(parent=pre, name=name, value=value)
            self._attrs_index.insert(pre, attr_row)
            if name == "id":
                self._id_index[value] = pre
        slot = 0
        for child in element.children:
            if isinstance(child, Text):
                text_pre = self._next_pre
                self._next_pre += 1
                text_row = self._texts.append(pre=text_pre, parent=pre,
                                              pos=slot, value=child.value)
                self._texts_index.insert(pre, text_row)
            else:
                self._insert_subtree(child, pre, slot)
            slot += 1
        return pre

    def remove_node(self, node: int) -> None:
        self.require_loaded()
        row = self._row_by_pre.get(node)
        if row is None:
            raise StorageError(f"no tuple for handle {node!r}")
        if self._nodes.get(row, "parent") is None:
            raise StorageError("cannot remove the document root")
        doomed = [node]
        stack = list(self.children(node))
        while stack:
            current = stack.pop()
            doomed.append(current)
            stack.extend(self.children(current))
        names = self._attrs.column("name")
        values = self._attrs.column("value")
        for pre in doomed:
            node_row = self._row_by_pre.pop(pre)
            self._children_index.remove(self._nodes.get(node_row, "parent"), node_row)
            self._tag_index.remove(self._nodes.get(node_row, "tag"), node_row)
            for attr_row in list(self._attrs_index.lookup(pre)):
                if names[attr_row] == "id" and self._id_index.get(values[attr_row]) == pre:
                    del self._id_index[values[attr_row]]
                self._attrs_index.remove(pre, attr_row)
            for text_row in list(self._texts_index.lookup(pre)):
                self._texts_index.remove(pre, text_row)
        self._note_mutation()

    def set_text(self, node: int, text: str) -> None:
        self.require_loaded()
        text_rows = sorted(self._texts_index.lookup(node),
                           key=self._texts.column("pos").__getitem__)
        if text_rows:
            if text:
                self._texts.set(text_rows[0], "value", text)
                extra = text_rows[1:]
            else:
                extra = text_rows
            for row in extra:
                self._texts_index.remove(node, row)
        elif text:
            pos = self._content_pos(node, None)
            text_pre = self._next_pre
            self._next_pre += 1
            row = self._texts.append(pre=text_pre, parent=node, pos=pos, value=text)
            self._texts_index.insert(node, row)
        self._note_mutation()

    def set_attribute(self, node: int, name: str, value: str) -> None:
        self.require_loaded()
        names = self._attrs.column("name")
        for row in self._attrs_index.lookup(node):
            if names[row] == name:
                self._attrs.set(row, "value", value)
                break
        else:
            row = self._attrs.append(parent=node, name=name, value=value)
            self._attrs_index.insert(node, row)
        if name == "id":
            self._id_index[value] = node
