"""System A analogue: the "one big heap" generic relational mapping.

The paper on System A: "System A basically stores all XML data on one big
heap, i.e., only a single relation. ... System A has to access fewer
metadata to compile a query than System B ... However, this comes at a cost.
Because the data mapping deployed in System A has less explicit semantics,
the actual cost of accessing the real data is higher."

The mapping is the classic edge/node relation (Florescu–Kossmann style):

* ``nodes(pre, post, parent, tag, pos)`` — one row per element, ``pre`` in
  document order, ``post`` the last sequence number in the subtree;
* ``texts(pre, parent, pos, value)`` — one row per text run;
* ``attrs(parent, name, value)`` — one row per attribute.

Every navigation step is an index probe plus row fetches against these three
relations, so path-heavy and reconstruction-heavy queries (Q10!) pay the
per-step relational toll the paper reports.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.relational.catalog import Catalog
from repro.relational.table import Column, ColumnType
from repro.storage.interface import Store
from repro.xmlio.events import Characters, EndElement, StartElement
from repro.xmlio.parser import iterparse

_INT = ColumnType.INT
_STR = ColumnType.STR


class HeapStore(Store):
    """Single-relation generic edge mapping (System A)."""

    architecture = "relational single heap: one generic node relation (System A)"

    def __init__(self) -> None:
        super().__init__()
        self.catalog = Catalog()
        self._nodes = None
        self._texts = None
        self._attrs = None
        self._children_index = None
        self._texts_index = None
        self._attrs_index = None
        self._tag_index = None
        self._id_index: dict[str, int] = {}
        self._row_by_pre: dict[int, int] = {}

    # -- bulkload -----------------------------------------------------------------

    def load(self, text: str) -> None:
        self.catalog = Catalog()
        nodes = self.catalog.create_table("nodes", [
            Column("pre", _INT, nullable=False),
            Column("post", _INT, nullable=False),
            Column("parent", _INT),
            Column("tag", _STR, nullable=False),
            Column("pos", _INT, nullable=False),
        ])
        texts = self.catalog.create_table("texts", [
            Column("pre", _INT, nullable=False),
            Column("parent", _INT, nullable=False),
            Column("pos", _INT, nullable=False),
            Column("value", _STR, nullable=False),
        ])
        attrs = self.catalog.create_table("attrs", [
            Column("parent", _INT, nullable=False),
            Column("name", _STR, nullable=False),
            Column("value", _STR, nullable=False),
        ])

        sequence = 0
        stack: list[tuple[int, int]] = []  # (pre, next child slot)
        pre_row: dict[int, int] = {}
        post_patch: list[tuple[int, int]] = []

        for event in iterparse(text):
            if isinstance(event, StartElement):
                pre = sequence
                sequence += 1
                parent_pre, slot = (stack[-1] if stack else (None, 0))
                if stack:
                    stack[-1] = (stack[-1][0], stack[-1][1] + 1)
                row = nodes.append(pre=pre, post=pre, parent=parent_pre,
                                   tag=event.tag, pos=slot)
                pre_row[pre] = row
                for name, value in event.attributes:
                    attrs.append(parent=pre, name=name, value=value)
                stack.append((pre, 0))
            elif isinstance(event, EndElement):
                pre, _ = stack.pop()
                post_patch.append((pre_row[pre], sequence - 1))
            else:
                parent_pre, slot = stack[-1]
                stack[-1] = (parent_pre, slot + 1)
                texts.append(pre=sequence, parent=parent_pre, pos=slot,
                             value=event.text)
                sequence += 1

        post_column = nodes.column("post")
        for row, post in post_patch:
            post_column[row] = post

        self._nodes, self._texts, self._attrs = nodes, texts, attrs
        self._row_by_pre = pre_row
        self._children_index = self.catalog.create_hash_index("nodes", "parent")
        self._texts_index = self.catalog.create_hash_index("texts", "parent")
        self._attrs_index = self.catalog.create_hash_index("attrs", "parent")
        self._tag_index = self.catalog.create_hash_index("nodes", "tag")
        self._id_index = {}
        values = attrs.column("value")
        names = attrs.column("name")
        parents = attrs.column("parent")
        for row in range(len(attrs)):
            if names[row] == "id":
                self._id_index[values[row]] = parents[row]
        self.catalog.analyze()
        self.mark_loaded(text)

    def size_bytes(self) -> int:
        self.require_loaded()
        return self.catalog.estimated_bytes()

    # -- navigation -----------------------------------------------------------------

    def root(self) -> int:
        self.require_loaded()
        return 0

    def tag(self, node: int) -> str:
        self.stats.table_lookups += 1
        return self._nodes.get(self._row_by_pre[node], "tag")

    def children(self, node: int) -> list[int]:
        self.stats.index_lookups += 1
        rows = self._children_index.lookup(node)
        self.stats.table_lookups += len(rows)
        pres = self._nodes.column("pre")
        return [pres[row] for row in rows]

    def children_by_tag(self, node: int, tag: str) -> list[int]:
        self.stats.index_lookups += 1
        rows = self._children_index.lookup(node)
        self.stats.table_lookups += len(rows)
        pres = self._nodes.column("pre")
        tags = self._nodes.column("tag")
        return [pres[row] for row in rows if tags[row] == tag]

    def descendants_by_tag(self, node: int, tag: str) -> list[int]:
        # B-tree on (tag, pre): probe the tag extent, bisect the pre interval.
        self.stats.index_lookups += 1
        rows = self._tag_index.lookup(tag)
        pres = self._nodes.column("pre")
        extent = [pres[row] for row in rows]  # ascending: heap is in doc order
        self.stats.table_lookups += len(extent)
        post = self._nodes.get(self._row_by_pre[node], "post")
        start = bisect_right(extent, node)
        stop = bisect_right(extent, post)
        return extent[start:stop]

    def parent(self, node: int) -> int | None:
        self.stats.table_lookups += 1
        return self._nodes.get(self._row_by_pre[node], "parent")

    def attribute(self, node: int, name: str) -> str | None:
        self.stats.index_lookups += 1
        rows = self._attrs_index.lookup(node)
        self.stats.table_lookups += len(rows)
        names = self._attrs.column("name")
        values = self._attrs.column("value")
        for row in rows:
            if names[row] == name:
                return values[row]
        return None

    def attributes(self, node: int) -> dict[str, str]:
        self.stats.index_lookups += 1
        rows = self._attrs_index.lookup(node)
        self.stats.table_lookups += len(rows)
        names = self._attrs.column("name")
        values = self._attrs.column("value")
        return {names[row]: values[row] for row in rows}

    def child_texts(self, node: int) -> list[str]:
        self.stats.index_lookups += 1
        rows = self._texts_index.lookup(node)
        self.stats.table_lookups += len(rows)
        values = self._texts.column("value")
        return [values[row] for row in rows]

    def string_value(self, node: int) -> str:
        # Texts are stored in document order: bisect the subtree interval.
        self.stats.index_lookups += 1
        text_pres = self._texts.column("pre")
        post = self._nodes.get(self._row_by_pre[node], "post")
        start = bisect_left(text_pres, node)
        stop = bisect_right(text_pres, post)
        values = self._texts.column("value")
        self.stats.table_lookups += stop - start
        return "".join(values[row] for row in range(start, stop))

    def content(self, node: int) -> list:
        self.stats.index_lookups += 2
        child_rows = self._children_index.lookup(node)
        text_rows = self._texts_index.lookup(node)
        self.stats.table_lookups += len(child_rows) + len(text_rows)
        pres = self._nodes.column("pre")
        node_pos = self._nodes.column("pos")
        text_pos = self._texts.column("pos")
        values = self._texts.column("value")
        merged: list[tuple[int, object]] = [
            (node_pos[row], pres[row]) for row in child_rows
        ]
        merged.extend((text_pos[row], values[row]) for row in text_rows)
        merged.sort(key=lambda pair: pair[0])
        return [part for _, part in merged]

    def doc_position(self, node: int) -> int:
        return node

    # -- capabilities ------------------------------------------------------------------

    def lookup_id(self, value: str) -> int | None:
        self.stats.index_lookups += 1
        return self._id_index.get(value)

    def has_id_index(self) -> bool:
        return True

    def all_with_tag(self, tag: str) -> list[int]:
        """Whole extent of one tag (ascending pre) — the relational access
        path for unrooted element scans."""
        self.stats.index_lookups += 1
        rows = self._tag_index.lookup(tag)
        pres = self._nodes.column("pre")
        self.stats.table_lookups += len(rows)
        return [pres[row] for row in rows]
