"""The DTD-derived relational mapping used by the schema store (System C).

System C "reads in a DTD and lets the user generate an optimized database
schema" — the inlining strategy of Shanmugasundaram et al. [23]: set-valued
elements get their own relations, single-valued scalar children are inlined
as columns (optional ones nullable), EMPTY reference elements become
foreign-key-like string columns, and document-centric subtrees
(``description``, mail ``text``) are stored as CLOB fragments with an
extracted text column for full-text predicates.

This module is pure mapping *description*; the store interprets it for both
shredding and navigation.  The spec below is exactly what the inlining
algorithm produces for the auction DTD, written out so the mapping is
reviewable at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Leaf:
    """Single-valued PCDATA child inlined as a nullable column."""

    tag: str
    column: str


@dataclass(frozen=True, slots=True)
class RefLeaf:
    """Single-valued EMPTY child whose attributes become columns."""

    tag: str
    attr_columns: tuple[tuple[str, str], ...]  # (attribute, column)

    @property
    def presence_column(self) -> str:
        return self.attr_columns[0][1]


@dataclass(frozen=True, slots=True)
class FragLeaf:
    """Document-centric child stored as a CLOB fragment reference."""

    tag: str
    column: str


@dataclass(frozen=True, slots=True)
class Struct:
    """Single-valued structured child inlined with prefixed columns."""

    tag: str
    presence_column: str
    attr_columns: tuple[tuple[str, str], ...]
    children: tuple = ()


@dataclass(frozen=True, slots=True)
class Nested:
    """Set-valued child mapped to its own relation (FK on owner ord)."""

    tag: str
    table: str


@dataclass(frozen=True, slots=True)
class Wrapper:
    """A pure container child (mailbox, watches) holding one nested set."""

    tag: str
    nested: Nested
    presence_column: str | None = None


ChildSpec = Leaf | RefLeaf | FragLeaf | Struct | Nested | Wrapper


@dataclass(frozen=True, slots=True)
class EntitySpec:
    """One relation: the element it maps and its child layout in DTD order."""

    tag: str
    table: str
    attr_columns: tuple[tuple[str, str], ...] = ()
    children: tuple = ()
    extra_columns: tuple[str, ...] = ()  # e.g. item.region

    def iter_columns(self):
        """All data columns this spec contributes, in a stable order."""
        for _, column in self.attr_columns:
            yield column
        yield from self.extra_columns
        yield from _spec_columns(self.children)


def _spec_columns(children: tuple):
    for child in children:
        if isinstance(child, Leaf):
            yield child.column
        elif isinstance(child, RefLeaf):
            for _, column in child.attr_columns:
                yield column
        elif isinstance(child, FragLeaf):
            yield child.column
        elif isinstance(child, Struct):
            yield child.presence_column
            for _, column in child.attr_columns:
                yield column
            yield from _spec_columns(child.children)
        elif isinstance(child, Wrapper):
            if child.presence_column:
                yield child.presence_column
        # Nested contributes no columns to the owner.


_ANNOTATION = Struct(
    "annotation", "annotation_present", (),
    (
        RefLeaf("author", (("person", "annotation_author"),)),
        FragLeaf("description", "annotation_description"),
        Leaf("happiness", "annotation_happiness"),
    ),
)

ITEM = EntitySpec(
    "item", "item",
    (("id", "id"), ("featured", "featured")),
    (
        Leaf("location", "location"),
        Leaf("quantity", "quantity"),
        Leaf("name", "name"),
        Leaf("payment", "payment"),
        FragLeaf("description", "description"),
        Leaf("shipping", "shipping"),
        Nested("incategory", "incategory"),
        Wrapper("mailbox", Nested("mail", "mail")),
    ),
    extra_columns=("region",),
)

INCATEGORY = EntitySpec("incategory", "incategory", (("category", "category"),))

MAIL = EntitySpec(
    "mail", "mail", (),
    (
        Leaf("from", "from"),
        Leaf("to", "to"),
        Leaf("date", "date"),
        FragLeaf("text", "text"),
    ),
)

CATEGORY = EntitySpec(
    "category", "category", (("id", "id"),),
    (Leaf("name", "name"), FragLeaf("description", "description")),
)

EDGE = EntitySpec("edge", "edge", (("from", "from"), ("to", "to")))

PERSON = EntitySpec(
    "person", "person", (("id", "id"),),
    (
        Leaf("name", "name"),
        Leaf("emailaddress", "emailaddress"),
        Leaf("phone", "phone"),
        Struct(
            "address", "address_present", (),
            (
                Leaf("street", "address_street"),
                Leaf("city", "address_city"),
                Leaf("country", "address_country"),
                Leaf("province", "address_province"),
                Leaf("zipcode", "address_zipcode"),
            ),
        ),
        Leaf("homepage", "homepage"),
        Leaf("creditcard", "creditcard"),
        Struct(
            "profile", "profile_present", (("income", "profile_income"),),
            (
                Nested("interest", "interest"),
                Leaf("education", "profile_education"),
                Leaf("gender", "profile_gender"),
                Leaf("business", "profile_business"),
                Leaf("age", "profile_age"),
            ),
        ),
        Wrapper("watches", Nested("watch", "watch"), "watches_present"),
    ),
)

INTEREST = EntitySpec("interest", "interest", (("category", "category"),))

WATCH = EntitySpec("watch", "watch", (("open_auction", "open_auction"),))

OPEN_AUCTION = EntitySpec(
    "open_auction", "open_auction", (("id", "id"),),
    (
        Leaf("initial", "initial"),
        Leaf("reserve", "reserve"),
        Nested("bidder", "bidder"),
        Leaf("current", "current"),
        Leaf("privacy", "privacy"),
        RefLeaf("itemref", (("item", "itemref_item"),)),
        RefLeaf("seller", (("person", "seller_person"),)),
        _ANNOTATION,
        Leaf("quantity", "quantity"),
        Leaf("type", "type"),
        Struct(
            "interval", "interval_present", (),
            (Leaf("start", "interval_start"), Leaf("end", "interval_end")),
        ),
    ),
)

BIDDER = EntitySpec(
    "bidder", "bidder", (),
    (
        Leaf("date", "date"),
        Leaf("time", "time"),
        RefLeaf("personref", (("person", "personref_person"),)),
        Leaf("increase", "increase"),
    ),
)

CLOSED_AUCTION = EntitySpec(
    "closed_auction", "closed_auction", (),
    (
        RefLeaf("seller", (("person", "seller_person"),)),
        RefLeaf("buyer", (("person", "buyer_person"),)),
        RefLeaf("itemref", (("item", "itemref_item"),)),
        Leaf("price", "price"),
        Leaf("date", "date"),
        Leaf("quantity", "quantity"),
        Leaf("type", "type"),
        _ANNOTATION,
    ),
)

#: Every relation in the derived schema, keyed by table name.
ENTITY_SPECS: dict[str, EntitySpec] = {
    spec.table: spec
    for spec in (
        ITEM, INCATEGORY, MAIL, CATEGORY, EDGE, PERSON, INTEREST, WATCH,
        OPEN_AUCTION, BIDDER, CLOSED_AUCTION,
    )
}

#: Element tag -> table, for set-valued (table-mapped) elements.
TABLE_OF_TAG: dict[str, str] = {spec.tag: spec.table for spec in ENTITY_SPECS.values()}

#: Top-level container tags and the entity table each one holds.
CONTAINER_CONTENTS: dict[str, tuple[str, str | None]] = {
    # container -> (table, filter column) ; region containers filter items.
    "categories": ("category", None),
    "catgraph": ("edge", None),
    "people": ("person", None),
    "open_auctions": ("open_auction", None),
    "closed_auctions": ("closed_auction", None),
    "africa": ("item", "region"),
    "asia": ("item", "region"),
    "australia": ("item", "region"),
    "europe": ("item", "region"),
    "namerica": ("item", "region"),
    "samerica": ("item", "region"),
}
