"""Observability: tracing spans, the metrics registry, EXPLAIN/PROFILE.

Zero-dependency instrumentation threaded through every execution layer
— see docs/OBSERVABILITY.md for the span taxonomy, metric names, and
the trace JSON-lines schema.
"""

from repro.obs.explain import Explain, describe_compiled, explain_query
from repro.obs.metrics import (Counter, Gauge, Histogram, LatencySummary,
                               MetricsRegistry, percentile)
from repro.obs.querylog import QueryLogWriter, span_breakdown
from repro.obs.trace import (NULL_SPAN, NULL_TRACER, NullTracer, Span,
                             TraceLogWriter, TraceSampler, Tracer)

__all__ = [
    "Counter",
    "Explain",
    "Gauge",
    "Histogram",
    "LatencySummary",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "QueryLogWriter",
    "Span",
    "TraceLogWriter",
    "TraceSampler",
    "Tracer",
    "describe_compiled",
    "explain_query",
    "percentile",
    "span_breakdown",
]
