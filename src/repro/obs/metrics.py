"""Unified metrics registry: counters, gauges, histograms — bounded memory.

Every layer of the stack reports through one :class:`MetricsRegistry`:
the service records per-query latencies, the facade counts queries per
system (and per tenant), caches expose hit rates as gauges.  Design
points:

* **Bounded memory.**  Histograms keep a fixed-size ring of recent
  samples for percentile estimation while tracking exact totals
  (count/sum/min/max) forever — a long-running workload never grows the
  registry, yet ``completed`` counts stay exact.
* **Labels.**  Metrics are keyed by ``(name, sorted(labels))`` so one
  logical metric fans out per-system / per-shard / per-tenant without
  pre-registration.
* **Two exporters.**  :meth:`MetricsRegistry.snapshot` (JSON-ready
  dict) and :meth:`MetricsRegistry.render_text` (the one text formatter
  every CLI reports through).

``percentile`` and :class:`LatencySummary` live here (moved from
``repro.service.metrics``, which re-exports them for compatibility):
the linear-interpolation estimator is the registry's percentile engine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import BenchmarkError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencySummary",
    "MetricsRegistry",
    "percentile",
]

#: Default number of samples a histogram retains for percentiles.
DEFAULT_WINDOW = 2048


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    For a sorted sample ``x`` of size ``n`` the rank is
    ``r = q/100 * (n - 1)``; the estimate interpolates between
    ``x[floor(r)]`` and ``x[ceil(r)]``.
    """
    if not samples:
        raise BenchmarkError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise BenchmarkError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Latency distribution of one measurement window (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50.0),
            p95=percentile(samples, 95.0),
            p99=percentile(samples, 99.0),
            maximum=max(samples),
        )

    def as_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000.0, 3),
            "p50_ms": round(self.p50 * 1000.0, 3),
            "p95_ms": round(self.p95 * 1000.0, 3),
            "p99_ms": round(self.p99 * 1000.0, 3),
            "max_ms": round(self.maximum * 1000.0, 3),
        }


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "_lock", "_value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def export(self) -> int:
        return self.value


class Gauge:
    """Last-written value (cache sizes, hit rates, pool depths)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def export(self) -> float:
        return self.value


class Histogram:
    """Sample distribution over a fixed-size ring buffer.

    Totals (count, sum, min, max) are exact over the metric's whole
    lifetime; percentiles are estimated over the ``window`` most recent
    samples, so memory stays bounded no matter how long the workload
    runs.
    """

    __slots__ = ("name", "labels", "window", "_lock", "_ring", "_next",
                 "_count", "_sum", "_min", "_max")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple,
                 window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise BenchmarkError(f"histogram window must be >= 1: {window}")
        self.name = name
        self.labels = labels
        self.window = window
        self._lock = threading.Lock()
        self._ring: list[float] = []
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            if len(self._ring) < self.window:
                self._ring.append(value)
            else:
                self._ring[self._next] = value
                self._next = (self._next + 1) % self.window
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Total samples ever observed (not just those retained)."""
        with self._lock:
            return self._count

    @property
    def retained(self) -> int:
        """Samples currently held in the ring (<= window)."""
        with self._lock:
            return len(self._ring)

    def samples(self) -> list[float]:
        """Copy of the retained window (unordered)."""
        with self._lock:
            return list(self._ring)

    def summary(self) -> LatencySummary:
        """Exact count/mean/max over the lifetime, percentiles over the
        retained window."""
        with self._lock:
            retained = list(self._ring)
            count = self._count
            total = self._sum
            maximum = self._max
        if count == 0:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return LatencySummary(
            count=count,
            mean=total / count,
            p50=percentile(retained, 50.0),
            p95=percentile(retained, 95.0),
            p99=percentile(retained, 99.0),
            maximum=maximum if maximum is not None else 0.0,
        )

    def export(self) -> dict:
        return self.summary().as_dict()


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _render_name(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for every metric in one process.

    ``counter``/``gauge``/``histogram`` are idempotent for a given
    ``(name, labels)`` pair, so call sites never pre-register — the
    first caller creates, later callers reuse.
    """

    def __init__(self, *, histogram_window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}
        self.histogram_window = histogram_window

    def _get_or_create(self, kind: str, name: str, labels: dict, factory):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = factory(name, key[1])
            elif metric.kind != kind:
                raise BenchmarkError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}")
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(self, name: str, window: int | None = None,
                  **labels) -> Histogram:
        size = self.histogram_window if window is None else window
        return self._get_or_create(
            "histogram", name, labels,
            lambda metric_name, key: Histogram(metric_name, key, size))

    def metrics(self) -> list:
        """Every registered metric, sorted by rendered name."""
        with self._lock:
            registered = list(self._metrics.values())
        return sorted(registered,
                      key=lambda metric: _render_name(metric.name,
                                                      metric.labels))

    # -- exporters ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready export: ``{kind: {rendered_name: value}}``."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.metrics():
            rendered = _render_name(metric.name, metric.labels)
            out[metric.kind + "s"][rendered] = metric.export()
        return out

    def render_text(self) -> str:
        """The one text formatter every CLI reports through."""
        lines: list[str] = []
        for metric in self.metrics():
            rendered = _render_name(metric.name, metric.labels)
            if metric.kind == "histogram":
                summary = metric.export()
                detail = " ".join(f"{key}={summary[key]}"
                                  for key in ("count", "mean_ms", "p50_ms",
                                              "p95_ms", "p99_ms", "max_ms"))
                lines.append(f"{rendered} {detail}")
            elif metric.kind == "gauge":
                lines.append(f"{rendered} {round(metric.value, 4)}")
            else:
                lines.append(f"{rendered} {metric.value}")
        return "\n".join(lines)
