"""Tracing spans: where a query spends its time, as a tree.

A :class:`Tracer` produces trees of :class:`Span` objects — name,
monotonic start, duration, structured attributes, children — that every
execution layer (facade, service, planner, evaluator, scatter-gather,
update engine) feeds while a query runs.  The design constraints:

* **Zero dependencies, near-zero cost when off.**  The disabled path is
  the shared :data:`NULL_TRACER` / :data:`NULL_SPAN` singletons whose
  methods are no-ops; hot loops additionally guard on
  ``tracer.enabled`` so the instrumentation costs one attribute read.
* **Implicit parenting on one thread, explicit across threads.**
  ``tracer.span(name)`` is a context manager that parents under the
  thread-local current span.  Worker threads (service pool, scatter
  pool) have an empty stack, so cross-thread children are created with
  ``tracer.begin(name, parent=...)`` and finished manually — the attach
  happens under the tracer lock.
* **Bounded retention.**  Finished root spans land in a fixed-size
  deque (``keep``); an optional ``on_root`` sink receives each finished
  root, which is how JSON-lines trace logs are written.

Span trees serialize to plain dicts (:meth:`Span.to_dict`) — the
JSON-lines workload-log schema the future ``repro.tuning`` module will
ingest; see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from contextlib import contextmanager, nullcontext
from time import perf_counter
from zlib import crc32

from repro.rng.lcg import Lcg48

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceLogWriter",
    "TraceSampler",
    "Tracer",
]

#: JSON-lines trace-log schema version (one root-span dict per line).
TRACE_SCHEMA_VERSION = 1


class Span:
    """One timed node in a trace tree."""

    __slots__ = ("name", "attrs", "start", "duration", "children",
                 "_tracer", "_is_root", "_on_stack")

    def __init__(self, name: str, attrs: dict, start: float, tracer,
                 *, is_root: bool, on_stack: bool) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.duration: float | None = None
        self.children: list[Span] = []
        self._tracer = tracer
        self._is_root = is_root
        self._on_stack = on_stack

    # -- lifecycle ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def set(self, **attrs) -> "Span":
        """Attach structured attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def finish(self) -> "Span":
        """Record the duration (idempotent) and hand roots to the tracer."""
        if self.duration is None:
            self.duration = perf_counter() - self.start
            tracer = self._tracer
            if tracer is not None and self._is_root:
                tracer._record_root(self)
        return self

    def discard(self) -> "Span":
        """Finish without retention: the duration is set (children and
        attributes stay inspectable through a held reference) but a root
        is *not* recorded in ``tracer.roots`` and never reaches the
        ``on_root`` sink.  This is how head sampling drops a trace after
        measuring it — see :class:`TraceSampler`."""
        if self.duration is None:
            self.duration = perf_counter() - self.start
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._on_stack:
            self._tracer._pop(self)
        self.finish()

    # -- navigation --------------------------------------------------------

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (including self)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree, document order."""
        return [span for span in self.walk() if span.name == name]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (the trace JSON-lines record payload)."""
        return {
            "name": self.name,
            "start": round(self.start, 6),
            "duration_ms": (None if self.duration is None
                            else round(self.duration * 1000.0, 4)),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from its :meth:`to_dict` form.

        The result is *detached*: it belongs to no tracer, is already
        finished (when the dict carried a duration), and exists only to
        be navigated, rendered, or grafted into another tree — this is
        how a serialized server-side subtree from an execute/fetch reply
        joins the client's trace (docs/OBSERVABILITY.md).
        """
        span = cls(str(data.get("name", "?")), dict(data.get("attrs") or {}),
                   float(data.get("start") or 0.0), None,
                   is_root=False, on_stack=False)
        duration_ms = data.get("duration_ms")
        if duration_ms is not None:
            span.duration = float(duration_ms) / 1000.0
        span.children = [cls.from_dict(child)
                         for child in data.get("children") or ()]
        return span

    def render(self, *, indent: int = 0) -> str:
        """Human-readable tree, one span per line."""
        lines: list[str] = []
        self._render_into(lines, indent)
        return "\n".join(lines)

    def _render_into(self, lines: list[str], depth: int) -> None:
        took = ("..." if self.duration is None
                else f"{self.duration * 1000.0:.3f}ms")
        attrs = ""
        if self.attrs:
            attrs = " " + " ".join(f"{key}={value!r}"
                                   for key, value in self.attrs.items())
        lines.append(f"{'  ' * depth}{self.name} [{took}]{attrs}")
        for child in self.children:
            child._render_into(lines, depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, children={len(self.children)}, "
                f"duration={self.duration})")


class _NullSpan:
    """Shared no-op span: every mutation is swallowed, every query empty."""

    __slots__ = ()

    name = "null"
    attrs: dict = {}
    start = 0.0
    duration = 0.0
    children: tuple = ()
    finished = True

    def set(self, **attrs) -> "_NullSpan":
        return self

    def finish(self) -> "_NullSpan":
        return self

    def discard(self) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> list:
        return []

    def to_dict(self) -> dict:
        return {"name": "null", "start": 0.0, "duration_ms": 0.0,
                "attrs": {}, "children": []}

    def render(self, *, indent: int = 0) -> str:
        return ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()

#: Reusable no-op context manager (``contextlib.nullcontext`` is re-enterable).
_NULL_CONTEXT = nullcontext()


class NullTracer:
    """Disabled tracer: every call is a no-op returning shared singletons."""

    __slots__ = ()

    enabled = False

    @property
    def roots(self) -> tuple:
        return ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def begin(self, name: str, parent=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def activate(self, span):
        return _NULL_CONTEXT

    def suppressed(self):
        return _NULL_CONTEXT

    def new_trace_id(self) -> str:
        return "0" * 12

    def current(self) -> None:
        return None

    def __repr__(self) -> str:
        # The shared singleton is a default argument across the public
        # API; a stable repr keeps docs/PUBLIC_API.txt deterministic.
        return "NULL_TRACER"


NULL_TRACER = NullTracer()


class _Activation:
    """Context manager that pushes a span on the stack without finishing it."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)


class Tracer:
    """Produces span trees with thread-local context propagation.

    Parameters
    ----------
    keep:
        How many finished root spans to retain (bounded deque).
    on_root:
        Optional callable invoked with each finished root span — the
        hook :class:`TraceLogWriter` plugs into.
    """

    enabled = True

    def __init__(self, *, keep: int = 64, on_root=None) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: deque[Span] = deque(maxlen=keep)
        self.on_root = on_root
        self._ids = Lcg48(crc32(repr(id(self)).encode()) ^ os.getpid())

    # -- span creation -----------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Start a span parented under the thread's current span.

        Use as a context manager: exiting pops it from the thread-local
        stack and finishes it.  Under :meth:`suppressed` the shared
        :data:`NULL_SPAN` comes back instead and nothing is recorded.
        """
        if getattr(self._local, "suppress", 0):
            return NULL_SPAN
        span = Span(name, attrs, perf_counter(), self,
                    is_root=self.current() is None, on_stack=True)
        self._attach(span)
        self._push(span)
        return span

    def begin(self, name: str, parent: Span | None = None, **attrs) -> Span:
        """Start a manually-finished span.

        Not pushed on any stack — the caller owns its lifetime and must
        call :meth:`Span.finish`.  ``parent`` may name a span owned by
        another thread (scatter workers attach to the caller's root);
        when omitted, the creating thread's current span is used, and a
        span with no parent at all becomes a root.  Under
        :meth:`suppressed` the shared :data:`NULL_SPAN` comes back.
        """
        if getattr(self._local, "suppress", 0):
            return NULL_SPAN
        if parent is None:
            parent = self.current()
        span = Span(name, attrs, perf_counter(), self,
                    is_root=parent is None, on_stack=False)
        if parent is not None:
            with self._lock:
                parent.children.append(span)
        return span

    def activate(self, span: Span | None):
        """Context manager making ``span`` the thread's current span.

        Unlike :meth:`span`'s context manager this neither creates nor
        finishes anything — it only scopes implicit parenting, so a
        manually-managed root (e.g. one that outlives the call because a
        streaming cursor finishes it later) can adopt children.
        """
        if span is None or isinstance(span, _NullSpan):
            return _NULL_CONTEXT
        return _Activation(self, span)

    @contextmanager
    def suppressed(self):
        """Scope in which this thread records nothing.

        ``tracer.enabled`` stays True (hot-path guards are untouched) but
        :meth:`span` and :meth:`begin` return :data:`NULL_SPAN`, so no
        span objects are allocated, attached, or retained.  This is the
        per-request off-switch head sampling uses: the wire server wraps
        an unsampled request's handler in it, and the served database's
        instrumentation — which is shared by all requests and cannot be
        toggled globally — goes quiet for exactly that execution.
        Re-entrant (a counter, not a flag) and per-thread.
        """
        self._local.suppress = getattr(self._local, "suppress", 0) + 1
        try:
            yield
        finally:
            self._local.suppress -= 1

    def new_trace_id(self) -> str:
        """A fresh 12-hex-digit trace id for wire context propagation."""
        with self._lock:
            return f"{self._ids.next_raw():012x}"

    # -- context stack -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def _attach(self, span: Span) -> None:
        parent = self.current()
        if parent is not None:
            with self._lock:
                parent.children.append(span)

    # -- finished roots ----------------------------------------------------

    @property
    def roots(self) -> tuple[Span, ...]:
        """Finished root spans, oldest first (bounded by ``keep``)."""
        with self._lock:
            return tuple(self._roots)

    def _record_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)
        if self.on_root is not None:
            self.on_root(span)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


class TraceSampler:
    """Deterministic head sampling with an always-keep slow/error tail.

    Head decision: each tenant gets its own :class:`~repro.rng.lcg.Lcg48`
    stream seeded from ``seed`` and a CRC of the tenant name, so the
    kept-set is reproducible across runs and independent of request
    interleaving between tenants.  ``per_tenant`` overrides the default
    ``rate`` for named tenants.

    Tail decision: :meth:`keep` upgrades an unsampled trace to kept when
    it errored or ran at least ``slow_ms`` — the slow-query rule that
    lets a server trace at ``rate=0.01`` and still capture every outlier.
    """

    __slots__ = ("rate", "per_tenant", "slow_ms", "_seed", "_streams",
                 "_lock")

    def __init__(self, rate: float = 1.0, *, per_tenant=None,
                 slow_ms: float | None = None, seed: int = 20020820) -> None:
        self.rate = float(rate)
        self.per_tenant = dict(per_tenant or {})
        self.slow_ms = slow_ms
        self._seed = int(seed)
        self._streams: dict[str, Lcg48] = {}
        self._lock = threading.Lock()

    def rate_for(self, tenant: str) -> float:
        return float(self.per_tenant.get(tenant, self.rate))

    def sample(self, tenant: str) -> bool:
        """The head decision: trace this request from the start?"""
        rate = self.rate_for(tenant)
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        with self._lock:
            stream = self._streams.get(tenant)
            if stream is None:
                stream = Lcg48((self._seed + crc32(tenant.encode("utf-8")))
                               & 0xFFFFFFFFFFFF)
                self._streams[tenant] = stream
            return stream.next_double() < rate

    def keep(self, sampled: bool, duration_ms: float,
             error: bool = False) -> bool:
        """The tail decision, once the duration and outcome are known."""
        if sampled or error:
            return True
        return self.slow_ms is not None and duration_ms >= self.slow_ms


class _JsonLinesSink:
    """Locked JSON-lines appender with size-bounded rotation.

    When ``max_bytes`` is set and a write would leave the file past it,
    the file rotates first: ``path`` → ``path.1`` → … → ``path.<keep>``
    (oldest dropped), then a fresh ``path`` is opened.  Rotation is by
    whole lines — a record never straddles two files.
    """

    __slots__ = ("path", "max_bytes", "keep", "_lock", "_handle", "_size")

    def __init__(self, path, *, max_bytes: int | None = None,
                 keep: int = 3) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self.keep = max(1, int(keep))
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")
        self._size = self._handle.tell()

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._handle.closed:
                return
            if (self.max_bytes is not None and self._size > 0
                    and self._size + len(line) > self.max_bytes):
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += len(line)

    def _rotate(self) -> None:
        self._handle.close()
        for index in range(self.keep - 1, 0, -1):
            older = f"{self.path}.{index}"
            if os.path.exists(older):
                os.replace(older, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class TraceLogWriter:
    """Append finished root spans to a JSON-lines workload log.

    One line per root span tree: ``{"v": 1, "span": {...}}`` — the
    input format the future ``repro.tuning`` module ingests.  Plug an
    instance into ``Tracer(on_root=...)``; writes are serialized by an
    internal lock so multi-threaded services can share one writer.
    ``max_bytes``/``keep`` bound the sink on disk (see
    :class:`_JsonLinesSink`); by default it grows without rotation.
    """

    def __init__(self, path, *, max_bytes: int | None = None,
                 keep: int = 3) -> None:
        self._sink = _JsonLinesSink(path, max_bytes=max_bytes, keep=keep)

    @property
    def path(self):
        return self._sink.path

    def __call__(self, span: Span) -> None:
        self._sink.write({"v": TRACE_SCHEMA_VERSION, "span": span.to_dict()})

    def close(self) -> None:
        self._sink.close()
