"""Structured per-query workload log: JSON lines, one record per query.

This is the machine-readable counterpart of the trace log: where
``TraceLogWriter`` keeps the full span tree for sampled queries, the
query log keeps one flat, schema-versioned record for *every* query —
cheap enough to stay on permanently, and the designated input format for
the future ``repro.tuning`` workload advisor (ROADMAP: "self-tuning:
workload-driven index and shard advisor").

Record shape (schema v1; fields with no value for a given query are
omitted rather than nulled)::

    {"v": 1, "ts": 1754637.123, "source": "server",
     "tenant": "acme", "system": "D", "query": 8, "query_text": "...",
     "rows": 17, "duration_ms": 1.84,
     "plan_ms": 0.21, "scan_ms": 1.40, "merge_ms": 0.0, "wire_ms": 0.23,
     "index_probes": 12, "access_paths": ["sorted_numeric"],
     "plan_cache_hit": true, "result_cache_hit": false,
     "busy": 0, "error": null_or_code}

The latency breakdown and access-path fields come from
:func:`span_breakdown` when a trace was sampled for the query; unsampled
queries still log identity, outcome, caches, and total latency.

See docs/OBSERVABILITY.md ("Query log schema") for the field table.
"""

from __future__ import annotations

from time import time

from repro.obs.trace import _JsonLinesSink

__all__ = ["QUERY_LOG_SCHEMA_VERSION", "QueryLogWriter", "span_breakdown"]

QUERY_LOG_SCHEMA_VERSION = 1

#: Span names whose self-duration is the "scan" share of a query: actual
#: data-touching execution, eager or streaming, embedded or per-shard.
_SCAN_SPANS = frozenset(("evaluator.eval", "evaluator.stream",
                         "scatter.shard"))


def span_breakdown(span) -> dict:
    """Fold a finished span tree into the query-log latency breakdown.

    Returns ``plan_ms`` / ``scan_ms`` / ``merge_ms`` (summed over the
    tree, so a sharded query's per-shard scans accumulate), the total
    ``index_probes`` count, and the ordered list of ``access_paths``
    kinds the planner chose.  The caller owns ``wire_ms`` — it is the
    covering request's duration minus this tree's root duration, a fact
    only the transport layer knows.
    """
    plan_ms = scan_ms = merge_ms = 0.0
    index_probes = 0
    access_paths: list[str] = []
    for node in span.walk():
        duration = node.duration
        ms = duration * 1000.0 if duration is not None else 0.0
        name = node.name
        if name == "plan":
            plan_ms += ms
        elif name in _SCAN_SPANS:
            scan_ms += ms
            index_probes += int(node.attrs.get("index_probes", 0) or 0)
        elif name == "scatter.merge":
            merge_ms += ms
        elif name == "plan.access_path":
            access_paths.append(str(node.attrs.get("kind", "?")))
    breakdown = {"plan_ms": round(plan_ms, 4), "scan_ms": round(scan_ms, 4),
                 "merge_ms": round(merge_ms, 4)}
    if index_probes:
        breakdown["index_probes"] = index_probes
    if access_paths:
        breakdown["access_paths"] = access_paths
    return breakdown


class QueryLogWriter:
    """Append one JSON line per completed query (see module docstring).

    Thread-safe, schema-versioned (every record carries
    ``"v": QUERY_LOG_SCHEMA_VERSION``), and size-bounded the same way
    the trace log is: ``max_bytes``/``keep`` rotate ``path`` →
    ``path.1`` → … with whole-line granularity.
    """

    def __init__(self, path, *, max_bytes: int | None = None,
                 keep: int = 3) -> None:
        self._sink = _JsonLinesSink(path, max_bytes=max_bytes, keep=keep)

    @property
    def path(self):
        return self._sink.path

    def record(self, *, source: str, span=None, **fields) -> None:
        """Write one query record.

        ``source`` says which layer logged it (``"server"``,
        ``"service"``).  When ``span`` is a finished trace root its
        :func:`span_breakdown` fields merge into the record.  ``None``
        values in ``fields`` are dropped — absent means "not measured",
        and the schema stays greppable.
        """
        record = {"v": QUERY_LOG_SCHEMA_VERSION, "ts": round(time(), 3),
                  "source": source}
        if span is not None and getattr(span, "finished", False):
            record.update(span_breakdown(span))
        record.update((key, value) for key, value in fields.items()
                      if value is not None)
        self._sink.write(record)

    __call__ = record

    def close(self) -> None:
        self._sink.close()
