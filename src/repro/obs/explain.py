"""EXPLAIN: render the chosen plan without executing anything.

``Session.explain(query)`` lands here.  The output answers the three
questions the paper's per-system analysis asks of every query:

* **Which access structures serve it?**  The planner's
  :class:`~repro.xquery.planner.CompiledQuery` already records every
  access-path / join / range decision (including the est-vs-scan row
  counts that won each probe); EXPLAIN renders them.
* **How does it route across shards?**  On the sharded pseudo-system
  the :class:`~repro.shard.scatter.ScatterGatherExecutor` names its
  distributed plan kind (routed / partial_count / broadcast_join /
  scatter_flwor / fallback) and the fan-out width.
* **Where will streaming stall?**  A static AST walk predicts the
  evaluator's documented materialization barriers — ``order by``
  FLWORs, self-axis filter steps, index-bounded range FLWORs — so a
  cursor consumer knows whether first-row latency will be O(1).

PROFILE is the runtime twin: ``cursor.profile()`` returns the recorded
span tree (see :mod:`repro.obs.trace`); tests assert the two agree.
"""

from __future__ import annotations

from repro.xquery import ast

__all__ = ["Explain", "describe_compiled", "explain_query",
           "predict_barriers"]


def predict_barriers(query: ast.Query,
                     range_plans: dict | None = None) -> list[str]:
    """Static prediction of the streaming pipeline's materialization
    barriers, one human-readable entry per site (document order-ish)."""
    barriers: list[str] = []
    for node in ast.walk(query):
        if isinstance(node, ast.FLWOR):
            if node.order:
                barriers.append("order-by FLWOR (rows sort before emit)")
            elif range_plans and range_plans.get(id(node)) is not None:
                barriers.append("range-plan FLWOR (index probe materializes)")
        elif isinstance(node, ast.Step) and node.axis == "self":
            barriers.append("self-axis filter (positional over the "
                            "whole sequence)")
    return barriers


def _describe_path_plan(plan) -> dict:
    out = {"kind": plan.kind}
    if plan.kind == "id_lookup":
        out["id"] = plan.id_value
    elif plan.kind == "path_index":
        out["prefix"] = "/".join(plan.prefix)
        out["source"] = plan.source
    elif plan.kind in ("value_probe", "range_probe"):
        out["prefix"] = "/".join(plan.prefix)
        out["accessor"] = "/".join(plan.accessor)
        if plan.kind == "value_probe":
            out["value"] = plan.probe_value
        else:
            out["op"] = plan.op
            out["bound"] = plan.bound
        out["est_rows"] = plan.est_rows
        out["scan_rows"] = plan.scan_rows
    return out


def _describe_join_plan(plan) -> dict:
    return {
        "strategy": plan.strategy,
        "op": plan.op,
        "inner_var": plan.inner_var,
        "index_kind": plan.index_kind,
        "index_path": "/".join(plan.index_path),
        "index_accessor": "/".join(plan.index_accessor),
    }


def _describe_range_plan(plan) -> dict:
    return {
        "var": plan.var,
        "path": "/".join(plan.path),
        "accessor": "/".join(plan.accessor),
        "op": plan.op,
        "bound": plan.bound,
        "est_rows": plan.est_rows,
        "scan_rows": plan.scan_rows,
    }


def describe_compiled(compiled) -> dict:
    """The planner's decisions for one compiled query, as plain data."""
    indexed = [_describe_path_plan(plan)
               for plan in compiled.path_plans.values()
               if plan.kind != "steps"]
    scans = sum(1 for plan in compiled.path_plans.values()
                if plan.kind == "steps")
    return {
        "optimizer": compiled.profile.optimizer,
        "access_paths": indexed,
        "plain_scans": scans,
        "joins": [_describe_join_plan(plan)
                  for plan in compiled.join_plans.values()],
        "ranges": [_describe_range_plan(plan)
                   for plan in compiled.range_plans.values()],
        "plans_considered": compiled.plans_considered,
        "metadata_accesses": compiled.metadata_accesses,
        "warnings": list(compiled.warnings),
        "barriers": predict_barriers(compiled.query, compiled.range_plans),
    }


class Explain:
    """A rendered plan: dict via :meth:`as_dict`, text via ``str()``."""

    def __init__(self, data: dict) -> None:
        self._data = data

    def as_dict(self) -> dict:
        return dict(self._data)

    def __getitem__(self, key: str):
        return self._data[key]

    def render(self) -> str:
        data = self._data
        lines = [f"EXPLAIN system={data['system']} mode={data['mode']}"]
        shard = data.get("shard")
        if shard is not None:
            lines.append(f"  distributed plan: {shard['kind']} over "
                         f"{shard['shards']} shard(s) "
                         f"[{'/'.join(shard['backends'])}]")
        plan = data.get("plan")
        if plan is not None:
            lines.append(f"  optimizer: {plan['optimizer']} "
                         f"(plans considered: {plan['plans_considered']}, "
                         f"metadata accesses: {plan['metadata_accesses']})")
            for access in plan["access_paths"]:
                detail = " ".join(f"{key}={value}"
                                  for key, value in access.items()
                                  if key != "kind")
                lines.append(f"  access path: {access['kind']} {detail}")
            if plan["plain_scans"]:
                lines.append(f"  plain scans: {plan['plain_scans']}")
            for join in plan["joins"]:
                index = (f" via {join['index_kind']} index"
                         if join["index_kind"] else " (per-query build)")
                lines.append(f"  join: {join['strategy']} on "
                             f"{join['op']}{index}")
            for rng in plan["ranges"]:
                lines.append(f"  range: ${rng['var']} in /{rng['path']} "
                             f"where {rng['accessor']} {rng['op']} "
                             f"{rng['bound']} "
                             f"(est {rng['est_rows']} vs scan "
                             f"{rng['scan_rows']})")
            for barrier in plan["barriers"]:
                lines.append(f"  streaming barrier: {barrier}")
            if not plan["barriers"]:
                lines.append("  streaming barrier: none (fully pipelined)")
            for warning in plan["warnings"]:
                lines.append(f"  warning: {warning}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Explain({self._data['system']!r}, {self._data['mode']!r})"


def explain_query(database, system: str | None, query) -> Explain:
    """Build the EXPLAIN for one query on one connection — no execution,
    no caches touched (compiles fresh against the live store)."""
    from repro.benchmark.systems import get_profile
    from repro.xquery.planner import compile_query

    name = database.resolve_system(system)
    text = database.query_text(query)
    data: dict = {"system": name, "query": text}

    if name == database.shard_system:
        executor = (database.service._shard_executor
                    if database.service is not None else database._scatter)
        sharded = database.store(name)
        data["mode"] = "scatter"
        data["shard"] = {
            "kind": executor.explain(text),
            "shards": sharded.shard_count,
            "backends": list(sharded.backends),
        }
        compiled = compile_query(text, sharded, _sharded_profile())
        data["plan"] = describe_compiled(compiled)
        return Explain(data)

    data["mode"] = "service" if database.service is not None else "direct"
    store = database.store(name)
    compiled = compile_query(text, store, get_profile(name))
    data["plan"] = describe_compiled(compiled)
    return Explain(data)


def _sharded_profile():
    from repro.shard.scatter import SHARDED_PROFILE
    return SHARDED_PROFILE
