"""Shared project model for the ``xmark lint`` static-analysis passes.

Every rule in :mod:`repro.analyze.rules` runs over one :class:`Project`:
a parsed view of the source tree holding

* the **module graph** — every module under the analysis root, its AST,
  its import aliases, and its ``# lint: ok(...)`` suppression comments;
* the **class/attr table** — classes with their methods, resolved base
  classes, and the ``self.attr = ClassName(...)`` attribute types
  harvested from ``__init__`` (used to resolve ``self.cache.put(...)``
  style calls across classes);
* the **lock registry** — every ``threading.Lock`` / ``RLock`` /
  ``Semaphore`` / ``BoundedSemaphore`` allocation site, keyed by its
  owning class attribute (or module global), including collection sites
  such as ``self._gates = [threading.BoundedSemaphore(n) for ...]``;
* per-function **summaries** — a lexical timeline walk of each function
  recording lock acquisitions, call sites, ``self.*`` writes, awaits and
  yields, each tagged with the set of registry locks held at that point.

The model is zero-dependency (stdlib ``ast`` only) and deliberately
over-approximates: rules own the judgement calls, the model only
answers "what does the code do, and under which locks".
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "LOCK_FACTORIES",
    "MUTATOR_METHODS",
    "Suppression",
    "LockInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallSite",
    "FunctionSummary",
    "Project",
    "build_lock_graph",
    "find_lock_cycles",
    "dotted_name",
]

#: ``threading`` factory callables whose results the lock registry tracks.
LOCK_FACTORIES = ("Lock", "RLock", "Semaphore", "BoundedSemaphore")

#: Method names that mutate their receiver in place — a call to
#: ``self.attr.append(...)`` counts as a write to ``attr``.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "update",
    "move_to_end", "sort", "reverse",
})

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ok\(\s*([A-Za-z0-9_-]+)\s*\)\s*(?:[-—–:]+\s*(\S.*?))?\s*$")


@dataclass(frozen=True)
class Suppression:
    """One inline ``# lint: ok(rule-id) — reason`` marker."""

    rule: str
    reason: str
    comment_line: int


@dataclass(frozen=True)
class LockInfo:
    """One lock allocation site from the registry."""

    lock_id: str          #: stable id, ``module:Class.attr`` or ``module:NAME``
    kind: str             #: Lock | RLock | Semaphore | BoundedSemaphore
    module: str           #: dotted module holding the allocation
    path: str             #: repo-relative posix path
    line: int             #: allocation line (the factory call)
    owner: str | None     #: owning class name, None for module globals
    attr: str             #: attribute / global name the lock is bound to
    collection: bool      #: allocated inside a list/dict/set display or comp


@dataclass
class ClassInfo:
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict)
    locks: dict[str, LockInfo] = field(default_factory=dict)
    attr_types: dict[str, tuple[str, str]] = field(default_factory=dict)
    init_attrs: set[str] = field(default_factory=set)

    @property
    def qualname(self) -> str:
        return f"{self.module.name}:{self.name}"

    def mro(self, project: "Project") -> Iterator["ClassInfo"]:
        """This class followed by its resolvable bases, depth-first."""
        seen: set[str] = set()
        stack: list[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            yield cls
            for base in cls.base_names:
                resolved = project.resolve_class(cls.module, base)
                if resolved is not None:
                    stack.append(resolved)

    def find_lock(self, project: "Project", attr: str) -> LockInfo | None:
        for cls in self.mro(project):
            if attr in cls.locks:
                return cls.locks[attr]
        return None

    def all_locks(self, project: "Project") -> dict[str, LockInfo]:
        merged: dict[str, LockInfo] = {}
        for cls in self.mro(project):
            for attr, lock in cls.locks.items():
                merged.setdefault(attr, lock)
        return merged

    def find_method(self, project: "Project", name: str):
        """Resolve a method to ``(defining ClassInfo, node)`` or None."""
        for cls in self.mro(project):
            if name in cls.methods:
                return cls, cls.methods[name]
        return None

    def find_attr_type(self, project: "Project", attr: str):
        for cls in self.mro(project):
            if attr in cls.attr_types:
                return cls.attr_types[attr]
        return None


@dataclass
class ModuleInfo:
    name: str                    #: dotted module name
    path: Path                   #: absolute source path
    rel: str                     #: path relative to the analysis root
    tree: ast.Module
    source_lines: list[str]
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict)
    module_locks: dict[str, LockInfo] = field(default_factory=dict)
    #: code line -> suppressions that apply to findings on that line
    suppressions: dict[int, list[Suppression]] = field(default_factory=dict)

    def suppression_for(self, line: int, rule: str) -> Suppression | None:
        for sup in self.suppressions.get(line, ()):  # pragma: no branch
            if sup.rule == rule:
                return sup
        return None


@dataclass
class CallSite:
    line: int
    held: frozenset[str]
    name: str                 #: dotted textual form, e.g. ``time.sleep``
    node: ast.Call
    callee: str | None = None  #: resolved summary qualname, if any


@dataclass
class FunctionSummary:
    qualname: str             #: ``module:Class.method`` or ``module:func``
    module: ModuleInfo
    cls: ClassInfo | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    decorators: set[str] = field(default_factory=set)
    #: (lock_id, line, locks already held when acquiring)
    acquisitions: list[tuple[str, int, frozenset[str]]] = field(
        default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: (attr, line, held, node) — assignments / in-place mutations of self.attr
    self_writes: list[tuple[str, int, frozenset[str], ast.AST]] = field(
        default_factory=list)
    awaits: list[tuple[int, frozenset[str]]] = field(default_factory=list)
    yields: list[tuple[int, frozenset[str]]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` textual form of an attribute/name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Call):
        inner = dotted_name(node.func)
        return f"{inner}()" if inner else None
    return None


def _harvest_suppressions(lines: list[str]) -> dict[int, list[Suppression]]:
    """Map code lines to the ``# lint: ok(...)`` markers covering them.

    A marker on a code line covers that line; a marker on a comment-only
    line covers the next line that carries code.
    """
    out: dict[int, list[Suppression]] = {}
    pending: list[Suppression] = []
    for idx, raw in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(raw)
        stripped = raw.strip()
        is_comment_only = stripped.startswith("#")
        if match:
            sup = Suppression(rule=match.group(1),
                              reason=(match.group(2) or "").strip(),
                              comment_line=idx)
            if is_comment_only:
                pending.append(sup)
            else:
                out.setdefault(idx, []).append(sup)
                for p in pending:
                    out.setdefault(idx, []).append(p)
                pending = []
        elif stripped and not is_comment_only:
            if pending:
                for p in pending:
                    out.setdefault(idx, []).append(p)
                pending = []
    return out


class _FunctionWalker(ast.NodeVisitor):
    """Lexical timeline walk of one function body.

    Tracks the set of registry locks held at each point (``with lock:``
    blocks scope-exactly; bare ``.acquire()`` / ``.release()`` calls are
    tracked in statement order, which matches the ``acquire(); try: ...
    finally: release()`` idiom used throughout the tree).
    """

    def __init__(self, project: "Project", summary: FunctionSummary) -> None:
        self.project = project
        self.summary = summary
        self.held: set[str] = set()
        self.aliases: dict[str, str] = {}   # local name -> lock_id

    # -- lock expression resolution ------------------------------------

    def resolve_lock(self, node: ast.expr) -> LockInfo | None:
        cls = self.summary.cls
        module = self.summary.module
        if isinstance(node, ast.Subscript):
            node = node.value
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and cls is not None):
            return cls.find_lock(self.project, node.attr)
        if isinstance(node, ast.Name):
            if node.id in self.aliases:
                return self.project.locks.get(self.aliases[node.id])
            lock = module.module_locks.get(node.id)
            if lock is not None:
                return lock
            target = module.imports.get(node.id)
            if target is not None:
                return self.project.lock_by_target(target)
        return None

    # -- traversal ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.summary.node:
            for stmt in node.body:
                self.visit(stmt)
        # nested defs run on other timelines (worker pool, callbacks):
        # they are summarised separately and not folded into this one.

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_With(self, node: ast.With | ast.AsyncWith) -> None:
        entered: list[str] = []
        for item in node.items:
            lock = self.resolve_lock(item.context_expr)
            if lock is not None:
                self.summary.acquisitions.append(
                    (lock.lock_id, item.context_expr.lineno,
                     frozenset(self.held)))
                if lock.lock_id not in self.held:
                    self.held.add(lock.lock_id)
                    entered.append(lock.lock_id)
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for lock_id in entered:
            self.held.discard(lock_id)

    visit_AsyncWith = visit_With

    def _lock_method_call(self, call: ast.Call) -> bool:
        """Record ``lock.acquire()`` / ``lock.release()`` timelines."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in ("acquire", "release"):
            return False
        lock = self.resolve_lock(func.value)
        if lock is None:
            return False
        if func.attr == "acquire":
            self.summary.acquisitions.append(
                (lock.lock_id, call.lineno, frozenset(self.held)))
            self.held.add(lock.lock_id)
        else:
            self.held.discard(lock.lock_id)
        return True

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            lock = self.resolve_lock(node.value)
            if lock is not None:
                self.aliases[node.targets[0].id] = lock.lock_id
        for target in node.targets:
            self._record_write_target(target, node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self._record_write_target(node.target, node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self._record_write_target(node.target, node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write_target(target, node)

    def _record_write_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write_target(elt, node)
            return
        if isinstance(target, ast.Subscript):
            target = target.value
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            self.summary.self_writes.append(
                (target.attr, node.lineno, frozenset(self.held), node))

    def visit_Call(self, node: ast.Call) -> None:
        if self._lock_method_call(node):
            for arg in node.args:
                self.visit(arg)
            return
        func = node.func
        # self.attr.append(...)-style in-place mutation counts as a write
        if (isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS):
            base = func.value
            if isinstance(base, ast.Subscript):
                base = base.value
            if (isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"):
                self.summary.self_writes.append(
                    (base.attr, node.lineno, frozenset(self.held), node))
        name = dotted_name(func)
        self.summary.calls.append(CallSite(
            line=node.lineno, held=frozenset(self.held),
            name=name or "<dynamic>", node=node))
        self.generic_visit(node)

    def visit_Await(self, node: ast.Await) -> None:
        self.summary.awaits.append((node.lineno, frozenset(self.held)))
        self.visit(node.value)

    def visit_Yield(self, node: ast.Yield) -> None:
        self.summary.yields.append((node.lineno, frozenset(self.held)))
        if node.value is not None:
            self.visit(node.value)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.summary.yields.append((node.lineno, frozenset(self.held)))
        self.visit(node.value)


class Project:
    """The parsed source tree all rules share."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.locks: dict[str, LockInfo] = {}
        self.summaries: dict[str, FunctionSummary] = {}
        self._may_acquire: dict[str, frozenset[str]] | None = None

    # -- loading --------------------------------------------------------

    @classmethod
    def load(cls, root: Path | str, package: str | None = None) -> "Project":
        """Parse every ``*.py`` under *root*.

        *root* is a source root: module names derive from the path
        relative to it (``src`` layout callers pass ``src``).  When
        *package* is given only files under that top-level package are
        loaded.
        """
        root = Path(root).resolve()
        project = cls(root)
        paths = sorted(root.rglob("*.py"))
        for path in paths:
            rel = path.relative_to(root)
            parts = list(rel.with_suffix("").parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            if package is not None and (not parts or parts[0] != package):
                continue
            name = ".".join(parts) if parts else package or rel.stem
            project._load_module(name, path, rel.as_posix())
        project._link()
        return project

    def _load_module(self, name: str, path: Path, rel: str) -> None:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        module = ModuleInfo(
            name=name, path=path, rel=rel, tree=tree,
            source_lines=source.splitlines(),
            suppressions=_harvest_suppressions(source.splitlines()))
        self._harvest_imports(module)
        self._harvest_defs(module)
        self.modules[name] = module

    @staticmethod
    def _harvest_imports(module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports[alias.asname or alias.name.split(".")[0]] \
                        = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:
                    # resolve "from .x import y" against the module package
                    pkg_parts = module.name.split(".")
                    pkg_parts = pkg_parts[:len(pkg_parts) - node.level]
                    base = ".".join(pkg_parts + [node.module])
                for alias in node.names:
                    module.imports[alias.asname or alias.name] = \
                        f"{base}.{alias.name}"

    def _harvest_defs(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(name=node.name, module=module, node=node)
                info.base_names = [
                    b for b in (dotted_name(base) for base in node.bases)
                    if b is not None]
                for item in node.body:
                    if isinstance(item,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.methods[item.name] = item
                module.classes[node.name] = info
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._harvest_module_lock(module, node)

    # -- lock registry ---------------------------------------------------

    def _lock_kind(self, module: ModuleInfo, call: ast.Call) -> str | None:
        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and module.imports.get(func.value.id) == "threading"
                and func.attr in LOCK_FACTORIES):
            return func.attr
        if isinstance(func, ast.Name):
            target = module.imports.get(func.id)
            if target is not None and target.startswith("threading."):
                kind = target.split(".", 1)[1]
                if kind in LOCK_FACTORIES:
                    return kind
        return None

    def _find_lock_call(self, module: ModuleInfo,
                        value: ast.expr) -> tuple[str, int, bool] | None:
        """Locate a lock factory call inside an assignment RHS.

        Returns ``(kind, line, collection)`` — *collection* is True when
        the factory runs inside a comprehension or display, i.e. the
        attribute holds several locks from one allocation site.
        """
        direct = value
        if isinstance(direct, ast.Call):
            kind = self._lock_kind(module, direct)
            if kind is not None:
                return kind, direct.lineno, False
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                kind = self._lock_kind(module, node)
                if kind is not None:
                    return kind, node.lineno, True
        return None

    def _harvest_module_lock(self, module: ModuleInfo,
                             node: ast.Assign | ast.AnnAssign) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else \
            [node.target]
        if node.value is None or len(targets) != 1 or \
                not isinstance(targets[0], ast.Name):
            return
        found = self._find_lock_call(module, node.value)
        if found is None:
            return
        kind, line, collection = found
        name = targets[0].id
        lock = LockInfo(lock_id=f"{module.name}:{name}", kind=kind,
                        module=module.name, path=module.rel, line=line,
                        owner=None, attr=name, collection=collection)
        module.module_locks[name] = lock
        self.locks[lock.lock_id] = lock

    def _harvest_class_locks(self, module: ModuleInfo,
                             info: ClassInfo) -> None:
        for method in info.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                if node.value is None or len(targets) != 1:
                    continue
                target = targets[0]
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                if method.name == "__init__":
                    info.init_attrs.add(target.attr)
                    self._harvest_attr_type(module, info, target.attr,
                                            node.value)
                found = self._find_lock_call(module, node.value)
                if found is None:
                    continue
                kind, line, collection = found
                lock = LockInfo(
                    lock_id=f"{module.name}:{info.name}.{target.attr}",
                    kind=kind, module=module.name, path=module.rel,
                    line=line, owner=info.name, attr=target.attr,
                    collection=collection)
                info.locks[target.attr] = lock
                self.locks[lock.lock_id] = lock

    def _harvest_attr_type(self, module: ModuleInfo, info: ClassInfo,
                           attr: str, value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        name = dotted_name(value.func)
        if name is None:
            return
        resolved = self._resolve_class_name(module, name)
        if resolved is not None:
            info.attr_types[attr] = resolved

    def _resolve_class_name(self, module: ModuleInfo,
                            name: str) -> tuple[str, str] | None:
        head, _, rest = name.partition(".")
        if not rest and head in module.classes:
            return module.name, head
        target = module.imports.get(head)
        if target is None:
            return None
        dotted = f"{target}.{rest}" if rest else target
        mod_name, _, cls_name = dotted.rpartition(".")
        other = self.modules.get(mod_name)
        if other is not None and cls_name in other.classes:
            return mod_name, cls_name
        return None

    def resolve_class(self, module: ModuleInfo,
                      name: str) -> ClassInfo | None:
        resolved = self._resolve_class_name(module, name)
        if resolved is None:
            return None
        return self.modules[resolved[0]].classes[resolved[1]]

    def lock_by_target(self, dotted: str) -> LockInfo | None:
        """Resolve an imported global (``pkg.mod.NAME``) to a lock."""
        mod_name, _, attr = dotted.rpartition(".")
        module = self.modules.get(mod_name)
        if module is not None:
            return module.module_locks.get(attr)
        return None

    # -- linking / summaries ---------------------------------------------

    def _link(self) -> None:
        for module in self.modules.values():
            for info in module.classes.values():
                self._harvest_class_locks(module, info)
        for module in self.modules.values():
            for name, node in module.functions.items():
                self._summarise(module, None, name, node)
            for info in module.classes.values():
                for name, node in info.methods.items():
                    self._summarise(module, info, f"{info.name}.{name}",
                                    node)
        for summary in self.summaries.values():
            for call in summary.calls:
                call.callee = self._resolve_callee(summary, call)

    def _summarise(self, module: ModuleInfo, cls: ClassInfo | None,
                   label: str, node) -> None:
        summary = FunctionSummary(
            qualname=f"{module.name}:{label}", module=module, cls=cls,
            node=node, is_async=isinstance(node, ast.AsyncFunctionDef),
            decorators={d for d in (dotted_name(dec)
                                    for dec in node.decorator_list)
                        if d is not None})
        _FunctionWalker(self, summary).visit(node)
        self.summaries[summary.qualname] = summary

    def _resolve_callee(self, summary: FunctionSummary,
                        call: CallSite) -> str | None:
        func = call.node.func
        module = summary.module
        if isinstance(func, ast.Name):
            if func.id in module.functions:
                return f"{module.name}:{func.id}"
            if func.id in module.classes:
                return self._method_qualname(module.classes[func.id],
                                             "__init__")
            target = module.imports.get(func.id)
            if target is not None:
                return self._qualname_for_target(target)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name) and base.id == "self" \
                and summary.cls is not None:
            return self._method_qualname(summary.cls, func.attr)
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self" and summary.cls is not None):
            typed = summary.cls.find_attr_type(self, base.attr)
            if typed is not None:
                cls = self.modules[typed[0]].classes[typed[1]]
                return self._method_qualname(cls, func.attr)
            return None
        if isinstance(base, ast.Name):
            target = module.imports.get(base.id)
            if target is not None:
                return self._qualname_for_target(f"{target}.{func.attr}")
        return None

    def _method_qualname(self, cls: ClassInfo, name: str) -> str | None:
        found = cls.find_method(self, name)
        if found is None:
            return None
        owner, _node = found
        return f"{owner.module.name}:{owner.name}.{name}"

    def _qualname_for_target(self, dotted: str) -> str | None:
        mod_name, _, attr = dotted.rpartition(".")
        module = self.modules.get(mod_name)
        if module is None:
            return None
        if attr in module.functions:
            return f"{mod_name}:{attr}"
        if attr in module.classes:
            return self._method_qualname(module.classes[attr], "__init__")
        return None

    # -- derived views ---------------------------------------------------

    def may_acquire(self) -> dict[str, frozenset[str]]:
        """Locks each function may take, directly or through callees."""
        if self._may_acquire is not None:
            return self._may_acquire
        acquired: dict[str, set[str]] = {
            q: {lock for lock, _, _ in s.acquisitions}
            for q, s in self.summaries.items()}
        for _ in range(len(self.summaries)):
            changed = False
            for qualname, summary in self.summaries.items():
                bucket = acquired[qualname]
                before = len(bucket)
                for call in summary.calls:
                    if call.callee in acquired:
                        bucket |= acquired[call.callee]
                if len(bucket) != before:
                    changed = True
            if not changed:
                break
        self._may_acquire = {q: frozenset(v) for q, v in acquired.items()}
        return self._may_acquire

    def module_for_rel(self, rel: str) -> ModuleInfo | None:
        for module in self.modules.values():
            if module.rel == rel:
                return module
        return None


def build_lock_graph(project: Project) -> dict[tuple[str, str], list[str]]:
    """The static lock-acquisition order graph.

    Edge ``(A, B)`` means some code path acquires B while holding A.
    Values are human-readable witness strings (``qualname:line``).
    Self-edges on non-reentrant kinds are kept (they are findings in
    their own right); RLock/semaphore self-edges are dropped.
    """
    edges: dict[tuple[str, str], list[str]] = {}
    may = project.may_acquire()

    def add(a: str, b: str, where: str) -> None:
        if a == b:
            kind = project.locks[a].kind if a in project.locks else "Lock"
            if kind != "Lock":
                return
        edges.setdefault((a, b), []).append(where)

    for qualname, summary in project.summaries.items():
        for lock_id, line, held in summary.acquisitions:
            for h in held:
                add(h, lock_id, f"{qualname}:{line}")
        for call in summary.calls:
            if not call.held or call.callee is None:
                continue
            for target in may.get(call.callee, ()):  # pragma: no branch
                for h in call.held:
                    add(h, target, f"{qualname}:{call.line} -> {call.callee}")
    return edges


def find_lock_cycles(
        edges: dict[tuple[str, str], list[str]] | set[tuple[str, str]],
) -> list[list[str]]:
    """Cycles in the lock graph: SCCs of size > 1, plus self-loops."""
    adjacency: dict[str, set[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set())

    index_counter = [0]
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: set[str] = set()
    cycles: list[list[str]] = []

    def strongconnect(vertex: str) -> None:
        work = [(vertex, iter(sorted(adjacency[vertex])))]
        index[vertex] = lowlink[vertex] = index_counter[0]
        index_counter[0] += 1
        stack.append(vertex)
        on_stack.add(vertex)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))
                elif (component[0], component[0]) in set(edges):
                    cycles.append(component)

    for vertex in sorted(adjacency):
        if vertex not in index:
            strongconnect(vertex)
    return cycles
