"""resource-hygiene: every handle has a deterministic owner.

``open()`` / socket construction must land in one of the accepted
ownership shapes:

* a ``with`` statement (context manager scope);
* assignment to ``self.attr`` on a class that defines ``close`` or
  ``__exit__`` (the instance owns the handle for its lifetime);
* assignment to a local that is closed in a ``finally`` block or
  returned / stored for the caller (ownership transfer);
* directly returned (factory function).

Anything else — a handle passed inline to another call, or a local that
can leak on an exception path — is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from ..model import ModuleInfo, Project, dotted_name
from .base import Rule, iter_nodes_with_symbol, normalized_call, parent_map

__all__ = ["ResourceHygieneRule"]

_OPENERS = frozenset({
    "open", "io.open", "os.fdopen",
    "socket.socket", "socket.create_connection",
})


class ResourceHygieneRule(Rule):
    id = "resource-hygiene"
    title = "open()/socket creation is context-managed or finally-closed"

    def run(self, project: Project) -> Iterable[Finding]:
        for module in project.modules.values():
            parents = parent_map(module.tree)
            for node, symbol in iter_nodes_with_symbol(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = normalized_call(module, dotted_name(node.func))
                if resolved not in _OPENERS:
                    continue
                if self._owned(module, parents, node):
                    continue
                yield self.finding(
                    module, node.lineno, symbol,
                    f"{resolved}() without a context manager, finally-"
                    "close, or owning object — the handle leaks on any "
                    "exception path")

    def _owned(self, module: ModuleInfo,
               parents: dict[ast.AST, ast.AST], call: ast.Call) -> bool:
        # climb to the statement, noting how the call is embedded
        node: ast.AST = call
        parent = parents.get(node)
        while parent is not None:
            if isinstance(parent, ast.withitem) \
                    and parent.context_expr is node:
                return True
            if isinstance(parent, ast.Return) and parent.value is node:
                return True          # factory: caller owns the handle
            if isinstance(parent, ast.Call) and node is not parent.func:
                # handle passed straight into another call: e.g.
                # closing(open(...)) is fine, json.load(open(...)) is not
                wrapper = normalized_call(module, dotted_name(parent.func))
                return wrapper in ("contextlib.closing", "closing")
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                return self._assignment_owned(module, parents, parent)
            if isinstance(parent, ast.stmt):
                return False
            node, parent = parent, parents.get(parent)
        return False

    def _assignment_owned(self, module: ModuleInfo,
                          parents: dict[ast.AST, ast.AST],
                          stmt: ast.Assign | ast.AnnAssign) -> bool:
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        if len(targets) != 1:
            return False
        target = targets[0]
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            cls = self._enclosing_class(parents, stmt)
            if cls is not None:
                defined = {item.name for item in cls.body
                           if isinstance(item, (ast.FunctionDef,
                                                ast.AsyncFunctionDef))}
                return bool(defined & {"close", "__exit__", "__del__"})
            return False
        if isinstance(target, ast.Name):
            scope = self._enclosing_function(parents, stmt)
            if scope is None:
                return False
            return self._local_released(scope, target.id)
        return False

    @staticmethod
    def _enclosing_class(parents: dict[ast.AST, ast.AST],
                         node: ast.AST) -> ast.ClassDef | None:
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                current = parents.get(current)
                continue
            current = parents.get(current)
        return None

    @staticmethod
    def _enclosing_function(parents: dict[ast.AST, ast.AST],
                            node: ast.AST):
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(current)
        return None

    @staticmethod
    def _local_released(scope: ast.AST, name: str) -> bool:
        """The local is finally-closed, returned, or handed off."""
        for node in ast.walk(scope):
            if isinstance(node, ast.Try):
                for fin in node.finalbody:
                    for sub in ast.walk(fin):
                        if isinstance(sub, ast.Call) \
                                and isinstance(sub.func, ast.Attribute) \
                                and sub.func.attr == "close" \
                                and isinstance(sub.func.value, ast.Name) \
                                and sub.func.value.id == name:
                            return True
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
            if isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                if isinstance(expr, ast.Call):
                    for sub in ast.walk(expr):
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
            # handing the handle to another object transfers ownership:
            # self.x = handle / container.append(handle)
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == name:
                return True
        return False
