"""lock-discipline: the static lock-acquisition graph must be sane.

Three checks over the project's lock registry:

* **order-inversion cycles** — edge A→B whenever some path acquires B
  while holding A (``with``-sites, bare ``acquire()`` timelines, and
  calls into functions whose transitive may-acquire set is non-empty);
  any strongly-connected component is a potential deadlock.
* **re-acquisition** — taking a non-reentrant ``threading.Lock`` the
  current timeline already holds (self-deadlock).
* **await/yield under lock** — suspending while holding a registry lock
  parks the lock across an arbitrary scheduling gap.  Functions
  decorated with ``contextlib.contextmanager`` (or the async variant)
  are exempt: yielding while holding the lock is their entire job.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from ..model import Project, build_lock_graph, find_lock_cycles
from .base import Rule

__all__ = ["LockDisciplineRule"]

_CM_DECORATORS = frozenset({
    "contextmanager", "asynccontextmanager",
    "contextlib.contextmanager", "contextlib.asynccontextmanager",
})


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    title = "lock ordering, re-acquisition, and suspension under lock"

    def run(self, project: Project) -> Iterable[Finding]:
        edges = build_lock_graph(project)
        for cycle in find_lock_cycles(edges):
            witnesses = [
                f"{a} -> {b} @ {sites[0]}"
                for (a, b), sites in sorted(edges.items())
                if a in cycle and b in cycle]
            anchor = project.locks.get(cycle[0])
            module = project.module_for_rel(anchor.path) if anchor else None
            if module is None:
                continue
            yield self.finding(
                module, anchor.line, "",
                "lock-order cycle: " + " <-> ".join(cycle),
                witnesses=witnesses)

        for summary in project.summaries.values():
            module = summary.module
            for lock_id, line, held in summary.acquisitions:
                lock = project.locks.get(lock_id)
                if lock is not None and lock.kind == "Lock" \
                        and lock_id in held:
                    yield self.finding(
                        module, line, summary.qualname,
                        f"re-acquisition of non-reentrant {lock_id} "
                        "already held on this timeline (self-deadlock)")
            for line, held in summary.awaits:
                if held:
                    yield self.finding(
                        module, line, summary.qualname,
                        "await while holding " + ", ".join(sorted(held)))
            if summary.decorators & _CM_DECORATORS:
                continue
            for line, held in summary.yields:
                if held:
                    yield self.finding(
                        module, line, summary.qualname,
                        "yield while holding " + ", ".join(sorted(held))
                        + " — the lock stays held across the consumer's "
                        "entire iteration step")
