"""async-blocking: no blocking calls lexically inside ``async def``.

The wire server's event loop must never block: file I/O, ``fsync``,
``time.sleep``, socket construction and threading-lock acquisition all
belong on the worker pool (``run_in_executor``).  Nested synchronous
``def`` bodies are exempt by construction — the project model does not
fold them into the enclosing coroutine's timeline, which is exactly the
"routed through the worker pool" escape hatch: a blocking call is only
flagged when the event loop itself would execute it.

``asyncio`` primitives (``asyncio.Condition``, ``StreamWriter.write``)
never appear in the lock registry or the blocking-call table, so the
server's ``_RWGate`` and reply writes stay legal.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from ..model import Project
from .base import Rule, normalized_call

__all__ = ["AsyncBlockingRule"]

#: Fully-qualified callables that block the calling thread.
BLOCKING_CALLS = frozenset({
    "open", "io.open",
    "time.sleep",
    "os.fsync", "os.fdatasync", "os.replace", "os.rename",
    "socket.socket", "socket.create_connection",
    "subprocess.run", "subprocess.check_output", "subprocess.check_call",
    "subprocess.Popen",
    "shutil.copy", "shutil.copyfile", "shutil.copytree", "shutil.rmtree",
})


class AsyncBlockingRule(Rule):
    id = "async-blocking"
    title = "no blocking calls inside async def bodies"

    def run(self, project: Project) -> Iterable[Finding]:
        for summary in project.summaries.values():
            if not summary.is_async:
                continue
            module = summary.module
            for call in summary.calls:
                resolved = normalized_call(module, call.name)
                if resolved in BLOCKING_CALLS:
                    yield self.finding(
                        module, call.line, summary.qualname,
                        f"blocking call {resolved}() inside async def "
                        f"{summary.name}; route it through the worker "
                        "pool (run_in_executor)")
            for lock_id, line, _held in summary.acquisitions:
                yield self.finding(
                    module, line, summary.qualname,
                    f"threading lock {lock_id} acquired inside async def "
                    f"{summary.name}; a held event loop cannot yield — "
                    "use an asyncio primitive or offload to the pool")
