"""shared-state: writes to shared instance attributes need their lock.

Scope: classes that own registered locks, in the concurrency-domain
packages (service worker pool, scatter-gather pool, wire server, the
observability sinks they all feed, and the WAL).  In such a class every
instance attribute is presumed shared, so any write outside the
constructor-phase methods must happen with one of the class's locks
held — either lexically, or guaranteed by every in-class caller.

The caller-guarantee analysis exempts a private method when each of its
in-class call sites either already holds a class lock, is itself
exempt/guaranteed, or is constructor-phase (``__init__`` /
``mark_loaded``).  Public methods get no such benefit: they are thread
entry points by definition.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from ..model import ClassInfo, FunctionSummary, Project
from .base import Rule

__all__ = ["SharedStateRule"]

#: Packages whose classes live on more than one thread.
SCOPE_PREFIXES = ("repro.service", "repro.server", "repro.shard",
                  "repro.obs", "repro.storage.wal")

#: Constructor-phase methods: single-threaded by protocol.
EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "mark_loaded",
                            "__enter__"})


def _in_scope(module_name: str) -> bool:
    return any(module_name == p or module_name.startswith(p + ".")
               for p in SCOPE_PREFIXES)


class SharedStateRule(Rule):
    id = "shared-state"
    title = "instance attributes of locked classes mutate under a lock"

    def run(self, project: Project) -> Iterable[Finding]:
        for module in project.modules.values():
            if not _in_scope(module.name):
                continue
            for info in module.classes.values():
                yield from self._check_class(project, info)

    def _check_class(self, project: Project,
                     info: ClassInfo) -> Iterable[Finding]:
        lock_ids = {lock.lock_id
                    for lock in info.all_locks(project).values()}
        if not lock_ids:
            return
        methods: dict[str, FunctionSummary] = {}
        for name in info.methods:
            summary = project.summaries.get(
                f"{info.module.name}:{info.name}.{name}")
            if summary is not None:
                methods[name] = summary
        guaranteed = self._caller_guaranteed(methods, lock_ids)
        lock_attrs = set(info.all_locks(project))
        for name, summary in methods.items():
            if name in EXEMPT_METHODS or name in guaranteed:
                continue
            for attr, line, held, _node in summary.self_writes:
                if attr in lock_attrs or held & lock_ids:
                    continue
                yield self.finding(
                    info.module, line, summary.qualname,
                    f"self.{attr} written without holding any of "
                    f"{', '.join(sorted(lock_ids))}")

    @staticmethod
    def _caller_guaranteed(methods: dict[str, FunctionSummary],
                           lock_ids: set[str]) -> set[str]:
        """Private methods whose every in-class caller holds a lock."""
        # call sites per callee method name: (caller name, held-at-site)
        sites: dict[str, list[tuple[str, frozenset[str]]]] = {}
        for caller, summary in methods.items():
            for call in summary.calls:
                if call.callee is None:
                    continue
                callee = call.callee.rsplit(".", 1)[-1]
                if callee in methods:
                    sites.setdefault(callee, []).append((caller, call.held))
        guaranteed: set[str] = set()
        for _ in range(len(methods) + 1):
            grown = False
            for name in methods:
                if name in guaranteed or not name.startswith("_") \
                        or name.startswith("__"):
                    continue
                callers = sites.get(name)
                if not callers:
                    continue
                if all(held & lock_ids
                       or caller in EXEMPT_METHODS
                       or caller in guaranteed
                       for caller, held in callers):
                    guaranteed.add(name)
                    grown = True
            if not grown:
                break
        return guaranteed
