"""Rule plumbing shared by the five ``xmark lint`` passes."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..findings import Finding
from ..model import ModuleInfo, Project

__all__ = ["Rule", "normalized_call", "iter_nodes_with_symbol",
           "parent_map"]


class Rule:
    """One pluggable static-analysis pass.

    Subclasses set :attr:`id` / :attr:`title` and implement :meth:`run`
    yielding :class:`~repro.analyze.findings.Finding` objects.  Rules
    never consult suppressions or the baseline — the engine owns gate
    semantics so every rule stays a pure function of the project model.
    """

    id: str = ""
    title: str = ""

    def run(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, line: int, symbol: str,
                message: str, **extra) -> Finding:
        return Finding(rule=self.id, path=module.rel, line=line,
                       symbol=symbol, message=message,
                       extra=dict(extra) if extra else {})


def normalized_call(module: ModuleInfo, name: str | None) -> str | None:
    """Resolve a call's textual name through the module's imports.

    ``sleep`` under ``from time import sleep`` and ``time.sleep`` under
    ``import time`` both normalise to ``time.sleep``.
    """
    if name is None:
        return None
    head, _, rest = name.partition(".")
    target = module.imports.get(head, head)
    return f"{target}.{rest}" if rest else target


def iter_nodes_with_symbol(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Every node paired with its enclosing def/class qualname."""
    stack: list[tuple[ast.AST, str]] = [(tree, "")]
    while stack:
        node, symbol = stack.pop()
        for child in ast.iter_child_nodes(node):
            child_symbol = symbol
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_symbol = f"{symbol}.{child.name}" if symbol \
                    else child.name
            yield child, child_symbol
            stack.append((child, child_symbol))


def parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    return {child: parent
            for parent in ast.walk(tree)
            for child in ast.iter_child_nodes(parent)}
