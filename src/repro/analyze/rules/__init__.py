"""The pluggable rule registry for ``xmark lint``."""

from __future__ import annotations

from .async_blocking import AsyncBlockingRule
from .base import Rule
from .error_taxonomy import ErrorTaxonomyRule
from .lock_discipline import LockDisciplineRule
from .resource_hygiene import ResourceHygieneRule
from .shared_state import SharedStateRule

__all__ = [
    "Rule",
    "ALL_RULES",
    "AsyncBlockingRule",
    "LockDisciplineRule",
    "SharedStateRule",
    "ErrorTaxonomyRule",
    "ResourceHygieneRule",
]

#: Every shipped rule, in report order.
ALL_RULES: tuple[type[Rule], ...] = (
    AsyncBlockingRule,
    LockDisciplineRule,
    SharedStateRule,
    ErrorTaxonomyRule,
    ResourceHygieneRule,
)
