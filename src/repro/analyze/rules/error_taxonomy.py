"""error-taxonomy: broad handlers must account; raises must be typed.

Two checks:

* **broad handlers** — a bare ``except``, or one catching ``Exception``
  / ``BaseException``, may only exist when the handler demonstrably
  accounts for the error: it re-raises, it uses the bound exception
  object (logging it, recording it in a failure map), or it increments
  a metrics counter.  Silent swallows are findings.
* **builtin raises** — inside the subsystem packages where the
  ``repro.errors`` taxonomy is mandated, ``raise ValueError(...)``-style
  builtin raises are findings: callers dispatch on the typed hierarchy
  (and the wire protocol serialises it), so an untyped raise silently
  falls out of every ``except XMarkError`` net.  ``TypeError`` /
  ``NotImplementedError`` / ``AssertionError`` stay legal — they signal
  programmer error, not system state.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from ..model import Project
from .base import Rule, iter_nodes_with_symbol

__all__ = ["ErrorTaxonomyRule"]

_BROAD = frozenset({"Exception", "BaseException"})

#: Builtin exception types that must not be raised in mandated packages.
_BANNED_RAISES = frozenset({
    "Exception", "RuntimeError", "ValueError", "KeyError", "IndexError",
    "LookupError", "OSError", "IOError", "EOFError",
})

#: Packages where the repro.errors taxonomy is mandatory.
MANDATED_PREFIXES = ("repro.service", "repro.server", "repro.shard",
                     "repro.storage", "repro.db", "repro.update",
                     "repro.index", "repro.obs")


def _mandated(module_name: str) -> bool:
    return any(module_name == p or module_name.startswith(p + ".")
               for p in MANDATED_PREFIXES)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Tuple):
        return any(isinstance(elt, ast.Name) and elt.id in _BROAD
                   for elt in node.elts)
    return False


def _accounts_for_error(handler: ast.ExceptHandler) -> bool:
    """Re-raises, uses the bound exception, or bumps a counter."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and handler.name is not None \
                and node.id == handler.name \
                and isinstance(node.ctx, ast.Load):
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "inc":
            return True
    return False


class ErrorTaxonomyRule(Rule):
    id = "error-taxonomy"
    title = "broad except accounts for the error; raises use repro.errors"

    def run(self, project: Project) -> Iterable[Finding]:
        for module in project.modules.values():
            mandated = _mandated(module.name)
            for node, symbol in iter_nodes_with_symbol(module.tree):
                if isinstance(node, ast.ExceptHandler) and _is_broad(node):
                    if not _accounts_for_error(node):
                        what = "bare except" if node.type is None \
                            else "except Exception"
                        yield self.finding(
                            module, node.lineno, symbol,
                            f"{what} swallows the error — re-raise, use "
                            "the bound exception, or count it in a "
                            "metric")
                elif mandated and isinstance(node, ast.Raise) \
                        and node.exc is not None:
                    name = node.exc
                    if isinstance(name, ast.Call):
                        name = name.func
                    if isinstance(name, ast.Name) \
                            and name.id in _BANNED_RAISES:
                        yield self.finding(
                            module, node.lineno, symbol,
                            f"raise {name.id} in a subsystem package — "
                            "use the repro.errors taxonomy so callers "
                            "and the wire protocol can dispatch on it")
