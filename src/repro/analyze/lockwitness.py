"""Runtime lock-order witness: the dynamic half of ``xmark lint``.

Sanitizer-style wiring: :func:`LockWitness.install` replaces the
``threading`` lock factories (``Lock`` / ``RLock`` / ``Semaphore`` /
``BoundedSemaphore``) with wrappers that, **only for locks allocated
from repro source files**, return recording proxies.  Every proxy
acquisition consults the calling thread's held-lock stack and records an
ordering edge ``held-site -> acquired-site``; locks are keyed by their
allocation site (``repro/service/cache.py:83``), which is exactly how
the static registry keys them — so the dynamic graph and the static
graph join losslessly in :func:`cross_check`.

Stdlib-internal locks (thread pools, queues, logging) are allocated
from stdlib frames and stay unwrapped: the witness never perturbs
machinery it does not measure.

The module doubles as a pytest plugin::

    python -m pytest -p repro.analyze.lockwitness --lockwitness ...

which installs the witness for the whole session and fails the run
(exit 1) if the recorded acquisition orders contain any cycle.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

from .model import build_lock_graph, find_lock_cycles

__all__ = ["LockWitness", "active_witness", "cross_check"]

#: src/ root (…/src/repro/analyze/lockwitness.py -> parents[2]).
_SRC_ROOT = Path(__file__).resolve().parents[2]
#: Default allocation-site filter: the repro package itself.
_DEFAULT_PREFIXES = (str(_SRC_ROOT / "repro"),)

# ``Lock`` and ``RLock`` are stdlib factory *functions* — replacing them
# is safe, internal callers just call through.  ``BoundedSemaphore`` is a
# class nothing in the stdlib references by name, so it can be shadowed
# too.  ``Semaphore`` must stay untouched: ``BoundedSemaphore.__init__``
# calls ``Semaphore.__init__(self, value)`` unbound through the module
# global, and a shadowing function would silently skip initialisation.
_FACTORIES = ("Lock", "RLock", "BoundedSemaphore")


class _WitnessedLock:
    """Records acquisition order around a real threading lock."""

    __slots__ = ("_lock", "_site", "_witness")

    def __init__(self, lock, site: str, witness: "LockWitness") -> None:
        self._lock = lock
        self._site = site
        self._witness = witness

    def acquire(self, *args, **kwargs):
        got = self._lock.acquire(*args, **kwargs)
        if got:
            self._witness._note_acquire(self._site)
        return got

    def release(self, *args, **kwargs):
        self._witness._note_release(self._site)
        return self._lock.release(*args, **kwargs)

    def locked(self):
        return self._lock.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<witnessed {self._lock!r} @ {self._site}>"


class LockWitness:
    """Per-thread acquisition-order recorder over the lock factories."""

    def __init__(self, prefixes: tuple[str, ...] = _DEFAULT_PREFIXES,
                 src_root: Path | str = _SRC_ROOT) -> None:
        self.prefixes = tuple(str(Path(p).resolve()) for p in prefixes)
        self.src_root = Path(src_root).resolve()
        self._orig: dict[str, object] = {}
        self._meta = threading.Lock()   # created before install(): real lock
        self._tls = threading.local()
        self._edges: dict[tuple[str, str], int] = {}
        self._sites: set[str] = set()
        self.installed = False

    # -- factory interception -------------------------------------------

    def install(self) -> None:
        if self.installed:
            return
        for name in _FACTORIES:
            orig = getattr(threading, name)
            self._orig[name] = orig
            setattr(threading, name, self._make_factory(orig))
        self.installed = True

    def uninstall(self) -> None:
        if not self.installed:
            return
        for name, orig in self._orig.items():
            setattr(threading, name, orig)
        self._orig.clear()
        self.installed = False

    def __enter__(self) -> "LockWitness":
        self.install()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.uninstall()
        return False

    def _make_factory(self, orig):
        def factory(*args, **kwargs):
            real = orig(*args, **kwargs)
            # Attribute the allocation to the first frame outside this
            # module: with stacked witnesses (the pytest plugin active
            # while a test installs its own), the inner factory would
            # otherwise see the outer factory's frame — which lives in
            # repro source — and wrap locks it must leave alone.
            frame = sys._getframe(1)
            while frame is not None \
                    and frame.f_code.co_filename == __file__:
                frame = frame.f_back
            site = self._site_for(frame) if frame is not None else None
            if site is None:
                return real
            with self._meta:
                self._sites.add(site)
            return _WitnessedLock(real, site, self)
        return factory

    def _site_for(self, frame) -> str | None:
        filename = frame.f_code.co_filename
        for prefix in self.prefixes:
            if filename.startswith(prefix):
                try:
                    rel = Path(filename).resolve().relative_to(
                        self.src_root).as_posix()
                except ValueError:
                    rel = Path(filename).name
                return f"{rel}:{frame.f_lineno}"
        return None

    # -- recording -------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _note_acquire(self, site: str) -> None:
        stack = self._stack()
        if stack:
            with self._meta:
                for held in stack:
                    if held != site:
                        key = (held, site)
                        self._edges[key] = self._edges.get(key, 0) + 1
        stack.append(site)

    def _note_release(self, site: str) -> None:
        stack = self._stack()
        for idx in range(len(stack) - 1, -1, -1):
            if stack[idx] == site:
                del stack[idx]
                break

    # -- results ----------------------------------------------------------

    def edges(self) -> dict[tuple[str, str], int]:
        with self._meta:
            return dict(self._edges)

    def cycles(self) -> list[list[str]]:
        return find_lock_cycles(set(self.edges()))

    def report(self) -> dict:
        edges = self.edges()
        return {
            "sites": sorted(self._sites),
            "edges": [[a, b, count]
                      for (a, b), count in sorted(edges.items())],
            "cycles": find_lock_cycles(set(edges)),
        }


def cross_check(witness: LockWitness, project=None) -> dict:
    """Join the dynamic witness graph with the static lock graph.

    Dynamic sites that correspond to registered allocation sites are
    renamed to their static lock ids; the check then reports cycles in
    the dynamic graph alone, cycles in the union graph (a dynamic edge
    inverting a statically-proven order), and the dynamic edges the
    static pass could not prove (dispatch the AST cannot resolve).
    """
    if project is None:
        from .model import Project
        project = Project.load(_SRC_ROOT, package="repro")
    site_to_lock = {f"{lock.path}:{lock.line}": lock.lock_id
                    for lock in project.locks.values()}
    static_edges = set(build_lock_graph(project))
    dynamic_edges: set[tuple[str, str]] = set()
    dynamic_only: list[tuple[str, str]] = []
    for a, b in witness.edges():
        edge = (site_to_lock.get(a, a), site_to_lock.get(b, b))
        dynamic_edges.add(edge)
        if edge not in static_edges:
            dynamic_only.append(edge)
    return {
        "dynamic_cycles": find_lock_cycles(dynamic_edges),
        "union_cycles": find_lock_cycles(static_edges | dynamic_edges),
        "dynamic_only_edges": sorted(dynamic_only),
        "dynamic_edges": sorted(dynamic_edges),
        "static_edges": sorted(static_edges),
    }


# ---------------------------------------------------------------------------
# pytest plugin surface (``-p repro.analyze.lockwitness --lockwitness``)
# ---------------------------------------------------------------------------

_active: LockWitness | None = None


def active_witness() -> LockWitness | None:
    """The session witness while the pytest plugin is installed."""
    return _active


def pytest_addoption(parser) -> None:
    group = parser.getgroup("lockwitness")
    group.addoption(
        "--lockwitness", action="store_true", default=False,
        help="record per-thread lock acquisition orders for repro locks "
             "and fail the session on any ordering cycle")
    group.addoption(
        "--lockwitness-json", default=None, metavar="PATH",
        help="write the recorded lock-order graph to PATH")


def pytest_configure(config) -> None:
    global _active
    if config.getoption("--lockwitness"):
        _active = LockWitness()
        _active.install()


def pytest_sessionfinish(session, exitstatus) -> None:
    global _active
    if _active is None:
        return
    witness = _active
    _active = None
    witness.uninstall()
    report = witness.report()
    json_path = session.config.getoption("--lockwitness-json")
    if json_path:
        Path(json_path).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8")
    summary = (f"lockwitness: {len(report['sites'])} lock sites, "
               f"{len(report['edges'])} ordering edges, "
               f"{len(report['cycles'])} cycles")
    print(f"\n{summary}")
    if report["cycles"]:
        for cycle in report["cycles"]:
            print("lockwitness CYCLE: " + " <-> ".join(cycle))
        session.exitstatus = 1
