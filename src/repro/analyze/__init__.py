"""Static concurrency & correctness analysis for the xmark tree.

``xmark lint`` (or ``python -m repro.analyze``) runs five zero-
dependency AST passes over a shared project model — module graph,
class/attr table, lock registry — and gates CI on *new* findings
relative to the committed ``docs/LINT_BASELINE.json``.  The runtime
half, :mod:`repro.analyze.lockwitness`, is a pytest plugin recording
real per-thread lock acquisition orders so the static graph and the
dynamic witness cross-check each other.  See ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from .engine import LintResult, default_baseline_path, default_src_root, \
    main, run_lint
from .findings import Finding, build_lint_report, load_baseline, \
    save_baseline
from .lockwitness import LockWitness, cross_check
from .model import LockInfo, Project, build_lock_graph, find_lock_cycles
from .rules import ALL_RULES, Rule

__all__ = [
    "Project",
    "LockInfo",
    "Finding",
    "Rule",
    "ALL_RULES",
    "LintResult",
    "run_lint",
    "main",
    "build_lock_graph",
    "find_lock_cycles",
    "build_lint_report",
    "load_baseline",
    "save_baseline",
    "default_src_root",
    "default_baseline_path",
    "LockWitness",
    "cross_check",
]
