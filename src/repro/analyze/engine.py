"""The ``xmark lint`` engine: load, run rules, gate, report."""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from .findings import (Finding, apply_suppressions, build_lint_report,
                       load_baseline, partition_new, save_baseline)
from .model import Project
from .rules import ALL_RULES

__all__ = ["LintResult", "run_lint", "default_src_root",
           "default_baseline_path", "main"]

#: src/ directory this package was loaded from (…/src/repro/analyze).
_SRC_ROOT = Path(__file__).resolve().parents[2]


def default_src_root() -> Path:
    return _SRC_ROOT


def default_baseline_path() -> Path:
    return _SRC_ROOT.parent / "docs" / "LINT_BASELINE.json"


@dataclass
class LintResult:
    project: Project
    findings: list[Finding]
    new: list[Finding]
    baselined: list[Finding]
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new

    def report(self, root: str) -> dict:
        return build_lint_report(self.findings, self.new, self.timings,
                                 root=root)


def run_lint(root: Path | str, package: str | None = "repro",
             rule_ids: set[str] | None = None,
             baseline: Path | str | None = None) -> LintResult:
    """Run the selected rules over *root* and gate against *baseline*."""
    project = Project.load(root, package=package)
    findings: list[Finding] = []
    timings: dict[str, float] = {}
    for rule_cls in ALL_RULES:
        rule = rule_cls()
        if rule_ids is not None and rule.id not in rule_ids:
            continue
        start = time.perf_counter()
        findings.extend(rule.run(project))
        timings[rule.id] = time.perf_counter() - start
    findings = apply_suppressions(project, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    known = load_baseline(baseline) if baseline is not None else set()
    new, baselined = partition_new(findings, known)
    return LintResult(project=project, findings=findings, new=new,
                      baselined=baselined, timings=timings)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point shared by ``xmark lint`` and ``-m repro.analyze``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="xmark lint",
        description="AST-based concurrency & correctness analyzer")
    parser.add_argument("--root", default=None,
                        help="source root to analyse (default: the src/ "
                             "directory this package runs from)")
    parser.add_argument("--package", default="repro",
                        help="top-level package filter under --root; "
                             "pass '' to lint every module (default: "
                             "repro)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the findings report here")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: docs/"
                             "LINT_BASELINE.json when linting the repo; "
                             "none with an explicit --root)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "active findings and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-finding lines")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_cls in ALL_RULES:
            print(f"{rule_cls.id:18} {rule_cls.title}")
        return 0

    explicit_root = args.root is not None
    root = Path(args.root) if explicit_root else default_src_root()
    package = args.package or None
    baseline: Path | None
    if args.baseline is not None:
        baseline = Path(args.baseline)
    elif explicit_root:
        baseline = None
    else:
        baseline = default_baseline_path()

    rule_ids = None
    if args.rules:
        rule_ids = {r.strip() for r in args.rules.split(",") if r.strip()}

    result = run_lint(root, package=package, rule_ids=rule_ids,
                      baseline=baseline)

    if args.update_baseline:
        target = baseline or default_baseline_path()
        save_baseline(target, result.findings)
        print(f"baseline updated: {target} "
              f"({len([f for f in result.findings if not f.suppressed])} "
              "findings)")
        return 0

    if not args.quiet:
        for finding in result.findings:
            print(finding.format())
        for finding in result.baselined:
            print(f"(baselined) {finding.format()}")

    if args.json_path:
        report = result.report(root=str(root))
        Path(args.json_path).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.json_path}", file=sys.stderr)

    active = [f for f in result.findings if not f.suppressed]
    suppressed = len(result.findings) - len(active)
    print(f"lint: {len(result.new)} new, {len(result.baselined)} "
          f"baselined, {suppressed} suppressed "
          f"({len(result.project.modules)} modules, "
          f"{len(result.project.locks)} registered locks)")
    return 0 if result.ok else 1
