"""Findings, suppressions, baseline and report plumbing for ``xmark lint``.

A :class:`Finding` is one rule hit.  Its **fingerprint** hashes the rule
id, file path, enclosing symbol and message — but not the line number —
so unrelated edits that shift lines do not churn the committed baseline.

Gate semantics: a finding is *active* unless an inline
``# lint: ok(rule-id) — reason`` marker covers its line.  Active
findings not present in the committed baseline are *new*; the CLI exits
1 when any exist.  A suppression without a reason is itself reported
under the ``suppression-hygiene`` meta rule, so every silenced finding
carries its justification in the source.

The JSON report mirrors the ``benchmarks/_emit.py`` skeleton (one
record per rule, findings in ``extra_info``) so the bench-report tooling
can parse lint reports unchanged.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "apply_suppressions",
    "load_baseline",
    "save_baseline",
    "partition_new",
    "build_lint_report",
]

#: Meta rule id for malformed / unjustified suppression markers.
SUPPRESSION_RULE = "suppression-hygiene"


@dataclass
class Finding:
    rule: str
    path: str            #: path relative to the analysis root
    line: int
    symbol: str          #: enclosing function/class qualname ("" at module scope)
    message: str
    suppressed: bool = False
    suppress_reason: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        key = "\x00".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        mark = " [suppressed]" if self.suppressed else ""
        where = f"{self.path}:{self.line}"
        sym = f" ({self.symbol})" if self.symbol else ""
        return f"{where}: {self.rule}: {self.message}{sym}{mark}"

    def as_dict(self) -> dict:
        out = {
            "rule": self.rule, "path": self.path, "line": self.line,
            "symbol": self.symbol, "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["suppress_reason"] = self.suppress_reason
        if self.extra:
            out["extra"] = self.extra
        return out


def apply_suppressions(project, findings: list[Finding]) -> list[Finding]:
    """Mark findings covered by inline markers; flag reasonless markers.

    Returns the full list (suppressed findings stay, flagged) plus any
    ``suppression-hygiene`` findings for markers with no reason.
    """
    out: list[Finding] = []
    flagged_markers: set[tuple[str, int, str]] = set()
    for finding in findings:
        module = project.module_for_rel(finding.path)
        if module is not None:
            sup = module.suppression_for(finding.line, finding.rule)
            if sup is not None:
                finding.suppressed = True
                finding.suppress_reason = sup.reason
                if not sup.reason:
                    key = (finding.path, sup.comment_line, sup.rule)
                    if key not in flagged_markers:
                        flagged_markers.add(key)
                        out.append(Finding(
                            rule=SUPPRESSION_RULE, path=finding.path,
                            line=sup.comment_line, symbol=finding.symbol,
                            message=(f"suppression ok({sup.rule}) has no "
                                     "reason — add '— why' after the "
                                     "marker")))
        out.append(finding)
    return out


def load_baseline(path: Path | str) -> set[str]:
    """Fingerprints recorded in the committed baseline file."""
    path = Path(path)
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return {entry["fingerprint"] for entry in data.get("findings", ())}


def save_baseline(path: Path | str, findings: list[Finding]) -> None:
    """Write the active (non-suppressed) findings as the new baseline."""
    entries = [
        {"fingerprint": f.fingerprint, "rule": f.rule, "path": f.path,
         "symbol": f.symbol, "message": f.message}
        for f in findings if not f.suppressed]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["message"]))
    doc = {"version": 1, "findings": entries}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def partition_new(findings: list[Finding],
                  baseline: set[str]) -> tuple[list[Finding], list[Finding]]:
    """Split active findings into (new, baselined)."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        if finding.suppressed:
            continue
        (old if finding.fingerprint in baseline else new).append(finding)
    return new, old


def build_lint_report(findings: list[Finding], new: list[Finding],
                      timings: dict[str, float], root: str,
                      version: str = "1") -> dict:
    """A findings report in the ``benchmarks/_emit.py`` skeleton.

    One benchmark record per rule; the per-pass wall time fills the
    stats block so ``tools/check_bench_reports.py`` accepts the shape
    unchanged, and the findings ride in ``extra_info``.
    """
    by_rule: dict[str, list[Finding]] = {}
    for finding in findings:
        by_rule.setdefault(finding.rule, []).append(finding)
    for rule in timings:
        by_rule.setdefault(rule, [])
    records = []
    for rule in sorted(by_rule):
        bucket = by_rule[rule]
        duration = timings.get(rule, 0.0)
        records.append({
            "group": "lint",
            "name": rule,
            "fullname": f"lint::{rule}",
            "params": {},
            "stats": {"min": duration, "max": duration, "mean": duration,
                      "stddev": 0.0, "rounds": 1, "iterations": 1},
            "extra_info": {
                "findings": [f.as_dict() for f in bucket],
                "active": sum(1 for f in bucket if not f.suppressed),
                "suppressed": sum(1 for f in bucket if f.suppressed),
            },
        })
    return {
        "machine_info": {"python_version": platform.python_version(),
                         "machine": platform.machine()},
        "commit_info": {},
        "benchmarks": records,
        "version": version,
        "config": {"root": root, "rules": sorted(by_rule)},
        "acceptance": {
            "ok": not new,
            "new_findings": len(new),
            "total_findings": len(findings),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }
