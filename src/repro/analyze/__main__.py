"""``python -m repro.analyze`` — the standalone lint entry point."""

from __future__ import annotations

import sys

from .engine import main

if __name__ == "__main__":
    sys.exit(main())
