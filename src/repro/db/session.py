"""Sessions, prepared queries, and transactions over a connected Database.

A :class:`Session` is the unit of interaction: it resolves query numbers,
routes execution through the connection, caches prepared plans, and opens
transactions.  Sessions are cheap — open one per logical client — and a
closed session (or a closed database underneath it) refuses further work
with :class:`~repro.errors.ClosedSessionError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ClosedSessionError, TransactionError
from repro.update.ops import (
    CloseAuction, DeleteItem, PlaceBid, RegisterPerson, UpdateOp,
)
from repro.xmlio.dom import Element

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.cursor import Cursor
    from repro.db.database import Database
    from repro.xquery.planner import CompiledQuery


class Session:
    """One client's handle on the database.

    ``tenant`` labels this session's executions in the connection's
    ``db.queries_total`` counter — per-caller accounting, no isolation.
    """

    def __init__(self, database: "Database",
                 tenant: str | None = None) -> None:
        self._database = database
        self.tenant = tenant
        self._closed = False

    @property
    def database(self) -> "Database":
        return self._database

    def _require_open(self) -> None:
        if self._closed:
            raise ClosedSessionError("session is closed")
        self._database._require_open()

    # -- queries --------------------------------------------------------------------

    def execute(self, query: int | str, system: str | None = None, *,
                stream: bool = True) -> "Cursor":
        """Run one query (a benchmark number 1-20 or raw XQuery text).

        Returns a :class:`~repro.db.cursor.Cursor`.  On a direct
        connection ``stream=True`` (the default) yields rows lazily;
        ``stream=False`` forces eager evaluation (and fills in the
        cursor's execute timings) — results are identical either way.
        """
        self._require_open()
        return self._database.execute(system, query, stream=stream,
                                      tenant=self.tenant)

    def explain(self, query: int | str, system: str | None = None):
        """Describe how a query would run on this connection — chosen
        plan, index usage, shard routing, predicted streaming barriers —
        without executing it.  Returns an
        :class:`~repro.obs.explain.Explain`; ``str()`` it or call
        ``.render()`` for the text form, ``.as_dict()`` for JSON."""
        self._require_open()
        return self._database.explain(query, system=system)

    def prepare(self, query: int | str,
                system: str | None = None) -> "PreparedQuery":
        """Compile once, execute many.

        On a direct connection the compiled plan is reused across
        executions (re-executions report ``plan_cache_hit`` and zero
        compile time); on a service connection the service's own plan
        cache provides the reuse and preparation just pins the text.
        """
        self._require_open()
        return PreparedQuery(self, query, system)

    # -- transactions ----------------------------------------------------------------

    def transaction(self, *, maintenance: str | None = None) -> "Transaction":
        """Open a transaction buffering update operations until commit.

        Use as a context manager: a clean exit commits the batch
        atomically (one digest advance, one invalidation pass); an
        exception inside the block discards it untouched.
        """
        self._require_open()
        return Transaction(self, maintenance=maintenance)

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PreparedQuery:
    """A query held ready for repeated execution on one session."""

    def __init__(self, session: Session, query: int | str,
                 system: str | None) -> None:
        self._session = session
        database = session.database
        self.system = database.resolve_system(system)
        self.query_text = database.query_text(query)
        self._compiled: "CompiledQuery | None" = None
        if database.service is None and self.system != database.shard_system:
            # Direct store: compilation is the preparation.
            self._compiled = database.compile(self.system, self.query_text)

    @property
    def compiled(self) -> "CompiledQuery | None":
        """The compiled plan (None when a service/scatter engine owns it)."""
        return self._compiled

    @property
    def warnings(self) -> list[str]:
        """Planner warnings (unknown tags etc.); empty when not compiled
        locally."""
        return list(self._compiled.warnings) if self._compiled else []

    def execute(self, *, stream: bool = True) -> "Cursor":
        self._session._require_open()
        database = self._session.database
        return database.execute(self.system, self.query_text, stream=stream,
                                compiled=self._compiled,
                                tenant=self._session.tenant)


class Transaction:
    """A buffered batch of update operations, committed as one unit.

    Operations queue locally until :meth:`commit` (or a clean ``with``
    exit); nothing touches the stores before that.  Commit applies the
    whole batch through the update engine with a single digest advance
    and — on service connections — one path-selective invalidation pass
    under drained admission gates.  There is no rollback of applied
    operations: a mid-batch failure keeps the committed prefix and raises
    :class:`~repro.errors.TransactionError` (see
    ``Database.apply_transaction``).
    """

    def __init__(self, session: Session, *,
                 maintenance: str | None = None) -> None:
        self._session = session
        self._maintenance = maintenance
        self._ops: list[UpdateOp] = []
        self._completed = False
        #: The commit summary (op tokens, per-system costs, new digest).
        self.summary: dict | None = None

    # -- buffering -------------------------------------------------------------------

    def _require_active(self) -> None:
        if self._completed:
            raise TransactionError("transaction already completed")
        self._session._require_open()

    def apply(self, op: UpdateOp) -> "Transaction":
        """Queue one typed update operation; chainable."""
        self._require_active()
        self._ops.append(op)
        return self

    def register_person(self, person: Element) -> "Transaction":
        """Queue appending a DTD-valid ``<person>`` subtree (unique @id)."""
        return self.apply(RegisterPerson(person))

    def place_bid(self, auction_id: str, person_id: str, increase: float,
                  date: str, time: str) -> "Transaction":
        """Queue a bid on an open auction (raises ``current`` by ``increase``)."""
        return self.apply(PlaceBid(auction_id, person_id, increase, date, time))

    def close_auction(self, auction_id: str, date: str) -> "Transaction":
        """Queue closing an open auction (moves it to ``closed_auctions``)."""
        return self.apply(CloseAuction(auction_id, date))

    def delete_item(self, item_id: str) -> "Transaction":
        """Queue removing an item with its referencing auctions/watches."""
        return self.apply(DeleteItem(item_id))

    @property
    def ops(self) -> tuple[UpdateOp, ...]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    # -- completion ------------------------------------------------------------------

    def commit(self) -> dict:
        """Apply the buffered batch; returns the commit summary."""
        self._require_active()
        self._completed = True
        self.summary = self._session.database.apply_transaction(
            self._ops, maintenance=self._maintenance)
        return self.summary

    def rollback(self) -> None:
        """Discard the buffered (un-applied) operations."""
        if self._completed:
            raise TransactionError("transaction already completed")
        self._completed = True
        self._ops.clear()

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._completed:
            return
        if exc_type is not None:
            self.rollback()
            return
        self.commit()
