"""Streaming cursors: the one result surface of the embedded API.

A :class:`Cursor` fronts every execution path the facade routes to.  On a
direct connection it is backed by the evaluator's lazy pipeline
(:func:`repro.xquery.evaluator.evaluate_stream`): items are produced as
the plan yields them, so the first row of a large result arrives long
before the last binding has been evaluated.  Service and scatter-gather
connections materialize (their caches need complete results) and the
cursor streams from the finished sequence — same protocol, different
latency profile.

Whatever the backing, ``fetchall()`` returns exactly the items the legacy
``evaluate()`` would have put in ``QueryResult.items``, in the same
order — laziness changes *when* work happens, never *what* comes out.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ClosedCursorError
from repro.xquery.evaluator import QueryResult, item_text
from repro.xquery.sequence import Navigator


class Cursor:
    """One query execution's result sequence, consumed incrementally.

    DB-API-flavored: :meth:`fetchone` / :meth:`fetchmany` /
    :meth:`fetchall`, plus iteration.  Items are what the XQuery data
    model produces — :class:`~repro.xquery.sequence.NodeItem` for nodes,
    plain Python values for atomics; :meth:`rowtext` renders one item the
    way ``QueryResult.serialize`` renders a line.

    Execution metadata rides along: ``compile_seconds`` /
    ``execute_seconds`` (the latter 0.0 on streaming cursors, where
    execution happens during fetching), ``plan_cache_hit`` /
    ``result_cache_hit`` (service connections), ``source`` (which path
    served it: ``direct`` / ``service`` / ``scatter``), and ``streaming``
    (whether rows are produced lazily).
    """

    arraysize = 100

    def __init__(
        self,
        items: Iterator | list,
        navigator: Navigator,
        *,
        system: str,
        query_text: str,
        streaming: bool,
        source: str = "direct",
        compile_seconds: float = 0.0,
        compile_cpu_seconds: float = 0.0,
        execute_seconds: float = 0.0,
        execute_cpu_seconds: float = 0.0,
        metadata_accesses: int = 0,
        plans_considered: int = 0,
        plan_cache_hit: bool = False,
        result_cache_hit: bool = False,
        span=None,
    ) -> None:
        self._iterator = iter(items)
        self.navigator = navigator
        self.system = system
        self.query_text = query_text
        self.streaming = streaming
        self.source = source
        self.compile_seconds = compile_seconds
        self.compile_cpu_seconds = compile_cpu_seconds
        self.execute_seconds = execute_seconds
        self.execute_cpu_seconds = execute_cpu_seconds
        self.metadata_accesses = metadata_accesses
        self.plans_considered = plans_considered
        self.plan_cache_hit = plan_cache_hit
        self.result_cache_hit = result_cache_hit
        #: Rows fetched so far; equals the result size once exhausted.
        self.rowcount = 0
        self._exhausted = False
        self._closed = False
        self._invalid_reason: str | None = None
        #: The execution's root span when the connection traces
        #: (:meth:`profile`); unfinished on streaming cursors until
        #: exhaustion or close.
        self._span = span

    # -- fetching -----------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ClosedCursorError(
                self._invalid_reason or "cannot fetch from a closed cursor")

    def fetchone(self):
        """The next result item, or None when the sequence is exhausted."""
        self._require_open()
        try:
            item = next(self._iterator)
        except StopIteration:
            self._exhausted = True
            self._finish_span()
            return None
        self.rowcount += 1
        return item

    def fetchmany(self, size: int | None = None) -> list:
        """Up to ``size`` further items (default :attr:`arraysize`)."""
        self._require_open()
        count = self.arraysize if size is None else size
        out = []
        for _ in range(count):
            item = self.fetchone()
            if item is None and self._exhausted:
                break
            out.append(item)
        return out

    def fetchall(self) -> list:
        """Every remaining item — bit-identical to the eager evaluator's
        ``QueryResult.items`` when fetched from a fresh cursor."""
        self._require_open()
        out = list(self._iterator)
        self.rowcount += len(out)
        self._exhausted = True
        self._finish_span()
        return out

    def __iter__(self):
        while True:
            item = self.fetchone()
            if item is None and self._exhausted:
                return
            yield item

    def __next__(self):
        item = self.fetchone()
        if item is None and self._exhausted:
            raise StopIteration
        return item

    # -- presentation --------------------------------------------------------------

    def rowtext(self, item) -> str:
        """One item as text: markup for nodes, lexical form for atomics."""
        return item_text(item, self.navigator)

    def serialize(self) -> str:
        """Every remaining row, one line each (``QueryResult.serialize``)."""
        return "\n".join(self.rowtext(item) for item in self.fetchall())

    def result(self) -> QueryResult:
        """The remaining items materialized as a legacy
        :class:`~repro.xquery.evaluator.QueryResult` (equivalence checks,
        ``canonical()``, interop with pre-facade code)."""
        return QueryResult(self.fetchall(), self.navigator)

    # -- observability -------------------------------------------------------------

    def _finish_span(self) -> None:
        span = self._span
        if span is not None and not span.finished:
            span.set(rows=self.rowcount).finish()

    def profile(self):
        """The recorded span tree of this execution, or None.

        Requires the connection to have been opened with
        ``tracing=True``.  On a streaming cursor the tree completes when
        the cursor is exhausted or closed; profile it after fetching.
        Render with ``cursor.profile().render()`` or serialize with
        ``.to_dict()``.
        """
        return self._span

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        iterator = self._iterator
        self._iterator = iter(())
        closer = getattr(iterator, "close", None)
        if closer is not None:
            closer()                    # release the suspended pipeline
        self._finish_span()

    def invalidate(self, reason: str) -> None:
        """Poison the cursor: further fetches raise ``ClosedCursorError``
        with ``reason``.  The connection calls this on every open
        streaming cursor when a transaction commits — a suspended lazy
        pipeline resumed over a mutated store could otherwise return rows
        matching neither the pre- nor the post-commit document."""
        self._invalid_reason = reason
        self.close()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
