"""The embedded-database facade: ``repro.connect()`` and friends.

One public API over every execution path the repository grew —
direct stores, the concurrent query service, scatter-gather sharding,
and the update engine::

    import repro

    db = repro.connect(repro.generate_string(0.002), systems=("B", "D"))
    with db.session() as session:
        cursor = session.execute(14)                # streams lazily
        for item in cursor:
            print(cursor.rowtext(item))

        prepared = session.prepare(8, system="D")   # compile once
        rows = prepared.execute().fetchall()        # bit-identical to legacy

        with session.transaction() as txn:          # one atomic batch
            txn.place_bid("open_auction0", "person1", 12.0,
                          "07/31/2026", "11:30:00")
            txn.close_auction("open_auction0", "07/31/2026")
    db.close()

See docs/API.md for the full surface, cursor semantics, transaction
guarantees, and the old-to-new migration table.
"""

from repro.db.cursor import Cursor
from repro.db.database import DEFAULT_SHARD_SYSTEM, Database, connect
from repro.db.session import PreparedQuery, Session, Transaction
from repro.update.ops import (
    CloseAuction, DeleteItem, PlaceBid, RegisterPerson, UpdateOp,
    transaction_token,
)

__all__ = [
    "connect", "Database", "Session", "PreparedQuery", "Transaction",
    "Cursor", "DEFAULT_SHARD_SYSTEM",
    "UpdateOp", "RegisterPerson", "PlaceBid", "CloseAuction", "DeleteItem",
    "transaction_token",
]
