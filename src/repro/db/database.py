"""The embedded database: one facade over every execution path.

``repro.connect()`` is the library's front door.  Behind one API —
sessions, prepared queries, streaming cursors, transactions — it routes
to whichever engine the connect options selected:

* **direct** (the default): each requested system letter is bulkloaded
  into its own store; queries compile per system and execute in-process,
  with cursors streaming straight off the evaluator's lazy pipeline.
* **scatter** (``shards=N``): the document is additionally partitioned
  into a :class:`~repro.shard.store.ShardedStore` served by a
  :class:`~repro.shard.scatter.ScatterGatherExecutor` under the
  pseudo-system name ``shard_system`` (default ``"S"``).
* **service** (``service=True``): everything runs through a
  :class:`~repro.service.QueryService` — bounded worker pool, per-system
  admission control, plan and result caches — including the sharded
  pseudo-system when ``shards`` is also given.

Whatever the route, ``Cursor.fetchall()`` returns exactly what the legacy
entry points returned, and every write goes through the update engine, so
digests, indexes, and caches stay consistent.  See docs/API.md.
"""

from __future__ import annotations

import time
import weakref

from repro.benchmark.queries import query_text as benchmark_query_text
from repro.benchmark.systems import SYSTEMS, get_profile, load_stores
from repro.db.cursor import Cursor
from repro.db.session import Session
from repro.errors import (
    BenchmarkError, ClosedSessionError, DurabilityError, UnknownSystemError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, TraceLogWriter, Tracer
from repro.storage.bulkload import BulkloadReport, bulkload
from repro.storage.interface import Store, chain_digest, store_document_text
from repro.update.engine import apply_transaction_ops
from repro.update.ops import UpdateOp, transaction_token
from repro.xquery.evaluator import evaluate, evaluate_stream
from repro.xquery.planner import CompiledQuery, compile_query

#: Default pseudo-system name of the sharded deployment (mirrors
#: :class:`repro.service.ShardSpec`).
DEFAULT_SHARD_SYSTEM = "S"


def connect(
    document: str | None,
    *,
    systems: tuple[str, ...] = ("D",),
    shards: int | None = None,
    backends: tuple[str, ...] = ("F",),
    shard_system: str = DEFAULT_SHARD_SYSTEM,
    service: bool = False,
    max_workers: int = 8,
    per_system_limit: int | None = None,
    plan_cache_size: int = 128,
    result_cache_size: int = 1024,
    per_shard_limit: int = 2,
    tracing: bool = False,
    trace_log: str | None = None,
    query_log: str | None = None,
    durable: str | None = None,
    sync: str = "commit",
    group_size: int = 8,
) -> "Database":
    """Open an embedded database over a generated (or any) XML document.

    ``systems`` names the benchmark architectures to load (A-G);
    ``shards=N`` additionally serves a scatter-gather deployment as
    pseudo-system ``shard_system``; ``service=True`` puts a concurrent
    query service (admission control + plan/result caches) in front of
    everything.  The remaining keywords tune the service/scatter layers
    and are ignored on a plain direct connection.

    ``tracing=True`` records a span tree per query/transaction —
    inspect it with ``cursor.profile()`` or ``db.tracer.roots``;
    ``trace_log`` additionally appends each finished tree to a
    JSON-lines workload log.  Off by default: the disabled path costs
    one attribute read per instrumentation point.  ``query_log`` makes
    a service connection (``service=True``) append one flat JSON record
    per completed query — the structured workload log the tuning
    advisor ingests (docs/OBSERVABILITY.md); it is ignored on a plain
    direct connection, like the other service-layer keywords.

    ``durable=directory`` makes the connection crash-consistent: every
    commit is logged to a write-ahead log in ``directory`` *before* it
    applies in memory (``sync`` picks the fsync policy — ``"commit"``,
    ``"batch"`` with ``group_size``, or ``"none"``).  Reconnecting to an
    existing durable directory recovers it first — snapshot load plus
    WAL replay — and serves the recovered state; ``document`` may then
    be ``None``, and when given it must be the deployment's original
    base document (lineages are never silently forked).  See
    docs/DURABILITY.md.

    A ``document`` of the form ``xmark://host:port/doc`` connects to a
    running wire server instead (``xmark serve``): the returned
    :class:`~repro.server.client.RemoteDatabase` serves the same
    sessions / prepared queries / cursors / transactions over the
    network, and the other keywords (which configure an in-process
    engine) do not apply.  See docs/SERVING.md.
    """
    if isinstance(document, str) and document.startswith("xmark://"):
        from repro.server.client import connect_url
        return connect_url(document, tracing=tracing, trace_log=trace_log)
    return Database(
        document,
        systems=tuple(systems),
        shards=shards,
        backends=tuple(backends),
        shard_system=shard_system,
        service=service,
        max_workers=max_workers,
        per_system_limit=per_system_limit,
        plan_cache_size=plan_cache_size,
        result_cache_size=result_cache_size,
        per_shard_limit=per_shard_limit,
        tracing=tracing,
        trace_log=trace_log,
        query_log=query_log,
        durable=durable,
        sync=sync,
        group_size=group_size,
    )


class Database:
    """A connected embedded database; open sessions with :meth:`session`."""

    def __init__(
        self,
        document: str | None,
        *,
        systems: tuple[str, ...] = ("D",),
        shards: int | None = None,
        backends: tuple[str, ...] = ("F",),
        shard_system: str = DEFAULT_SHARD_SYSTEM,
        service: bool = False,
        max_workers: int = 8,
        per_system_limit: int | None = None,
        plan_cache_size: int = 128,
        result_cache_size: int = 1024,
        per_shard_limit: int = 2,
        tracing: bool = False,
        trace_log: str | None = None,
        query_log: str | None = None,
        durable: str | None = None,
        sync: str = "commit",
        group_size: int = 8,
    ) -> None:
        for name in systems:
            if name not in SYSTEMS:
                raise UnknownSystemError(name, tuple(SYSTEMS))
        if shards is not None and shards <= 0:
            raise BenchmarkError(f"shards must be positive, got {shards}")
        self.shard_system = shard_system if shards is not None else None
        self._closed = False
        self.service = None
        self._scatter = None
        self._trace_writer = (TraceLogWriter(trace_log)
                              if tracing and trace_log else None)
        self.tracer = (Tracer(on_root=self._trace_writer)
                       if tracing else NULL_TRACER)
        #: Live streaming cursors, poisoned when a transaction commits
        #: (their suspended pipelines hold pre-commit store handles).
        self._streaming_cursors: "weakref.WeakSet[Cursor]" = weakref.WeakSet()

        self._durability = None
        self.recovery = None            # RecoveryReport when a reconnect replayed
        recovered_sharded = None
        if durable is not None:
            document, recovered_sharded = self._open_durable(
                durable, document, sync=sync, group_size=group_size,
                shards=shards, backends=tuple(backends))
        elif document is None:
            raise BenchmarkError(
                "document may only be omitted when reconnecting to an "
                "existing durable directory")
        self.document = document

        if service:
            from repro.service import QueryService, ShardSpec
            spec = (ShardSpec(shards=shards, backends=tuple(backends),
                              name=shard_system,
                              per_shard_limit=per_shard_limit)
                    if shards is not None else None)
            self.service = QueryService(
                document, tuple(systems),
                max_workers=max_workers,
                per_system_limit=per_system_limit,
                plan_cache_size=plan_cache_size,
                result_cache_size=result_cache_size,
                shard_spec=spec,
                tracer=self.tracer,
                query_log=query_log,
            )
            self.stores = self.service.stores
            self.load_reports = self.service.load_reports
            self.failed_loads = self.service.failed_loads
        else:
            self.stores, self.load_reports, self.failed_loads = load_stores(
                document, tuple(systems))
            if shards is not None:
                from repro.shard.scatter import ScatterGatherExecutor
                from repro.shard.store import ShardedStore
                if shard_system in SYSTEMS:
                    raise BenchmarkError(
                        f"shard system name {shard_system!r} collides with a "
                        "benchmark system letter")
                if recovered_sharded is not None:
                    # Recovery already reassembled the exact pre-crash
                    # partition (same placement, same order seeds) —
                    # adopt it instead of re-partitioning the document.
                    sharded = recovered_sharded
                    self.stores[shard_system] = sharded
                    self.load_reports[shard_system] = BulkloadReport(
                        store_name=shard_system,
                        seconds=(self.recovery.load_seconds
                                 + self.recovery.replay_seconds),
                        cpu_seconds=0.0,
                        database_bytes=0,
                        document_bytes=len(document),
                    )
                    self._scatter = ScatterGatherExecutor(
                        sharded, per_shard_limit=per_shard_limit,
                        tracer=self.tracer)
                else:
                    sharded = ShardedStore(shards, tuple(backends))
                    try:
                        self.load_reports[shard_system] = bulkload(
                            sharded, document, shard_system)
                    except Exception as exc:
                        self.failed_loads[shard_system] = str(exc)
                    else:
                        self.stores[shard_system] = sharded
                        self._scatter = ScatterGatherExecutor(
                            sharded, per_shard_limit=per_shard_limit,
                            tracer=self.tracer)
        self._serving = tuple(self.stores)
        self._registry = (MetricsRegistry() if self.service is None
                          else None)
        if durable is not None:
            self._finish_durable(durable, sync=sync, group_size=group_size,
                                 shards=shards, backends=tuple(backends))

    # -- durability -----------------------------------------------------------------

    def _open_durable(self, durable, document, *, sync, group_size,
                      shards, backends):
        """Recover an existing durable directory (or pass through for a
        fresh one); returns the document to load and, when recovery
        reassembled one, the pre-crash sharded store to adopt."""
        from repro.storage.wal import DurabilityManager, recover
        if not DurabilityManager.exists(durable):
            if document is None:
                raise DurabilityError(
                    f"{durable} holds no durable deployment; a document is "
                    "required to create one")
            return document, None
        report = recover(durable, tracer=self.tracer)
        manifest = DurabilityManager.read_manifest(durable)
        if document is not None:
            from repro.storage.interface import document_digest as content_of
            if content_of(document) != manifest["base_digest"]:
                raise DurabilityError(
                    f"{durable} was created from a different base document "
                    f"(base digest {manifest['base_digest']}); refusing to "
                    "fork the lineage")
        self.recovery = report
        manager = DurabilityManager(durable, sync=sync,
                                    group_size=group_size, tracer=self.tracer)
        manager.attach(report.last_lsn)
        self._durability = manager
        recovered_sharded = None
        candidate = report.sharded_store
        if (candidate is not None and shards is not None
                and candidate.shard_count == shards
                and tuple(candidate.backends) == tuple(
                    backends[i % len(backends)] for i in range(shards))):
            recovered_sharded = candidate
        return report.document, recovered_sharded

    def _finish_durable(self, durable, *, sync, group_size,
                        shards, backends) -> None:
        """After the stores are serving: initialize a fresh durable
        directory's base snapshot, or restore the recovered digest chain."""
        from repro.storage.wal import DurabilityManager
        from repro.storage.wal.snapshot import (
            document_snapshot, sharded_snapshot,
        )
        sharded = (self.stores.get(self.shard_system)
                   if self.shard_system is not None else None)
        if self._durability is None:
            if not self.stores:
                raise DurabilityError(
                    "no system loaded successfully; cannot create a "
                    "durable deployment")
            base_digest = next(iter(self.stores.values())).document_digest()
            manager = DurabilityManager(durable, sync=sync,
                                        group_size=group_size,
                                        tracer=self.tracer)
            if sharded is not None:
                state = sharded.partition_state()
                snapshot = sharded_snapshot(
                    0, base_digest, backends=list(sharded.backends),
                    fragments=sharded.shard_fragment_texts(),
                    extent_seqs=state["extent_seqs"],
                    id_map=state["id_map"])
                manager.initialize(snapshot, streams=sharded.shard_count,
                                   shard_backends=list(sharded.backends))
            else:
                snapshot = document_snapshot(0, base_digest, self.document)
                manager.initialize(snapshot)
            self._durability = manager
        else:
            # Reconnect: freshly loaded stores carry the recovered
            # document's *content* digest; the lineage continues from the
            # recovered *chain* value.
            for store in self.stores.values():
                store.restore_digest(self.recovery.digest)
        self._durability.bind_registry(self.registry)
        if self.service is not None:
            self.service.durability = self._durability

    @property
    def durability(self):
        """The connection's :class:`~repro.storage.wal.DurabilityManager`
        (``None`` on a non-durable connection)."""
        return self._durability

    def _commit_stream(self, op: UpdateOp) -> int:
        """The WAL stream one single-op commit routes to (its primary
        shard on a matching sharded deployment, stream 0 otherwise)."""
        manager = self._durability
        if manager is None or manager.stream_count == 1:
            return 0
        sharded = (self.stores.get(self.shard_system)
                   if self.shard_system is not None else None)
        if sharded is None or sharded.shard_count != manager.stream_count:
            return 0
        return sharded.route_op(op)

    def checkpoint(self) -> dict:
        """Snapshot the current committed state and compact the WAL.

        Quiesces writers (on a service connection, via the service's
        write barrier), writes a snapshot at the last logged LSN, flips
        the manifest to it, truncates every stream down to the records
        the snapshot does not cover, and drops the superseded snapshot.
        Returns the manager's compaction report.
        """
        from contextlib import nullcontext
        from repro.storage.wal.snapshot import (
            document_snapshot, sharded_snapshot,
        )
        self._require_open()
        if self._durability is None:
            raise DurabilityError(
                "connection is not durable; connect(durable=<dir>) first")
        barrier = (self.service.write_barrier()
                   if self.service is not None else nullcontext())
        with barrier:
            lsn = self._durability.last_lsn
            sharded = (self.stores.get(self.shard_system)
                       if self.shard_system is not None else None)
            if sharded is not None:
                state = sharded.partition_state()
                snapshot = sharded_snapshot(
                    lsn, sharded.document_digest(),
                    backends=list(sharded.backends),
                    fragments=sharded.shard_fragment_texts(),
                    extent_seqs=state["extent_seqs"],
                    id_map=state["id_map"])
            else:
                store = self.store(self.default_system())
                snapshot = document_snapshot(
                    lsn, store.document_digest(), store_document_text(store))
            report = self._durability.checkpoint(snapshot)
        self.registry.counter("db.checkpoints_total").inc()
        return report

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection: the service pool / scatter executor shut
        down, and every session and new cursor refuses further work."""
        if self._closed:
            return
        self._closed = True
        if self.service is not None:
            self.service.close()
        if self._scatter is not None:
            self._scatter.close()
        if self._trace_writer is not None:
            self._trace_writer.close()
        if self._durability is not None:
            self._durability.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ClosedSessionError("database connection is closed")

    def session(self, tenant: str | None = None) -> Session:
        """A new session over this connection (cheap; open many).

        ``tenant`` labels the session's executions in the connection's
        per-tenant query counter."""
        self._require_open()
        return Session(self, tenant)

    # -- introspection --------------------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """Unified metrics: the service's registry when one is serving,
        a connection-local one otherwise (``db.*`` counters land here)."""
        if self.service is not None:
            return self.service.registry
        return self._registry

    @property
    def systems(self) -> tuple[str, ...]:
        """The system names this connection serves, default first."""
        return self._serving

    def default_system(self) -> str:
        if not self._serving:
            raise BenchmarkError("no system loaded successfully")
        return self._serving[0]

    def resolve_system(self, system: str | None) -> str:
        if system is None:
            return self.default_system()
        if system not in self.stores and system not in self.failed_loads:
            raise UnknownSystemError(system, self._serving)
        return system

    def store(self, system: str) -> Store:
        """The live store behind one system (legacy interop surface)."""
        name = self.resolve_system(system)
        try:
            return self.stores[name]
        except KeyError:
            reason = self.failed_loads.get(name, "not loaded")
            raise BenchmarkError(f"system {name} unavailable: {reason}") from None

    def document_digest(self, system: str | None = None) -> str | None:
        """The current document digest of one serving system."""
        return self.store(self.resolve_system(system)).document_digest()

    def query_text(self, query: int | str) -> str:
        """Resolve a benchmark query number (or pass raw XQuery through)."""
        if isinstance(query, int):
            return benchmark_query_text(query)
        return query

    # -- execution ------------------------------------------------------------------

    def compile(self, system: str, text: str) -> CompiledQuery:
        """Compile one query against one direct store (prepared queries)."""
        store = self.store(system)
        return compile_query(text, store, get_profile(system),
                             tracer=self.tracer)

    def explain(self, query: int | str, *, system: str | None = None):
        """Describe how a query would run — plan, indexes, shard route,
        streaming barriers — without executing it."""
        from repro.obs.explain import explain_query
        self._require_open()
        return explain_query(self, self.resolve_system(system), query)

    def _count_query(self, system: str, tenant: str | None) -> None:
        labels = {"system": system}
        if tenant is not None:
            labels["tenant"] = tenant
        self.registry.counter("db.queries_total", **labels).inc()

    def execute(self, system: str | None, query: int | str, *,
                stream: bool = True,
                compiled: CompiledQuery | None = None,
                tenant: str | None = None) -> Cursor:
        """Route one query to the connection's engine; returns a cursor.

        ``stream=True`` (the default) gives a lazily-produced cursor on
        direct connections; service and scatter routes materialize (their
        caches need complete results) and stream from the finished
        sequence.  ``compiled`` short-circuits compilation (prepared
        queries).  ``tenant`` labels the connection's ``db.queries_total``
        counter (per-caller accounting; no isolation semantics).
        """
        self._require_open()
        name = self.resolve_system(system)
        text = self.query_text(query)
        self._count_query(name, tenant)
        tracer = self.tracer
        if self.service is not None:
            outcome = self.service.execute(name, text)
            result = outcome.result
            return Cursor(
                result.items, result.navigator,
                system=name, query_text=text, streaming=False,
                source="service",
                compile_seconds=outcome.compile_seconds,
                execute_seconds=outcome.execute_seconds,
                plan_cache_hit=outcome.plan_cache_hit,
                result_cache_hit=outcome.result_cache_hit,
                span=outcome.span,
            )
        if self._scatter is not None and name == self.shard_system:
            started = time.perf_counter()
            outcome = self._scatter.execute(text)
            elapsed = time.perf_counter() - started
            result = outcome.result
            return Cursor(
                result.items, result.navigator,
                system=name, query_text=text, streaming=False,
                source="scatter",
                execute_seconds=elapsed,
                plan_cache_hit=outcome.plan_cache_hit,
                span=outcome.span,
            )
        store = self.store(name)
        if compiled is not None and compiled.store is not store:
            compiled = None             # superseded by a reload: recompile
        plan_reused = compiled is not None
        root = (tracer.begin("query", system=name, source="direct",
                             query=text, stream=stream,
                             plan_reused=plan_reused)
                if tracer.enabled else None)
        with tracer.activate(root):
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            if compiled is None:
                compiled = compile_query(text, store, get_profile(name),
                                         tracer=tracer)
            cpu1 = time.process_time()
            wall1 = time.perf_counter()
            if stream:
                streamed = evaluate_stream(compiled, tracer=tracer)
                cursor = Cursor(
                    iter(streamed), streamed.navigator,
                    system=name, query_text=text, streaming=True,
                    source="direct",
                    compile_seconds=0.0 if plan_reused else wall1 - wall0,
                    compile_cpu_seconds=0.0 if plan_reused else cpu1 - cpu0,
                    metadata_accesses=compiled.metadata_accesses,
                    plans_considered=compiled.plans_considered,
                    plan_cache_hit=plan_reused,
                    span=root,          # unfinished: the cursor finishes it
                )
                self._streaming_cursors.add(cursor)
                return cursor
            result = evaluate(compiled, tracer=tracer)
            cpu2 = time.process_time()
            wall2 = time.perf_counter()
        if root is not None:
            root.set(rows=len(result.items)).finish()
        return Cursor(
            result.items, result.navigator,
            system=name, query_text=text, streaming=False,
            source="direct",
            compile_seconds=0.0 if plan_reused else wall1 - wall0,
            compile_cpu_seconds=0.0 if plan_reused else cpu1 - cpu0,
            execute_seconds=wall2 - wall1,
            execute_cpu_seconds=cpu2 - cpu1,
            metadata_accesses=compiled.metadata_accesses,
            plans_considered=compiled.plans_considered,
            plan_cache_hit=plan_reused,
            span=root,
        )

    # -- the write path -------------------------------------------------------------

    def apply_transaction(self, ops: list[UpdateOp], *,
                          maintenance: str | None = None) -> dict:
        """Commit a batch of update operations as one unit.

        Every serving store receives every operation (operation-major
        order, so a deterministic failure leaves all stores at the same
        consistent prefix), then each store's digest advances once, over
        the batch token.  On a service connection the service additionally
        drains every system's admission gate for the whole batch (readers
        never observe an intermediate document) and runs one path-selective
        invalidation pass over the union change footprint.

        There is no rollback: on failure the committed prefix stays
        applied, digests advance over exactly the applied operations, and
        a :class:`~repro.errors.TransactionError` reports how far the
        batch got.
        """
        self._require_open()
        if self.service is not None:
            return self.service.apply_transaction(ops, maintenance=maintenance)
        if not ops:
            return {"ops": [], "systems": {}, "digest": None}
        # A suspended streaming pipeline holds pre-commit store handles;
        # resuming it over the mutated store could yield rows matching
        # neither document state.  Poison open streaming cursors first.
        for cursor in list(self._streaming_cursors):
            if not cursor._exhausted:
                cursor.invalidate(
                    "streaming cursor invalidated by a transaction commit "
                    "on this connection; re-execute the query")
        self._streaming_cursors.clear()
        tracer = self.tracer
        root = (tracer.begin("txn.commit", ops=len(ops),
                             systems=len(self.stores))
                if tracer.enabled else None)
        try:
            with tracer.activate(root):
                token = transaction_token(ops)
                if self._durability is not None and self.stores:
                    # WAL-before-apply: the commit is durable before any
                    # store mutates; a crash in between replays it.
                    prev = (next(iter(self.stores.values()))
                            .document_digest() or "")
                    self._durability.log_commit(
                        ops, kind="txn", prev_digest=prev,
                        digest=chain_digest(prev, token))
                costs, _changed, _ancestors = apply_transaction_ops(
                    self.stores, ops, maintenance_mode=maintenance,
                    tracer=tracer)
                digest = None
                for store in self.stores.values():
                    digest = store.advance_digest(token)
            if root is not None:
                root.set(digest=digest)
        finally:
            if root is not None:
                root.finish()
        return {"ops": [op.token() for op in ops], "systems": costs,
                "digest": digest}
