"""Equality and range indexes over table columns."""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.relational.table import Table


class HashIndex:
    """Equality index: column value -> list of row ids."""

    __slots__ = ("table", "column_name", "_buckets")

    def __init__(self, table: Table, column_name: str) -> None:
        self.table = table
        self.column_name = column_name
        self._buckets: dict = {}
        for row_id, value in table.scan_column(column_name):
            self._insert(value, row_id)

    def _insert(self, value, row_id: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is None:
            self._buckets[value] = [row_id]
        else:
            bucket.append(row_id)

    def refresh(self) -> None:
        """Rebuild after appends (bulkload builds indexes last, like a DBMS)."""
        self._buckets.clear()
        for row_id, value in self.table.scan_column(self.column_name):
            self._insert(value, row_id)

    def insert(self, value, row_id: int) -> None:
        """Add one entry (incremental maintenance after a tuple insert)."""
        self._insert(value, row_id)

    def remove(self, value, row_id: int) -> None:
        """Drop one entry (incremental maintenance after a tuple delete).

        Missing entries are ignored: a deleted row may never have been
        indexed (NULL-keyed rows are still bucketed under None here, but a
        caller reconstructing the key from a tombstoned row must not fail).
        """
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        try:
            bucket.remove(row_id)
        except ValueError:
            return
        if not bucket:
            del self._buckets[value]

    def lookup(self, value) -> list[int]:
        """Row ids whose column equals ``value`` (empty list if none)."""
        return self._buckets.get(value, [])

    def unique(self, value) -> int | None:
        """The single row id for ``value`` or None (first wins on duplicates)."""
        bucket = self._buckets.get(value)
        return bucket[0] if bucket else None

    def __len__(self) -> int:
        return len(self._buckets)

    def distinct_values(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """Range index: sorted (value, row_id) pairs with bisect lookups.

    ``None`` values are excluded (SQL semantics: NULL never matches a range
    predicate).
    """

    __slots__ = ("table", "column_name", "_keys", "_rows")

    def __init__(self, table: Table, column_name: str) -> None:
        self.table = table
        self.column_name = column_name
        self._keys: list = []
        self._rows: list[int] = []
        self.refresh()

    def refresh(self) -> None:
        pairs = sorted(
            (value, row_id)
            for row_id, value in self.table.scan_column(self.column_name)
            if value is not None
        )
        self._keys = [value for value, _ in pairs]
        self._rows = [row_id for _, row_id in pairs]

    def range(self, low=None, high=None, inclusive: bool = True) -> list[int]:
        """Row ids with ``low <= value <= high`` (bounds optional)."""
        start = 0 if low is None else bisect_left(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif inclusive:
            stop = bisect_right(self._keys, high)
        else:
            stop = bisect_left(self._keys, high)
        return self._rows[start:stop]

    def count_range(self, low=None, high=None, inclusive: bool = True) -> int:
        """Cardinality of :meth:`range` without materialising it."""
        start = 0 if low is None else bisect_left(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif inclusive:
            stop = bisect_right(self._keys, high)
        else:
            stop = bisect_left(self._keys, high)
        return max(0, stop - start)

    def __len__(self) -> int:
        return len(self._keys)
