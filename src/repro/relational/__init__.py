"""A small relational substrate.

Systems A, B and C in the paper are XML stores layered over relational
technology ("Systems A to C are based on relational technology, come with a
cost-based query optimizer...").  This package is the substrate those three
store implementations are built on:

* :mod:`repro.relational.table` — columnar tables with typed columns;
* :mod:`repro.relational.index` — hash (equality) and sorted (range) indexes;
* :mod:`repro.relational.operators` — scan/filter/project/join/sort/group
  primitives with instrumented tuple counters;
* :mod:`repro.relational.stats` — per-table statistics used by the
  cost-based planner (row counts, distinct values, selectivity estimates);
* :mod:`repro.relational.catalog` — a named collection of tables and their
  indexes; catalog lookups are *counted* because metadata access is one of
  the paper's headline observations (Table 2).
"""

from repro.relational.catalog import Catalog
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.operators import (
    group_aggregate, hash_join, nested_loop_join, select, sort_rows,
)
from repro.relational.table import Column, ColumnType, Table

__all__ = [
    "Table", "Column", "ColumnType",
    "HashIndex", "SortedIndex",
    "Catalog",
    "select", "hash_join", "nested_loop_join", "sort_rows", "group_aggregate",
]
