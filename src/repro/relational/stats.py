"""Table statistics for cost-based planning.

The paper's Systems A–C "come with a cost-based query optimizer"; ours costs
plans from the same inputs a 2002-era optimizer had: row counts, distinct
value counts, and fixed default selectivities when nothing better is known.
The deliberately coarse defaults are a *feature*: the paper observed
optimizers picking bad plans (Q9 on System C, Q11/Q12 on B and C) precisely
because the estimates were off, and our reproduction inherits that behaviour
honestly rather than staging it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.table import Table

#: Default predicate selectivities (System R heritage).
EQUALITY_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True, slots=True)
class TableStats:
    """Statistics snapshot for one table."""

    row_count: int
    distinct: dict[str, int]

    @classmethod
    def gather(cls, table: Table, sample_limit: int = 10_000) -> "TableStats":
        """Collect row count and (sampled) distinct counts per column.

        Sampling mirrors real systems: statistics are estimates, and their
        error grows with table size — which is where bad plans come from.
        """
        rows = len(table)
        distinct: dict[str, int] = {}
        step = max(1, rows // sample_limit)
        for column in table.columns:
            values = table.column(column.name)
            seen = set()
            for position in range(0, rows, step):
                seen.add(values[position])
            scale = step if step > 1 else 1
            distinct[column.name] = max(1, min(rows, len(seen) * scale))
        return cls(rows, distinct)

    def join_cardinality(self, other: "TableStats", self_column: str, other_column: str) -> float:
        """Classic equi-join estimate: |R| * |S| / max(V(R,a), V(S,b))."""
        v_left = self.distinct.get(self_column, 1)
        v_right = other.distinct.get(other_column, 1)
        return self.row_count * other.row_count / max(v_left, v_right, 1)

    def equality_cardinality(self, column: str) -> float:
        """Estimated rows matching ``column = const``."""
        v = self.distinct.get(column)
        if v:
            return self.row_count / v
        return self.row_count * EQUALITY_SELECTIVITY

    def range_cardinality(self) -> float:
        """Estimated rows matching a range predicate (fixed 1/3 default)."""
        return self.row_count * RANGE_SELECTIVITY
