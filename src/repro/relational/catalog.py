"""A catalog of tables and indexes, with counted metadata accesses.

Table 2 of the paper traces compile-time cost back to metadata volume:
System A (one big heap) touches little metadata per query, System B (a table
per path) touches a lot.  To reproduce that *measurably*, every catalog
lookup increments :attr:`metadata_accesses`, and the per-system planners go
through the catalog for each path step they resolve.
"""

from __future__ import annotations

from repro.errors import RelationalError
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.stats import TableStats
from repro.relational.table import Column, Table


class Catalog:
    """Named tables, their indexes, and their statistics."""

    __slots__ = ("_tables", "_hash_indexes", "_sorted_indexes", "_stats",
                 "metadata_accesses")

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._hash_indexes: dict[tuple[str, str], HashIndex] = {}
        self._sorted_indexes: dict[tuple[str, str], SortedIndex] = {}
        self._stats: dict[str, TableStats] = {}
        self.metadata_accesses = 0

    # -- definition ------------------------------------------------------------

    def create_table(self, name: str, columns: list[Column]) -> Table:
        if name in self._tables:
            raise RelationalError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def ensure_table(self, name: str, columns: list[Column]) -> Table:
        """Create on first use — the fragmenting mapping discovers its schema
        while loading."""
        existing = self._tables.get(name)
        if existing is not None:
            return existing
        return self.create_table(name, columns)

    def create_hash_index(self, table_name: str, column: str) -> HashIndex:
        key = (table_name, column)
        if key not in self._hash_indexes:
            self._hash_indexes[key] = HashIndex(self.table(table_name), column)
        return self._hash_indexes[key]

    def create_sorted_index(self, table_name: str, column: str) -> SortedIndex:
        key = (table_name, column)
        if key not in self._sorted_indexes:
            self._sorted_indexes[key] = SortedIndex(self.table(table_name), column)
        return self._sorted_indexes[key]

    def analyze(self) -> None:
        """Gather statistics for every table (run after bulkload)."""
        for name, table in self._tables.items():
            self._stats[name] = TableStats.gather(table)

    # -- lookup (counted: this is "metadata access") -----------------------------

    def table(self, name: str) -> Table:
        self.metadata_accesses += 1
        try:
            return self._tables[name]
        except KeyError:
            raise RelationalError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        self.metadata_accesses += 1
        return name in self._tables

    def hash_index(self, table_name: str, column: str) -> HashIndex | None:
        self.metadata_accesses += 1
        return self._hash_indexes.get((table_name, column))

    def sorted_index(self, table_name: str, column: str) -> SortedIndex | None:
        self.metadata_accesses += 1
        return self._sorted_indexes.get((table_name, column))

    def stats(self, table_name: str) -> TableStats | None:
        self.metadata_accesses += 1
        return self._stats.get(table_name)

    def table_names(self) -> list[str]:
        self.metadata_accesses += 1
        return sorted(self._tables)

    def match_table_names(self, predicate) -> list[str]:
        """All table names satisfying ``predicate`` — a catalog scan.

        Deliberately costed as one metadata access *per table*: resolving a
        ``//`` step on the fragmenting mapping inspects the whole catalog,
        which is exactly the compile-time weight the paper reports for
        System B.
        """
        names = []
        for name in self._tables:
            self.metadata_accesses += 1
            if predicate(name):
                names.append(name)
        return sorted(names)

    # -- reporting ----------------------------------------------------------------

    def table_count(self) -> int:
        return len(self._tables)

    def estimated_bytes(self) -> int:
        total = sum(table.estimated_bytes() for table in self._tables.values())
        # Indexes cost real space in every DBMS; approximate with the payload
        # dict/list sizes.
        total += sum(len(ix.table.column(ix.column_name)) * 16
                     for ix in self._hash_indexes.values())
        total += sum(len(ix) * 24 for ix in self._sorted_indexes.values())
        return total
