"""Relational operators with instrumented tuple counters.

All operators work on iterables of tuples plus positional key functions, and
report how many tuples they touched into an :class:`OperatorCounters`
instance.  The counters let tests assert *why* a plan is slow (e.g. the
Q11/Q12 theta join really does produce the paper's "more than 12 million
tuples" scaled down), not just that it is.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field


@dataclass(slots=True)
class OperatorCounters:
    """Work counters accumulated across the operators of one execution."""

    tuples_scanned: int = 0
    tuples_joined: int = 0
    join_pairs_considered: int = 0
    tuples_sorted: int = 0
    groups_built: int = 0

    def reset(self) -> None:
        self.tuples_scanned = 0
        self.tuples_joined = 0
        self.join_pairs_considered = 0
        self.tuples_sorted = 0
        self.groups_built = 0


#: Shared default counter sink (callers may pass their own).
GLOBAL_COUNTERS = OperatorCounters()


def select(
    rows: Iterable[tuple],
    predicate: Callable[[tuple], bool],
    counters: OperatorCounters = GLOBAL_COUNTERS,
) -> list[tuple]:
    """Filter: keep rows satisfying ``predicate``."""
    kept = []
    for row in rows:
        counters.tuples_scanned += 1
        if predicate(row):
            kept.append(row)
    return kept


def project(
    rows: Iterable[tuple],
    positions: list[int],
    counters: OperatorCounters = GLOBAL_COUNTERS,
) -> list[tuple]:
    """Projection onto the given tuple positions."""
    out = []
    for row in rows:
        counters.tuples_scanned += 1
        out.append(tuple(row[i] for i in positions))
    return out


def hash_join(
    left: Iterable[tuple],
    right: Iterable[tuple],
    left_key: Callable[[tuple], object],
    right_key: Callable[[tuple], object],
    counters: OperatorCounters = GLOBAL_COUNTERS,
) -> list[tuple]:
    """Equi-join: build on left, probe with right; output left + right concat.

    ``None`` keys never join (SQL NULL semantics).
    """
    build: dict = {}
    for row in left:
        counters.tuples_scanned += 1
        key = left_key(row)
        if key is None:
            continue
        build.setdefault(key, []).append(row)
    output: list[tuple] = []
    for row in right:
        counters.tuples_scanned += 1
        key = right_key(row)
        if key is None:
            continue
        for match in build.get(key, ()):
            counters.tuples_joined += 1
            output.append(match + row)
    return output


def nested_loop_join(
    left: Iterable[tuple],
    right: Iterable[tuple],
    condition: Callable[[tuple, tuple], bool],
    counters: OperatorCounters = GLOBAL_COUNTERS,
) -> list[tuple]:
    """Theta join by exhaustive pairing — the plan naive optimizers pick for
    the Q11/Q12 inequality join, and the reason those queries explode."""
    right_rows = list(right)
    output: list[tuple] = []
    for left_row in left:
        counters.tuples_scanned += 1
        for right_row in right_rows:
            counters.join_pairs_considered += 1
            if condition(left_row, right_row):
                counters.tuples_joined += 1
                output.append(left_row + right_row)
    return output


def sort_rows(
    rows: Iterable[tuple],
    key: Callable[[tuple], object],
    reverse: bool = False,
    counters: OperatorCounters = GLOBAL_COUNTERS,
) -> list[tuple]:
    """Stable sort (the SORTBY of Q19)."""
    materialized = list(rows)
    counters.tuples_sorted += len(materialized)
    materialized.sort(key=key, reverse=reverse)
    return materialized


def group_aggregate(
    rows: Iterable[tuple],
    key: Callable[[tuple], object],
    aggregate: Callable[[list[tuple]], object],
    counters: OperatorCounters = GLOBAL_COUNTERS,
) -> dict:
    """Hash aggregation: group key -> aggregate over the group's rows."""
    groups: dict = {}
    for row in rows:
        counters.tuples_scanned += 1
        groups.setdefault(key(row), []).append(row)
    counters.groups_built += len(groups)
    return {group_key: aggregate(members) for group_key, members in groups.items()}


def semi_join(
    left: Iterable[tuple],
    right_keys: set,
    left_key: Callable[[tuple], object],
    counters: OperatorCounters = GLOBAL_COUNTERS,
) -> list[tuple]:
    """Keep left rows whose key appears in ``right_keys`` (EXISTS)."""
    output = []
    for row in left:
        counters.tuples_scanned += 1
        if left_key(row) in right_keys:
            output.append(row)
    return output


def anti_join(
    left: Iterable[tuple],
    right_keys: set,
    left_key: Callable[[tuple], object],
    counters: OperatorCounters = GLOBAL_COUNTERS,
) -> list[tuple]:
    """Keep left rows whose key does NOT appear (NOT EXISTS — Q17's shape:
    "the query execution plan computes the intersection of two sets")."""
    output = []
    for row in left:
        counters.tuples_scanned += 1
        if left_key(row) not in right_keys:
            output.append(row)
    return output
