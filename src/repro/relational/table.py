"""Columnar tables with typed columns."""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass

from repro.errors import RelationalError


class ColumnType(enum.Enum):
    """Supported column types; XML string data coerces into these at load."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    def coerce(self, value):
        """Coerce a raw (string) value into this type; None passes through."""
        if value is None:
            return None
        try:
            if self is ColumnType.INT:
                return int(value)
            if self is ColumnType.FLOAT:
                return float(value)
            return str(value)
        except (TypeError, ValueError) as exc:
            raise RelationalError(f"cannot coerce {value!r} to {self.value}") from exc


@dataclass(frozen=True, slots=True)
class Column:
    """A column definition."""

    name: str
    type: ColumnType = ColumnType.STR
    nullable: bool = True


class Table:
    """A named, columnar, append-only table.

    Storage is one Python list per column — the closest honest analogue of a
    column-oriented relational heap in pure Python.  Row ids are dense
    integers (the append order), used as join keys and index payloads.
    """

    __slots__ = ("name", "columns", "_data", "_column_index")

    def __init__(self, name: str, columns: list[Column]) -> None:
        if not columns:
            raise RelationalError(f"table {name!r} needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise RelationalError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns = list(columns)
        self._data: dict[str, list] = {column.name: [] for column in columns}
        self._column_index = {column.name: i for i, column in enumerate(columns)}

    def __len__(self) -> int:
        return len(self._data[self.columns[0].name])

    @property
    def row_count(self) -> int:
        return len(self)

    def has_column(self, name: str) -> bool:
        return name in self._column_index

    def column(self, name: str) -> list:
        """Direct (read) access to a column's value list."""
        try:
            return self._data[name]
        except KeyError:
            raise RelationalError(f"table {self.name!r} has no column {name!r}") from None

    def append(self, **values) -> int:
        """Append one row; unspecified nullable columns become None."""
        row_id = len(self)
        for column in self.columns:
            if column.name in values:
                value = column.type.coerce(values.pop(column.name))
            elif column.nullable:
                value = None
            else:
                raise RelationalError(
                    f"table {self.name!r}: missing value for non-null column {column.name!r}"
                )
            self._data[column.name].append(value)
        if values:
            raise RelationalError(
                f"table {self.name!r}: unknown columns {sorted(values)}"
            )
        return row_id

    def get(self, row_id: int, column: str):
        """One cell."""
        return self.column(column)[row_id]

    def set(self, row_id: int, column_name: str, value) -> None:
        """Update one cell in place (a tuple update; coerced like append)."""
        for column in self.columns:
            if column.name == column_name:
                coerced = column.type.coerce(value)
                if coerced is None and not column.nullable:
                    raise RelationalError(
                        f"table {self.name!r}: column {column_name!r} is not nullable")
                self._data[column_name][row_id] = coerced
                return
        raise RelationalError(f"table {self.name!r} has no column {column_name!r}")

    def row(self, row_id: int) -> tuple:
        """One full row as a tuple in declared column order."""
        return tuple(self._data[column.name][row_id] for column in self.columns)

    def rows(self, columns: list[str] | None = None):
        """Iterate rows as tuples (a full scan)."""
        names = columns or [column.name for column in self.columns]
        streams = [self._data[name] for name in names]
        return zip(*streams) if streams else iter(())

    def scan_column(self, column: str):
        """Iterate (row_id, value) for one column."""
        return enumerate(self.column(column))

    def estimated_bytes(self) -> int:
        """Rough in-memory footprint (used for the Table 1 size report)."""
        total = 0
        for values in self._data.values():
            total += sys.getsizeof(values)
            for value in values:
                if value is not None:
                    total += sys.getsizeof(value)
        return total
