"""Exception hierarchy for the XMark reproduction.

Every error raised by the library derives from :class:`XMarkError` so that
applications can catch library failures with a single ``except`` clause while
still distinguishing subsystems.
"""

from __future__ import annotations


class XMarkError(Exception):
    """Base class for all errors raised by this library."""


class GenerationError(XMarkError):
    """Raised when the document generator is misconfigured or fails."""


class XMLSyntaxError(XMarkError):
    """Raised by the XML tokenizer/parser on malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ValidationError(XMarkError):
    """Raised when a document violates the DTD it is validated against."""


class StorageError(XMarkError):
    """Raised by storage engines on invalid handles or failed bulkloads."""


class QueryError(XMarkError):
    """Base class for query-processing errors."""


class QuerySyntaxError(QueryError):
    """Raised by the XQuery lexer/parser on malformed query text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TypeCoercionError(QueryError):
    """Raised when a runtime cast (string -> number, ...) is impossible."""


class PlanningError(QueryError):
    """Raised when no executable plan exists for a query on a given system."""


class RelationalError(XMarkError):
    """Raised by the relational substrate (schema violations, bad columns)."""


class BenchmarkError(XMarkError):
    """Raised by the benchmark harness (unknown system, missing query)."""


class UnknownSystemError(BenchmarkError):
    """Raised when a request names a system the connection does not serve.

    Subclasses :class:`BenchmarkError` so legacy ``except BenchmarkError``
    handlers written against the pre-facade entry points keep working.
    """

    def __init__(self, system: str, available: tuple[str, ...] = ()) -> None:
        choices = f"; serving {', '.join(available)}" if available else ""
        super().__init__(f"unknown system {system!r}{choices}")
        self.system = system
        self.available = tuple(available)


class UpdateError(XMarkError):
    """Raised by the update engine (bad target, schema-invalid write)."""


class TransactionError(UpdateError):
    """Raised when a transaction cannot commit as one unit.

    ``applied`` counts the operations that took effect before the failing
    one; the stores remain mutually consistent at that prefix (their
    digests are advanced over exactly the applied operations).
    """

    def __init__(self, message: str, applied: int = 0) -> None:
        super().__init__(message)
        self.applied = applied


class ShardError(XMarkError):
    """Raised by the sharded document subsystem (bad partition, routing)."""


class DurabilityError(XMarkError):
    """Raised by the write-ahead-log subsystem (bad directory, bad config,
    a commit that cannot be made durable)."""


class RecoveryError(DurabilityError):
    """Raised when crash recovery cannot reconstruct a consistent store.

    A *torn tail* — an append cut short by the crash — is not an error
    (recovery drops it and reports it); this is for the states that must
    never be served: a snapshot that fails its checksum, a WAL whose
    replayed digest chain contradicts the digests the records recorded,
    or a record sequence with a gap.
    """


class ServerError(XMarkError):
    """Base class for the network serving layer (wire protocol, quotas)."""


class ProtocolError(ServerError):
    """Raised on a malformed frame or message on the wire.

    ``code`` is the machine-readable wire error code the server replies
    with (``bad_frame``, ``bad_message``, ``frame_too_large``,
    ``truncated``, ``bad_params``, ``unknown_document``,
    ``protocol_mismatch``) — see docs/SERVING.md for the taxonomy.
    """

    def __init__(self, message: str, code: str = "bad_message") -> None:
        super().__init__(message)
        self.code = code


class ServerBusyError(ServerError):
    """The server's worker pool and bounded request queue are saturated.

    The typed backpressure reply: overflow requests are refused
    immediately — never queued without bound, never left hanging — and
    the client is expected to back off and retry.
    """


class TenantQuotaError(ServerError):
    """A per-tenant quota was exceeded (sessions, in-flight requests,
    or open cursors)."""


class SessionError(XMarkError):
    """Base class for embedded-database session/cursor misuse."""


class ClosedSessionError(SessionError):
    """Raised when a closed :class:`repro.db.Session`/``Database`` is used."""


class ClosedCursorError(SessionError):
    """Raised when a closed :class:`repro.db.Cursor` is fetched from."""
