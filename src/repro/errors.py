"""Exception hierarchy for the XMark reproduction.

Every error raised by the library derives from :class:`XMarkError` so that
applications can catch library failures with a single ``except`` clause while
still distinguishing subsystems.
"""

from __future__ import annotations


class XMarkError(Exception):
    """Base class for all errors raised by this library."""


class GenerationError(XMarkError):
    """Raised when the document generator is misconfigured or fails."""


class XMLSyntaxError(XMarkError):
    """Raised by the XML tokenizer/parser on malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ValidationError(XMarkError):
    """Raised when a document violates the DTD it is validated against."""


class StorageError(XMarkError):
    """Raised by storage engines on invalid handles or failed bulkloads."""


class QueryError(XMarkError):
    """Base class for query-processing errors."""


class QuerySyntaxError(QueryError):
    """Raised by the XQuery lexer/parser on malformed query text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TypeCoercionError(QueryError):
    """Raised when a runtime cast (string -> number, ...) is impossible."""


class PlanningError(QueryError):
    """Raised when no executable plan exists for a query on a given system."""


class RelationalError(XMarkError):
    """Raised by the relational substrate (schema violations, bad columns)."""


class BenchmarkError(XMarkError):
    """Raised by the benchmark harness (unknown system, missing query)."""


class UpdateError(XMarkError):
    """Raised by the update engine (bad target, schema-invalid write)."""


class ShardError(XMarkError):
    """Raised by the sharded document subsystem (bad partition, routing)."""
