"""Document updates: the workload dimension XMark scoped out.

The paper deliberately benchmarks a load-once, read-only database; the
follow-up literature (XWeB's refresh function, Mahboubi & Darmont's index-
maintenance studies) treats that as its main gap — index value is only
honest when maintenance under updates is priced, and a serving story with
zero writers serves no one.  This package adds the missing dimension:

* :mod:`repro.update.ops` — a typed operation set grounded in the auction
  schema: ``register_person``, ``place_bid``, ``close_auction``,
  ``delete_item`` (with referential cascades keeping the document
  DTD-valid, dangling IDREFs included).
* :mod:`repro.update.engine` — applies an operation to any of the seven
  store architectures through the uniform mutation surface
  (:meth:`repro.storage.interface.Store.insert_child` and friends), keeps
  the secondary indexes current (incrementally or by rebuild, per
  ``Store.index_maintenance``), chains the document digest, and reports
  the change footprint the result cache invalidates by.
* :mod:`repro.update.stream` — deterministic update generation on the
  benchmark's replayable RNG streams, used by the mixed read/write
  service workload and the maintenance benchmark.

See docs/UPDATES.md for the operation semantics, the per-store mutation
strategies, and the incremental-maintenance invariants.
"""

from repro.update.engine import ChangeSet, UpdateError, apply_update, serialize_store
from repro.update.ops import (
    CloseAuction, DeleteItem, PlaceBid, RegisterPerson, UpdateOp,
    transaction_token,
)
from repro.update.stream import UpdateStream

__all__ = [
    "ChangeSet",
    "CloseAuction",
    "DeleteItem",
    "PlaceBid",
    "RegisterPerson",
    "UpdateError",
    "UpdateOp",
    "UpdateStream",
    "apply_update",
    "serialize_store",
    "transaction_token",
]
