"""Deterministic update generation on the benchmark's replayable streams.

XMark's generator owes its reproducibility to seeded substreams; the update
workload follows the same discipline: an :class:`UpdateStream` seeded with
``(seed, document-state)`` always emits the identical operation sequence.
The stream keeps its own view of the evolving document (who exists, which
auctions still run, which bidder counts make an auction closeable) so that
generation never rescans the store — it reads the document once at
construction and plays forward from there.

Generated persons follow the document generator's house style (same text
generator, same optional-element probabilities) so a grown document stays
statistically recognisable as an XMark document.
"""

from __future__ import annotations

import re

from repro.errors import UpdateError
from repro.rng.streams import StreamFamily
from repro.storage.interface import Store
from repro.text.generator import TextGenerator
from repro.update.ops import (
    CloseAuction, DeleteItem, PlaceBid, RegisterPerson, UpdateOp,
)
from repro.xmlio.dom import Element

DEFAULT_UPDATE_SEED = 20100603          # XWeB's refresh function, HAL 2010.

#: Operation mix: heavy on bids (the site's hot write), with a steady
#: trickle of registrations, closings, and retirements.
DEFAULT_OP_WEIGHTS: dict[str, float] = {
    "place_bid": 0.5,
    "register_person": 0.25,
    "close_auction": 0.15,
    "delete_item": 0.1,
}

_SUFFIX = re.compile(r"(\d+)$")


def _leaf(tag: str, text: str) -> Element:
    element = Element(tag)
    element.append_text(text)
    return element


class UpdateStream:
    """Replayable operation sequences against one document lineage."""

    def __init__(self, store: Store, seed: int = DEFAULT_UPDATE_SEED,
                 weights: dict[str, float] | None = None) -> None:
        self._family = StreamFamily(seed)
        self._source = self._family.stream("updates")
        self._text = TextGenerator()
        self._weights = dict(weights or DEFAULT_OP_WEIGHTS)
        self._generated = 0
        self._scan(store)

    # -- document-state bookkeeping ------------------------------------------------

    def _scan(self, store: Store) -> None:
        root = store.root()
        people = store.children_by_tag(root, "people")[0]
        self.person_ids = [store.attribute(p, "id")
                           for p in store.children_by_tag(people, "person")]
        categories = store.children_by_tag(root, "categories")[0]
        self.category_ids = [store.attribute(c, "id")
                             for c in store.children_by_tag(categories, "category")]
        open_container = store.children_by_tag(root, "open_auctions")[0]
        self.open_bidders: dict[str, int] = {}
        self._open_by_item: dict[str, list[str]] = {}
        for auction in store.children_by_tag(open_container, "open_auction"):
            identifier = store.attribute(auction, "id")
            self.open_bidders[identifier] = len(
                store.children_by_tag(auction, "bidder"))
            itemref = store.children_by_tag(auction, "itemref")
            if itemref:
                item = store.attribute(itemref[0], "item")
                self._open_by_item.setdefault(item, []).append(identifier)
        regions = store.children_by_tag(root, "regions")[0]
        self.item_ids = [
            store.attribute(item, "id")
            for region in store.children(regions)
            for item in store.children_by_tag(region, "item")
        ]
        self._next_person = 1 + max(
            (int(match.group(1)) for value in self.person_ids
             if value and (match := _SUFFIX.search(value))), default=-1)

    def note_applied(self, op: UpdateOp) -> None:
        """Advance the stream's document view past an applied operation."""
        if isinstance(op, RegisterPerson):
            self.person_ids.append(op.person.attributes["id"])
        elif isinstance(op, PlaceBid):
            self.open_bidders[op.auction_id] = \
                self.open_bidders.get(op.auction_id, 0) + 1
        elif isinstance(op, CloseAuction):
            self.open_bidders.pop(op.auction_id, None)
            for auctions in self._open_by_item.values():
                if op.auction_id in auctions:
                    auctions.remove(op.auction_id)
        elif isinstance(op, DeleteItem):
            if op.item_id in self.item_ids:
                self.item_ids.remove(op.item_id)
            for auction in self._open_by_item.pop(op.item_id, ()):
                self.open_bidders.pop(auction, None)

    # -- generation ------------------------------------------------------------------

    def _eligible(self, kind: str) -> bool:
        if kind == "register_person":
            return True
        if kind == "place_bid":
            return bool(self.open_bidders) and bool(self.person_ids)
        if kind == "close_auction":
            return any(count > 0 for count in self.open_bidders.values())
        if kind == "delete_item":
            return bool(self.item_ids)
        return False

    def next_op(self, kind: str | None = None) -> UpdateOp:
        """The next operation (optionally of a forced kind).

        The operation is generated against the stream's current view;
        callers must :meth:`note_applied` it (or use :meth:`apply_next`)
        before asking for the next one.
        """
        source = self._source
        if kind is None:
            kinds = [k for k in self._weights if self._eligible(k)]
            if not kinds:
                raise UpdateError("no update operation is applicable")
            total = sum(self._weights[k] for k in kinds)
            draw = source.uniform(0.0, total)
            for candidate in kinds:
                draw -= self._weights[candidate]
                if draw <= 0:
                    kind = candidate
                    break
            else:
                kind = kinds[-1]
        elif not self._eligible(kind):
            raise UpdateError(f"no eligible target for {kind!r}")

        if kind == "register_person":
            return RegisterPerson(self.build_person())
        if kind == "place_bid":
            auctions = sorted(self.open_bidders)
            return PlaceBid(
                auction_id=auctions[source.uniform_int(0, len(auctions) - 1)],
                person_id=self.person_ids[
                    source.uniform_int(0, len(self.person_ids) - 1)],
                increase=round(source.exponential(6.0) + 1.5, 2),
                date=self._text.date(source),
                time=self._text.time(source),
            )
        if kind == "close_auction":
            closeable = sorted(identifier for identifier, count
                               in self.open_bidders.items() if count > 0)
            return CloseAuction(
                auction_id=closeable[source.uniform_int(0, len(closeable) - 1)],
                date=self._text.date(source),
            )
        if kind == "delete_item":
            return DeleteItem(
                item_id=self.item_ids[
                    source.uniform_int(0, len(self.item_ids) - 1)])
        raise UpdateError(f"unknown operation kind {kind!r}")

    def build_person(self) -> Element:
        """A generated ``<person>`` in the document generator's style."""
        index = self._next_person
        self._next_person += 1
        source = self._family.substream("update/person", index)
        person = Element("person", {"id": f"person{index}"})
        name = self._text.person_name(source)
        person.append(_leaf("name", name))
        person.append(_leaf("emailaddress", self._text.email(source, name)))
        if source.boolean(0.55):
            person.append(_leaf("phone", self._text.phone(source)))
        if source.boolean(0.6):
            address = person.append(Element("address"))
            address.append(_leaf("street", self._text.street(source)))
            address.append(_leaf("city", self._text.city(source)))
            address.append(_leaf("country", self._text.country(source)))
            if source.boolean(0.25):
                address.append(_leaf("province", self._text.province(source)))
            address.append(_leaf("zipcode", self._text.zipcode(source)))
        if source.boolean(0.5):
            person.append(_leaf("homepage", self._text.homepage(source, name)))
        if source.boolean(0.4):
            person.append(_leaf("creditcard", self._text.creditcard(source)))
        if source.boolean(0.8):
            attributes: dict[str, str] = {}
            if source.boolean(0.88):
                income = max(9_876.0, source.normal(60_000.0, 30_000.0))
                attributes["income"] = f"{income:.2f}"
            profile = person.append(Element("profile", attributes))
            if self.category_ids:
                for _ in range(source.uniform_int(0, 3)):
                    category = self.category_ids[
                        source.uniform_int(0, len(self.category_ids) - 1)]
                    profile.append(Element("interest", {"category": category}))
            if source.boolean(0.6):
                profile.append(_leaf("education", self._text.education(source)))
            if source.boolean(0.7):
                profile.append(_leaf("gender", self._text.gender(source)))
            profile.append(_leaf("business", "Yes" if source.boolean(0.3) else "No"))
            if source.boolean(0.4):
                profile.append(_leaf("age", str(source.uniform_int(18, 70))))
        if source.boolean(0.45) and self.open_bidders:
            watches = person.append(Element("watches"))
            auctions = sorted(self.open_bidders)
            for _ in range(source.uniform_int(1, 3)):
                target = auctions[source.uniform_int(0, len(auctions) - 1)]
                watches.append(Element("watch", {"open_auction": target}))
        return person

    def sequence(self, count: int) -> list[UpdateOp]:
        """Generate ``count`` operations, advancing the view after each."""
        operations = []
        for _ in range(count):
            op = self.next_op()
            self.note_applied(op)
            operations.append(op)
        return operations
