"""The update engine: one operation, one store, full bookkeeping.

:func:`apply_update` is to the mutation surface what ``bulkload`` is to
``load()`` — the supported entry point that keeps every derived structure
consistent with the physical change:

1. resolves the operation's targets by ID through the navigation API (so
   the same operation means the same nodes on every architecture);
2. applies the physical mutations through the store's
   ``insert_child`` / ``remove_node`` / ``set_text`` surface;
3. maintains the secondary indexes — per-node deltas when the store's
   ``index_maintenance`` is ``"incremental"`` (snapshotting removal
   entries *before* the physical removal, because handles die with their
   subtree), a wholesale :func:`repro.index.maintenance.rebuild` when it
   is ``"rebuild"``, nothing when the indexes are dropped;
4. advances the store's document digest along the operation-token hash
   chain (stores sharing a lineage agree on the digest without comparing
   texts);
5. returns a :class:`ChangeSet` carrying the change footprint — the tag /
   attribute tokens of the touched regions and the ancestor tags above
   them — which the service's result cache uses for path-selective
   invalidation.

Mutation and maintenance wall time are accounted separately
(``mutate_seconds`` vs ``index_seconds``): that split is exactly what
benchmarks/bench_update_maintenance.py prices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import UpdateError
from repro.index import maintenance
from repro.obs.trace import NULL_TRACER
from repro.schema.auction import REGIONS, auction_dtd
from repro.storage.interface import Store, store_document_text
from repro.update.ops import (
    CloseAuction, DeleteItem, PlaceBid, RegisterPerson, UpdateOp,
)
from repro.xmlio.dom import Element


def serialize_store(store: Store) -> str:
    """The store's current document as XML text (the differential oracle)."""
    return store_document_text(store)


@dataclass(slots=True)
class ChangeSet:
    """What one applied operation changed, and what it cost.

    Every operation of the set changes the document (inserts or removals
    at minimum — only the *scalar* sub-writes inside an op can no-op), so
    an applied ChangeSet always carries an advanced digest.
    """

    op_token: str
    #: Tags and ``@attribute`` names of every inserted/removed/rewritten
    #: region (the *direct* footprint a query must mention to be affected).
    changed_tokens: frozenset[str] = frozenset()
    #: Tags strictly above the change points: a query is also affected when
    #: it binds/returns one of these (it consumes the changed subtree).
    ancestor_tags: frozenset[str] = frozenset()
    digest: str | None = None
    maintenance: str = "none"           # "incremental" | "rebuild" | "none"
    mutate_seconds: float = 0.0
    index_seconds: float = 0.0
    nodes_indexed: int = 0
    removed_roots: list[str] = field(default_factory=list)


@lru_cache(maxsize=None)
def dtd_reachable_tokens(tag: str) -> frozenset[str]:
    """Every tag and ``@attribute`` token reachable below ``tag`` per the
    auction DTD — the static footprint of removing one such subtree."""
    dtd = auction_dtd()
    tokens: set[str] = set()
    seen: set[str] = set()
    stack = [tag]
    while stack:
        current = stack.pop()
        if current in seen or current not in dtd:
            continue
        seen.add(current)
        tokens.add(current)
        declaration = dtd.element(current)
        tokens.update("@" + attr.name for attr in declaration.attributes)
        stack.extend(declaration.content.allowed_tags())
    return frozenset(tokens)


def element_tokens(element: Element) -> frozenset[str]:
    """The tag and ``@attribute`` tokens of a concrete DOM subtree."""
    tokens: set[str] = set()
    stack = [element]
    while stack:
        current = stack.pop()
        tokens.add(current.tag)
        tokens.update("@" + name for name in current.attributes)
        stack.extend(current.child_elements())
    return frozenset(tokens)


class _Application:
    """One operation being applied to one store, with timed bookkeeping."""

    def __init__(self, store: Store, mode: str) -> None:
        self.store = store
        self.incremental = mode == "incremental" and store.indexes is not None
        self.mutate_seconds = 0.0
        self.index_seconds = 0.0
        self.nodes_indexed = 0
        self.tokens: set[str] = set()
        self.ancestors: set[str] = set()
        self.removed_roots: list[str] = []

    # -- timed primitives -------------------------------------------------------

    def insert(self, parent, parent_path: tuple[str, ...], element: Element):
        started = time.perf_counter()
        handle = self.store.insert_child(parent, element)
        self.mutate_seconds += time.perf_counter() - started
        self._index_insertion(handle, parent_path + (element.tag,))
        self.tokens |= element_tokens(element)
        self.ancestors.update(parent_path)
        return handle

    def insert_at(self, parent, parent_path: tuple[str, ...], element: Element,
                  index: int):
        started = time.perf_counter()
        handle = self.store.insert_child(parent, element, index)
        self.mutate_seconds += time.perf_counter() - started
        self._index_insertion(handle, parent_path + (element.tag,))
        self.tokens |= element_tokens(element)
        self.ancestors.update(parent_path)
        return handle

    def _index_insertion(self, handle, path: tuple[str, ...]) -> None:
        if not self.incremental:
            return
        started = time.perf_counter()
        self.nodes_indexed += maintenance.apply_insertion(
            self.store, self.store.indexes, handle, path)
        self.index_seconds += time.perf_counter() - started

    def remove(self, node, path: tuple[str, ...]) -> None:
        plan = None
        if self.incremental:
            started = time.perf_counter()
            plan = maintenance.plan_removal(self.store, self.store.indexes,
                                            node, path)
            self.index_seconds += time.perf_counter() - started
        started = time.perf_counter()
        self.store.remove_node(node)
        self.mutate_seconds += time.perf_counter() - started
        if plan is not None:
            started = time.perf_counter()
            self.nodes_indexed += maintenance.apply_removal(
                self.store.indexes, plan)
            self.index_seconds += time.perf_counter() - started
        self.tokens |= dtd_reachable_tokens(path[-1])
        self.ancestors.update(path[:-1])
        self.removed_roots.append(path[-1])

    def set_text(self, node, path: tuple[str, ...], text: str) -> bool:
        if self.store.string_value(node) == text:
            return False                # a no-op write changes nothing
        plan = None
        if self.incremental:
            started = time.perf_counter()
            plan = maintenance.plan_value_change(
                self.store, self.store.indexes, node, path, "text")
            self.index_seconds += time.perf_counter() - started
        started = time.perf_counter()
        self.store.set_text(node, text)
        self.mutate_seconds += time.perf_counter() - started
        if plan is not None:
            started = time.perf_counter()
            self.nodes_indexed += maintenance.apply_value_change(
                self.store, self.store.indexes, plan)
            self.index_seconds += time.perf_counter() - started
        self.tokens.add(path[-1])
        self.ancestors.update(path[:-1])
        return True

    # -- navigation helpers -----------------------------------------------------

    def child(self, node, tag: str):
        found = self.store.children_by_tag(node, tag)
        if not found:
            raise UpdateError(f"expected a <{tag}> child and found none")
        return found[0]

    def find_by_id(self, container_path: tuple[str, ...], identifier: str):
        """The entity with @id ``identifier`` under ``container_path``."""
        store = self.store
        handle = store.lookup_id(identifier)
        if handle is not None:
            if store.tag(handle) == container_path[-1]:
                return handle
            return None
        node = store.root()
        for tag in container_path[1:-1]:
            candidates = store.children_by_tag(node, tag)
            if not candidates:
                return None
            node = candidates[0]
        for candidate in store.children_by_tag(node, container_path[-1]):
            if store.attribute(candidate, "id") == identifier:
                return candidate
        return None


_OPEN_PATH = ("site", "open_auctions", "open_auction")
_CLOSED_PATH = ("site", "closed_auctions", "closed_auction")
_PERSON_PATH = ("site", "people", "person")
_WATCH_PATH = ("site", "people", "person", "watches", "watch")


def _find_watches(store: Store, auction_id: str) -> list:
    """Handles of every ``watch`` referencing ``auction_id``."""
    return _find_watches_of(store, {auction_id})[auction_id]


def _close_auction(app: _Application, op: CloseAuction) -> None:
    store = app.store
    auction = app.find_by_id(_OPEN_PATH, op.auction_id)
    if auction is None:
        raise UpdateError(f"no open auction with id {op.auction_id!r}")
    bidders = store.children_by_tag(auction, "bidder")
    if not bidders:
        raise UpdateError(
            f"open auction {op.auction_id!r} has no bidder to buy it")
    buyer = store.attribute(app.child(bidders[-1], "personref"), "person")
    seller = store.attribute(app.child(auction, "seller"), "person")
    item = store.attribute(app.child(auction, "itemref"), "item")
    price = store.string_value(app.child(auction, "current"))
    quantity = store.string_value(app.child(auction, "quantity"))
    auction_type = store.string_value(app.child(auction, "type"))
    annotation = store.build_dom(app.child(auction, "annotation"))

    closed = Element("closed_auction")
    closed.append(Element("seller", {"person": seller}))
    closed.append(Element("buyer", {"person": buyer}))
    closed.append(Element("itemref", {"item": item}))
    for tag, text in (("price", price), ("date", op.date),
                      ("quantity", quantity), ("type", auction_type)):
        leaf = closed.append(Element(tag))
        leaf.append_text(text)
    closed.append(annotation)

    watches = _find_watches(store, op.auction_id)
    root = store.root()
    closed_container = store.children_by_tag(root, "closed_auctions")[0]
    app.insert(closed_container, _CLOSED_PATH[:-1], closed)
    for watch in watches:
        app.remove(watch, _WATCH_PATH)
    app.remove(auction, _OPEN_PATH)


def _find_watches_of(store: Store, auction_ids: set) -> dict:
    """``auction id -> watch handles`` for a set of auctions, one walk."""
    root = store.root()
    people = store.children_by_tag(root, "people")[0]
    found: dict = {identifier: [] for identifier in auction_ids}
    for person in store.children_by_tag(people, "person"):
        for watches in store.children_by_tag(person, "watches"):
            for watch in store.children_by_tag(watches, "watch"):
                target = store.attribute(watch, "open_auction")
                if target in found:
                    found[target].append(watch)
    return found


def _delete_item(app: _Application, op: DeleteItem) -> None:
    store = app.store
    root = store.root()
    regions = store.children_by_tag(root, "regions")[0]
    item = None
    item_path: tuple[str, ...] = ()
    for region in REGIONS:
        container = store.children_by_tag(regions, region)
        for candidate in store.children_by_tag(container[0], "item") if container else ():
            if store.attribute(candidate, "id") == op.item_id:
                item = candidate
                item_path = ("site", "regions", region, "item")
                break
        if item is not None:
            break
    if item is None:
        raise UpdateError(f"no item with id {op.item_id!r}")

    open_container = store.children_by_tag(root, "open_auctions")[0]
    doomed_open = []
    for auction in store.children_by_tag(open_container, "open_auction"):
        itemref = store.children_by_tag(auction, "itemref")
        if itemref and store.attribute(itemref[0], "item") == op.item_id:
            doomed_open.append(auction)
    closed_container = store.children_by_tag(root, "closed_auctions")[0]
    doomed_closed = []
    for auction in store.children_by_tag(closed_container, "closed_auction"):
        itemref = store.children_by_tag(auction, "itemref")
        if itemref and store.attribute(itemref[0], "item") == op.item_id:
            doomed_closed.append(auction)

    doomed_ids = {store.attribute(auction, "id") for auction in doomed_open}
    watches_by_auction = (_find_watches_of(store, doomed_ids)
                          if doomed_open else {})
    for auction in doomed_open:
        for watch in watches_by_auction.get(store.attribute(auction, "id"), ()):
            app.remove(watch, _WATCH_PATH)
        app.remove(auction, _OPEN_PATH)
    for auction in doomed_closed:
        app.remove(auction, _CLOSED_PATH)
    app.remove(item, item_path)


def apply_update(store: Store, op: UpdateOp, *,
                 maintenance_mode: str | None = None,
                 advance_digest: bool = True,
                 tracer=NULL_TRACER) -> ChangeSet:
    """Apply one operation to one store with full logical bookkeeping.

    ``maintenance_mode`` overrides the store's ``index_maintenance``
    setting for this call (the benchmark's ablation knob).

    ``advance_digest=False`` applies the physical change and the index
    maintenance but leaves the digest chain untouched (the returned
    ChangeSet carries ``digest=None``).  Transactions use it to batch
    several operations under one digest advance; the caller then owns
    chaining the digest over the whole batch — see
    :func:`repro.db.transaction_token`.

    A ``tracer`` records one ``update.op`` span per call carrying the
    maintenance mode, timing split, and change-footprint width.
    """
    if not tracer.enabled:
        return _apply_update(store, op, maintenance_mode=maintenance_mode,
                             advance_digest=advance_digest)
    with tracer.span("update.op", op=op.token(),
                     architecture=store.architecture) as span:
        changes = _apply_update(store, op, maintenance_mode=maintenance_mode,
                                advance_digest=advance_digest)
        span.set(maintenance=changes.maintenance,
                 mutate_ms=round(changes.mutate_seconds * 1000.0, 3),
                 index_ms=round(changes.index_seconds * 1000.0, 3),
                 nodes_indexed=changes.nodes_indexed,
                 footprint=len(changes.changed_tokens))
    return changes


def _apply_update(store: Store, op: UpdateOp, *,
                  maintenance_mode: str | None = None,
                  advance_digest: bool = True) -> ChangeSet:
    store.require_loaded()
    mode = maintenance_mode or store.index_maintenance
    if mode not in ("incremental", "rebuild"):
        raise UpdateError(f"unknown maintenance mode {mode!r}")
    app = _Application(store, mode)

    if isinstance(op, RegisterPerson):
        identifier = op.person.attributes.get("id")
        if not identifier:
            raise UpdateError("RegisterPerson needs a person with an @id")
        if app.find_by_id(_PERSON_PATH, identifier) is not None:
            raise UpdateError(f"person id {identifier!r} already registered")
        people = store.children_by_tag(store.root(), "people")[0]
        app.insert(people, _PERSON_PATH[:-1], op.person)
    elif isinstance(op, PlaceBid):
        auction = app.find_by_id(_OPEN_PATH, op.auction_id)
        if auction is None:
            raise UpdateError(f"no open auction with id {op.auction_id!r}")
        current = app.child(auction, "current")
        slot = store.children(auction).index(current)
        app.insert_at(auction, _OPEN_PATH, op.bidder_element(), slot)
        amount = float(store.string_value(current)) + op.increase
        app.set_text(current, _OPEN_PATH + ("current",), f"{amount:.2f}")
    elif isinstance(op, CloseAuction):
        _close_auction(app, op)
    elif isinstance(op, DeleteItem):
        _delete_item(app, op)
    else:
        raise UpdateError(f"unknown update operation {op!r}")

    rebuilt = "none"
    if store.indexes is not None:
        if mode == "rebuild":
            started = time.perf_counter()
            maintenance.rebuild(store)
            app.index_seconds += time.perf_counter() - started
            rebuilt = "rebuild"
        elif app.incremental:
            rebuilt = "incremental"

    return ChangeSet(
        op_token=op.token(),
        digest=store.advance_digest(op.token()) if advance_digest else None,
        changed_tokens=frozenset(app.tokens),
        ancestor_tags=frozenset(app.ancestors),
        maintenance=rebuilt,
        mutate_seconds=app.mutate_seconds,
        index_seconds=app.index_seconds,
        nodes_indexed=app.nodes_indexed,
        removed_roots=app.removed_roots,
    )


def apply_transaction_ops(stores: dict[str, Store], ops, *,
                          maintenance_mode: str | None = None,
                          tracer=NULL_TRACER,
                          ) -> tuple[dict, frozenset[str], frozenset[str]]:
    """The shared commit core of a transaction: apply a batch to a set of
    stores with the digest chain suppressed.

    Operations apply in operation-major order, so a deterministic failure
    (bad target id, schema violation) leaves every store at the same
    consistent prefix.  On failure each store's digest is re-chained over
    exactly its applied operations — lineages stay truthful — and
    :class:`~repro.errors.TransactionError` is raised; callers wrap their
    own cache handling around that.  On success the caller owns advancing
    each digest once over :func:`repro.update.ops.transaction_token`.

    Returns ``(costs, changed_tokens, ancestor_tags)``: per-store cost
    cells plus the union change footprint for one invalidation pass.
    """
    from repro.errors import TransactionError, XMarkError
    costs = {name: {"mutate_ms": 0.0, "index_ms": 0.0, "nodes_indexed": 0}
             for name in stores}
    changed: set[str] = set()
    ancestors: set[str] = set()
    counts = {name: 0 for name in stores}
    try:
        for op in ops:
            for name, store in stores.items():
                changes = apply_update(store, op,
                                       maintenance_mode=maintenance_mode,
                                       advance_digest=False, tracer=tracer)
                counts[name] += 1
                changed |= changes.changed_tokens
                ancestors |= changes.ancestor_tags
                cells = costs[name]
                cells["mutate_ms"] += changes.mutate_seconds * 1000.0
                cells["index_ms"] += changes.index_seconds * 1000.0
                cells["nodes_indexed"] += changes.nodes_indexed
    except XMarkError as exc:
        applied = min(counts.values())
        for name, store in stores.items():
            for op in ops[:counts[name]]:
                store.advance_digest(op.token())
        raise TransactionError(
            f"transaction aborted at operation {applied + 1}/{len(ops)}: "
            f"{exc}", applied=applied) from exc
    for cells in costs.values():
        cells["mutate_ms"] = round(cells["mutate_ms"], 3)
        cells["index_ms"] = round(cells["index_ms"], 3)
    return costs, frozenset(changed), frozenset(ancestors)
