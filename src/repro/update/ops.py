"""The typed update operations, grounded in the auction DTD.

Each operation is a plain value object carrying *every* parameter of the
change, so applying the same operation to two stores produces the same
logical document — the property the differential tests assert.  Target
resolution happens at apply time by ID; content construction happens here,
as detached DOM subtrees the stores copy into their own representations.

The operation set mirrors what the auction site's write traffic would be:

* ``RegisterPerson`` — a new ``<person>`` appended to ``people``;
* ``PlaceBid`` — a new ``<bidder>`` appended after the existing bidders of
  an open auction (the DTD puts all bidders before ``current``) plus the
  ``current`` amount raised by the increase;
* ``CloseAuction`` — the open auction is transformed into a
  ``<closed_auction>`` (price from ``current``, buyer from the last
  bidder, annotation carried over) appended to ``closed_auctions``; the
  ``watch`` elements referencing the auction are removed so no IDREF
  dangles;
* ``DeleteItem`` — the item and every auction referencing it are removed
  (again cascading into watches) — the retirement path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlio.dom import Element
from repro.xmlio.serialize import serialize


@dataclass(frozen=True, slots=True)
class RegisterPerson:
    """Append a fully-formed ``<person>`` subtree to ``people``.

    The subtree must be DTD-valid and carry a document-unique ``id``; use
    :meth:`repro.update.stream.UpdateStream.build_person` for generated
    ones in the house style of the document generator.
    """

    person: Element

    @property
    def kind(self) -> str:
        return "register_person"

    def token(self) -> str:
        return f"register_person:{serialize(self.person)}"


@dataclass(frozen=True, slots=True)
class PlaceBid:
    """Add a bid to an open auction and raise its ``current`` amount."""

    auction_id: str
    person_id: str
    increase: float
    date: str
    time: str

    @property
    def kind(self) -> str:
        return "place_bid"

    def token(self) -> str:
        return (f"place_bid:{self.auction_id}:{self.person_id}:"
                f"{self.increase:.2f}:{self.date}:{self.time}")

    def bidder_element(self) -> Element:
        bidder = Element("bidder")
        date = bidder.append(Element("date"))
        date.append_text(self.date)
        time = bidder.append(Element("time"))
        time.append_text(self.time)
        bidder.append(Element("personref", {"person": self.person_id}))
        increase = bidder.append(Element("increase"))
        increase.append_text(f"{self.increase:.2f}")
        return bidder


@dataclass(frozen=True, slots=True)
class CloseAuction:
    """Move an open auction (with at least one bidder) to ``closed_auctions``."""

    auction_id: str
    date: str

    @property
    def kind(self) -> str:
        return "close_auction"

    def token(self) -> str:
        return f"close_auction:{self.auction_id}:{self.date}"


@dataclass(frozen=True, slots=True)
class DeleteItem:
    """Remove an item and cascade over the auctions that reference it."""

    item_id: str

    @property
    def kind(self) -> str:
        return "delete_item"

    def token(self) -> str:
        return f"delete_item:{self.item_id}"


UpdateOp = RegisterPerson | PlaceBid | CloseAuction | DeleteItem


def transaction_token(ops: "list[UpdateOp] | tuple[UpdateOp, ...]") -> str:
    """The digest-chain token of a committed transaction.

    A transaction advances the document digest *once*, over this token,
    instead of once per operation — so two stores that commit the same
    batch agree on the digest, and a batch of N ops is distinguishable
    from the same N ops applied singly (different chains for different
    write histories).
    """
    return "txn{" + ";".join(op.token() for op in ops) + "}"
