"""Top-level command line: generate, load, query, benchmark.

    xmark generate -f 0.01 -o auction.xml
    xmark dtd
    xmark query -f 0.005 -q 8 -s D
    xmark bench  -f 0.005 --table 3
    xmark validate auction.xml
"""

from __future__ import annotations

import argparse
import sys

from repro.benchmark.queries import QUERIES, TABLE3_QUERIES
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.report import (
    figure4_report, query_group_legend, table1_report, table2_report, table3_report,
)
from repro.schema.auction import REFERENCE_TARGETS, auction_dtd
from repro.schema.validator import validate
from repro.storage.bulkload import scan_baseline
from repro.xmlgen.cli import main as xmlgen_main
from repro.xmlgen.generator import generate_string
from repro.xmlio.parser import parse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="xmark", description="XMark benchmark kit")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate the benchmark document")
    generate.add_argument("rest", nargs=argparse.REMAINDER)

    commands.add_parser("dtd", help="print the auction DTD")
    commands.add_parser("queries", help="list the twenty queries")

    query = commands.add_parser("query", help="run one query on one system")
    query.add_argument("-f", "--factor", type=float, default=0.005)
    query.add_argument("-q", "--query", type=int, required=True, choices=sorted(QUERIES))
    query.add_argument("-s", "--system", default="D", choices=list("ABCDEFG"))

    bench = commands.add_parser("bench", help="regenerate a paper table/figure")
    bench.add_argument("-f", "--factor", type=float, default=0.005)
    bench.add_argument("--table", type=int, choices=(1, 2, 3), default=None)
    bench.add_argument("--figure4", action="store_true")

    validate_cmd = commands.add_parser("validate", help="validate a document against the DTD")
    validate_cmd.add_argument("path")
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "generate":
        # Pass everything through to the xmlgen CLI (argparse REMAINDER
        # cannot capture leading dashes reliably).
        return xmlgen_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "dtd":
        sys.stdout.write(auction_dtd().serialize())
        return 0
    if args.command == "queries":
        print(query_group_legend())
        return 0
    if args.command == "validate":
        with open(args.path, "r", encoding="ascii") as handle:
            document = parse(handle.read())
        report = validate(document, auction_dtd(), REFERENCE_TARGETS)
        print(f"elements={report.elements_checked} ids={report.ids_seen} "
              f"refs={report.refs_checked}")
        if report.ok:
            print("VALID")
            return 0
        for violation in report.violations[:20]:
            print(f"violation: {violation}")
        return 1

    if args.command == "query":
        text = generate_string(args.factor)
        runner = BenchmarkRunner(text, systems=(args.system,))
        timing, result = runner.run(args.system, args.query)
        print(result.serialize())
        print(f"\n-- {len(result)} item(s); compile {timing.compile_seconds*1000:.1f} ms, "
              f"execute {timing.execute_seconds*1000:.1f} ms on System {args.system}",
              file=sys.stderr)
        return 0

    if args.command == "bench":
        text = generate_string(args.factor)
        if args.figure4:
            series = {}
            for scale in (args.factor / 10, args.factor):
                doc = generate_string(scale)
                runner = BenchmarkRunner(doc, systems=("G",))
                series[scale] = {
                    q: runner.run("G", q)[0] for q in sorted(QUERIES)
                }
            print(figure4_report(series))
            return 0
        systems = tuple("ABCDEF")
        runner = BenchmarkRunner(text, systems=systems)
        if args.table == 1:
            print(table1_report(runner.load_reports, scan_baseline(text)))
        elif args.table == 2:
            grid = runner.run_matrix(("A", "B", "C"), (1, 2), repeats=3)
            print(table2_report(grid))
        else:
            grid = runner.run_matrix(systems, TABLE3_QUERIES, repeats=2)
            print(table3_report(grid))
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
