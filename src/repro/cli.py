"""Top-level command line: generate, load, query, benchmark.

    xmark generate -f 0.01 -o auction.xml
    xmark dtd
    xmark query -f 0.005 -q 8 -s D
    xmark bench  -f 0.005 --table 3
    xmark index  -f 0.005 -s BD
    xmark serve-bench -f 0.005 -s D -c 8 -n 25
    xmark shard  -f 0.005 -n 3 -q 1 -q 8
    xmark trace  -f 0.005 -q 8 -s D
    xmark stats  -f 0.005 -s D -n 25
    xmark recover --dir ./durable
    xmark checkpoint --dir ./durable
    xmark serve  -f 0.005 -s D --port 7720
    xmark client xmark://127.0.0.1:7720/auction -q 8
    xmark validate auction.xml
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.benchmark.queries import QUERIES, TABLE3_QUERIES
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.report import (
    figure4_report, query_group_legend, table1_report, table2_report, table3_report,
)
from repro.schema.auction import REFERENCE_TARGETS, auction_dtd
from repro.schema.validator import validate
from repro.storage.bulkload import scan_baseline
from repro.xmlgen.cli import main as xmlgen_main
from repro.xmlgen.generator import generate_string
from repro.xmlio.parser import parse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="xmark", description="XMark benchmark kit")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate the benchmark document")
    generate.add_argument("rest", nargs=argparse.REMAINDER)

    commands.add_parser("dtd", help="print the auction DTD")
    commands.add_parser("queries", help="list the twenty queries")

    lint = commands.add_parser(
        "lint",
        help="run the concurrency & correctness analyzer over src/repro",
        description="AST-based static analysis (repro.analyze): async-"
                    "blocking, lock-discipline, shared-state, error-"
                    "taxonomy and resource-hygiene passes, gated on new "
                    "findings relative to docs/LINT_BASELINE.json.")
    lint.add_argument("rest", nargs=argparse.REMAINDER)

    query = commands.add_parser(
        "query",
        help="run queries on the embedded database (one-shot or interactive)",
        description="Open an embedded database over a generated document "
                    "(repro.connect) and execute queries through a session: "
                    "a benchmark number (-q), raw XQuery text (positional "
                    "argument), or an interactive shell (-i) reading "
                    "blank-line-terminated queries from stdin.  Result rows "
                    "print as the cursor streams them.")
    query.add_argument("text", nargs="?", default=None,
                       help="raw XQuery text to execute (omit with -q or -i)")
    query.add_argument("-f", "--factor", type=float, default=0.005)
    query.add_argument("-q", "--query", type=int, default=None,
                       choices=sorted(QUERIES),
                       help="benchmark query number to execute")
    query.add_argument("-s", "--system", default="D", choices=list("ABCDEFG"))
    query.add_argument("--shards", type=int, default=None,
                       help="route through an N-shard scatter-gather "
                            "deployment instead of system -s")
    query.add_argument("-i", "--interactive", action="store_true",
                       help="read queries from stdin (number or XQuery text; "
                            "finish each with a blank line, :quit exits)")

    bench = commands.add_parser("bench", help="regenerate a paper table/figure")
    bench.add_argument("-f", "--factor", type=float, default=0.005)
    bench.add_argument("--table", type=int, choices=(1, 2, 3), default=None)
    bench.add_argument("--figure4", action="store_true")

    index = commands.add_parser(
        "index",
        help="inspect the secondary indexes each system builds at load",
        description="Load the document into the chosen systems and report "
                    "what repro.index built at mark_loaded time: the value "
                    "(hash) and sorted (range) fields with their entry and "
                    "distinct-key counts — the cardinality statistics the "
                    "planner's scan-vs-probe choice reads — plus the "
                    "dictionary-encoded path index and build cost.")
    index.add_argument("-f", "--factor", type=float, default=0.005,
                       help="document scaling factor (default 0.005)")
    index.add_argument("-s", "--systems", default="ABCDEFG",
                       help="system letters to load, e.g. 'D' or 'BD' "
                            "(default: all seven)")
    index.add_argument("--json", dest="json_path", default=None,
                       help="also write the summaries to this file")

    update = commands.add_parser(
        "update",
        help="apply a deterministic update workload and report maintenance cost",
        description="Load the document into the chosen systems, apply a "
                    "seeded stream of typed update operations "
                    "(register_person / place_bid / close_auction / "
                    "delete_item) through the update engine, and report "
                    "per-operation mutation and index-maintenance cost.  "
                    "All chosen systems receive the identical operations; "
                    "with two or more systems the run serializes every "
                    "document afterwards and exits non-zero if they "
                    "diverge.")
    update.add_argument("-f", "--factor", type=float, default=0.005,
                        help="document scaling factor (default 0.005)")
    update.add_argument("-s", "--systems", default="D",
                        help="system letters to update, e.g. 'D' or 'BD' "
                             "(default D)")
    update.add_argument("-n", "--operations", type=int, default=10,
                        help="number of operations to apply (default 10)")
    update.add_argument("--seed", type=int, default=None,
                        help="update stream seed (default: the built-in seed)")
    update.add_argument("--maintenance", choices=("incremental", "rebuild"),
                        default="incremental",
                        help="index maintenance mode (default incremental)")
    update.add_argument("--json", dest="json_path", default=None,
                        help="also write the per-op report to this file")

    serve = commands.add_parser(
        "serve-bench",
        help="run a concurrent multi-client workload through the query service",
        description="Load the document into the chosen systems, replay a "
                    "deterministic multi-client workload (Zipf-skewed query "
                    "popularity, exponential think times) through the "
                    "QueryService's worker pool, and report throughput, "
                    "latency percentiles, and cache hit rates.")
    serve.add_argument("-f", "--factor", type=float, default=0.005,
                       help="document scaling factor (default 0.005)")
    serve.add_argument("-s", "--systems", default="D",
                       help="system letters to serve, e.g. 'D' or 'BD' (default D)")
    serve.add_argument("-c", "--clients", type=int, default=4,
                       help="number of concurrent closed-loop clients (default 4)")
    serve.add_argument("-n", "--requests", type=int, default=25,
                       help="requests per client (default 25)")
    serve.add_argument("--workers", type=int, default=8,
                       help="worker pool size (default 8)")
    serve.add_argument("--think-ms", type=float, default=2.0,
                       help="mean client think time in ms (default 2.0)")
    serve.add_argument("--zipf", type=float, default=1.0,
                       help="Zipf exponent of query popularity (default 1.0)")
    serve.add_argument("--seed", type=int, default=None,
                       help="workload seed (default: the built-in workload seed)")
    serve.add_argument("--no-plan-cache", action="store_true",
                       help="disable compiled-plan reuse")
    serve.add_argument("--no-result-cache", action="store_true",
                       help="disable result caching")
    serve.add_argument("--json", dest="json_path", default=None,
                       help="also write the full metrics snapshot to this file")

    shard = commands.add_parser(
        "shard",
        help="partition the document and run scatter-gather queries",
        description="Split the generated document into N shards along "
                    "schema-aware extents (items by region, people by id "
                    "hash, auctions co-located by referenced item), load "
                    "each shard into a backend architecture, report the "
                    "partition layout, and optionally execute benchmark "
                    "queries through the distributed scatter-gather "
                    "executor — verifying every result against an "
                    "unsharded oracle store.")
    shard.add_argument("-f", "--factor", type=float, default=0.005,
                       help="document scaling factor (default 0.005)")
    shard.add_argument("-n", "--shards", type=int, default=3,
                       help="number of shards (default 3)")
    shard.add_argument("-b", "--backends", default="F",
                       help="backend system letters cycled across shards "
                            "(default F)")
    shard.add_argument("-q", "--query", type=int, action="append",
                       dest="queries", choices=sorted(QUERIES), default=None,
                       help="query number to execute (repeatable; default: "
                            "partition summary only)")
    shard.add_argument("--rounds", type=int, default=3,
                       help="timing rounds per query, best-of (default 3)")
    shard.add_argument("--json", dest="json_path", default=None,
                       help="also write the report to this file")

    trace = commands.add_parser(
        "trace",
        help="explain and profile one query's execution",
        description="Open a traced embedded database, print the EXPLAIN "
                    "plan (chosen access paths, shard routing, predicted "
                    "streaming barriers), execute the query, and print the "
                    "recorded span tree — where the time actually went, "
                    "layer by layer.")
    trace.add_argument("text", nargs="?", default=None,
                       help="raw XQuery text to trace (omit with -q)")
    trace.add_argument("-f", "--factor", type=float, default=0.005,
                       help="document scaling factor (default 0.005)")
    trace.add_argument("-q", "--query", type=int, default=None,
                       choices=sorted(QUERIES),
                       help="benchmark query number to trace")
    trace.add_argument("-s", "--system", default="D", choices=list("ABCDEFG"))
    trace.add_argument("--shards", type=int, default=None,
                       help="trace through an N-shard scatter-gather "
                            "deployment instead of system -s")
    trace.add_argument("--service", action="store_true",
                       help="route through the query service (admission, "
                            "plan/result caches) instead of direct execution")
    trace.add_argument("--log", dest="trace_log", default=None,
                       help="append the finished span tree to this "
                            "JSON-lines workload log")
    trace.add_argument("--json", dest="json_path", default=None,
                       help="also write {explain, profile} to this file")

    stats = commands.add_parser(
        "stats",
        help="run a service workload and print the unified metrics registry",
        description="Replay a small deterministic multi-client workload "
                    "through the QueryService, then print every metric the "
                    "unified registry collected — counters, gauges, and "
                    "ring-buffer latency histograms, with per-system "
                    "labels — in the text exposition format.")
    stats.add_argument("-f", "--factor", type=float, default=0.005,
                       help="document scaling factor (default 0.005)")
    stats.add_argument("-s", "--systems", default="D",
                       help="system letters to serve (default D)")
    stats.add_argument("-c", "--clients", type=int, default=4,
                       help="number of concurrent clients (default 4)")
    stats.add_argument("-n", "--requests", type=int, default=25,
                       help="requests per client (default 25)")
    stats.add_argument("--json", dest="json_path", default=None,
                       help="also write the registry snapshot to this file")

    recover_cmd = commands.add_parser(
        "recover",
        help="recover a durable directory (snapshot load + WAL replay)",
        description="Rebuild the committed state of a durable deployment "
                    "(repro.connect(durable=dir)): load the manifest's "
                    "snapshot, replay the WAL suffix through the update "
                    "engine, verify the digest chain record by record, and "
                    "report what was replayed, skipped, and dropped from "
                    "torn stream tails.")
    recover_cmd.add_argument("--dir", dest="directory", required=True,
                             help="the durable directory to recover")
    recover_cmd.add_argument("--backend", default="F",
                             choices=list("ABCDEFG"),
                             help="scratch architecture for replaying a "
                                  "document snapshot (default F)")
    recover_cmd.add_argument("--out", default=None,
                             help="write the recovered document to this file")
    recover_cmd.add_argument("--json", dest="json_path", default=None,
                             help="also write the recovery report to this "
                                  "file")

    checkpoint_cmd = commands.add_parser(
        "checkpoint",
        help="snapshot a durable directory's state and compact its WAL",
        description="Recover the durable directory, write a fresh snapshot "
                    "at the last committed LSN, flip the manifest to it, "
                    "truncate every WAL stream down to the records the "
                    "snapshot does not cover, and drop the superseded "
                    "snapshot file.")
    checkpoint_cmd.add_argument("--dir", dest="directory", required=True,
                                help="the durable directory to checkpoint")
    checkpoint_cmd.add_argument("--json", dest="json_path", default=None,
                                help="also write the checkpoint report to "
                                     "this file")

    serve_cmd = commands.add_parser(
        "serve",
        help="serve documents over the wire protocol (xmark://)",
        description="Generate (or read) a document, open an embedded "
                    "database over it, and serve it on a TCP socket with "
                    "the length-prefixed JSON wire protocol: handshake, "
                    "prepared queries, paged cursor fetches, transactions, "
                    "checkpoints — with per-tenant quotas and bounded "
                    "backpressure.  Connect with repro.connect("
                    "'xmark://host:port/NAME') or `xmark client`.")
    serve_cmd.add_argument("-f", "--factor", type=float, default=0.005,
                           help="document scaling factor (default 0.005)")
    serve_cmd.add_argument("--doc", dest="doc_path", default=None,
                           help="serve this XML file instead of generating")
    serve_cmd.add_argument("-s", "--systems", default="D",
                           help="system letters to load (default D)")
    serve_cmd.add_argument("--name", default="auction",
                           help="document name in the URL path "
                                "(default auction)")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=7720,
                           help="TCP port (0 picks an ephemeral port; "
                                "default 7720)")
    serve_cmd.add_argument("--workers", type=int, default=8,
                           help="worker pool size (default 8)")
    serve_cmd.add_argument("--queue-depth", type=int, default=16,
                           help="admitted requests beyond the pool before "
                                "server_busy replies (default 16)")
    serve_cmd.add_argument("--page-size", type=int, default=64,
                           help="default rows per cursor page (default 64)")
    serve_cmd.add_argument("--durable", default=None,
                           help="write-ahead-log directory (enables "
                                "checkpoint requests)")
    serve_cmd.add_argument("--max-sessions", type=int, default=64,
                           help="per-tenant connection quota (default 64)")
    serve_cmd.add_argument("--max-inflight", type=int, default=16,
                           help="per-tenant in-flight request quota "
                                "(default 16)")
    serve_cmd.add_argument("--max-cursors", type=int, default=32,
                           help="per-tenant open-cursor quota (default 32)")
    serve_cmd.add_argument("--tracing", action="store_true",
                           help="trace served queries (span trees; see "
                                "--trace-sample-rate)")
    serve_cmd.add_argument("--trace-sample-rate", type=float, default=1.0,
                           help="head-sampling rate for traces, 0..1 "
                                "(default 1.0; deterministic per tenant)")
    serve_cmd.add_argument("--slow-trace-ms", type=float, default=None,
                           help="always keep traces of requests at least "
                                "this slow, regardless of sampling")
    serve_cmd.add_argument("--query-log", default=None,
                           help="append one JSON line per served query to "
                                "this file (schema v1, rotatable)")
    serve_cmd.add_argument("--query-log-max-bytes", type=int, default=None,
                           help="rotate the query log at this size "
                                "(keeps 3 older files)")

    top_cmd = commands.add_parser(
        "top",
        help="live per-tenant view over a running xmark serve",
        description="Poll a wire server's stats and print a per-tenant "
                    "table: qps, request latency percentiles, in-flight "
                    "requests, busy (admission-refusal) rate, and cache "
                    "hit ratio.  Ctrl-C exits.")
    top_cmd.add_argument("url", help="xmark://host:port/document")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         help="seconds between polls (default 2)")
    top_cmd.add_argument("-n", "--iterations", type=int, default=0,
                         help="stop after N polls (default: run until "
                              "interrupted)")
    top_cmd.add_argument("--tenant", default=None,
                         help="tenant name for the polling connection")

    client_cmd = commands.add_parser(
        "client",
        help="run a query against a running xmark serve",
        description="Connect to a wire server, execute one query (a "
                    "benchmark number or raw XQuery text) through a "
                    "session, and print rows as the pages stream in; "
                    "--stats instead prints the server's live stats.")
    client_cmd.add_argument("url", help="xmark://host:port/document")
    client_cmd.add_argument("text", nargs="?", default=None,
                            help="raw XQuery text (omit with -q or --stats)")
    client_cmd.add_argument("-q", "--query", type=int, default=None,
                            choices=sorted(QUERIES),
                            help="benchmark query number to execute")
    client_cmd.add_argument("-s", "--system", default=None,
                            help="system letter (default: the server's "
                                 "default system)")
    client_cmd.add_argument("--tenant", default=None,
                            help="tenant name for the handshake")
    client_cmd.add_argument("--stats", action="store_true",
                            help="print the server's live stats as JSON")

    validate_cmd = commands.add_parser("validate", help="validate a document against the DTD")
    validate_cmd.add_argument("path")
    return parser


def _index_report(args) -> int:
    from repro.benchmark.systems import get_profile, parse_system_letters
    from repro.errors import BenchmarkError

    try:
        systems = parse_system_letters(args.systems)
    except BenchmarkError as exc:
        print(f"index: {exc}", file=sys.stderr)
        return 2
    text = generate_string(args.factor)
    runner = BenchmarkRunner(text, systems=systems)
    summaries: dict[str, dict] = {}
    for system in systems:
        if system in runner.failed_loads:
            print(f"system {system} failed to load: {runner.failed_loads[system]}",
                  file=sys.stderr)
            continue
        store = runner.stores[system]
        if store.indexes is None:
            print(f"System {system}: no secondary indexes built")
            continue
        summary = store.indexes.summary()
        summaries[system] = summary
        profile = get_profile(system)
        enabled = ", ".join(
            flag for flag, on in (
                ("id", profile.use_id_index and store.has_id_index()),
                ("value", profile.use_value_index),
                ("sorted", profile.use_sorted_index),
                ("path", profile.use_path_index),
            ) if on) or "none (scan-only profile)"
        print(f"System {system}  [{store.architecture}]")
        print(f"  built in {summary['build_ms']:.2f} ms over "
              f"{summary['nodes_walked']} nodes, ~{summary['size_bytes'] / 1024:.1f} kB; "
              f"planner may use: {enabled}")
        for entry in summary["value"]:
            print(f"  value   {entry['field']:55s} entries={entry['entries']:<6d} "
                  f"distinct={entry['distinct_keys']:<6d} "
                  f"avg-bucket={entry['avg_bucket']}")
        for entry in summary["sorted"]:
            span = ("empty" if entry["min"] is None
                    else f"[{entry['min']:g}, {entry['max']:g}]")
            print(f"  sorted  {entry['field']:55s} entries={entry['entries']:<6d} "
                  f"range={span}")
        paths = summary["paths"]
        if paths:
            print(f"  paths   {paths['distinct_paths']} distinct label paths over "
                  f"{paths['nodes']} nodes")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump({"factor": args.factor, "systems": summaries}, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def _update_report(args) -> int:
    from repro.benchmark.systems import make_store, parse_system_letters
    from repro.errors import BenchmarkError, XMarkError
    from repro.update import UpdateStream, apply_update, serialize_store
    from repro.update.stream import DEFAULT_UPDATE_SEED

    try:
        systems = parse_system_letters(args.systems)
    except BenchmarkError as exc:
        print(f"update: {exc}", file=sys.stderr)
        return 2
    text = generate_string(args.factor)
    stores = {}
    for system in systems:
        store = make_store(system)
        try:
            store.load(text)
        except XMarkError as exc:
            print(f"system {system} failed to load: {exc}", file=sys.stderr)
            continue
        store.index_maintenance = args.maintenance
        stores[system] = store
    if not stores:
        return 1

    seed = args.seed if args.seed is not None else DEFAULT_UPDATE_SEED
    stream = UpdateStream(next(iter(stores.values())), seed)
    report = []
    for number in range(args.operations):
        op = stream.next_op()
        stream.note_applied(op)
        row = {"op": op.token(), "systems": {}}
        for system, store in stores.items():
            changes = apply_update(store, op)
            row["systems"][system] = {
                "mutate_ms": round(changes.mutate_seconds * 1000.0, 3),
                "index_ms": round(changes.index_seconds * 1000.0, 3),
                "nodes_indexed": changes.nodes_indexed,
            }
        report.append(row)
        if hasattr(op, "person"):
            shown = f"{op.kind}:{op.person.attributes.get('id', '?')}"
        else:
            shown = ":".join(op.token().split(":", 3)[:2])
        costs = "  ".join(
            f"{system} {cells['mutate_ms'] + cells['index_ms']:7.3f} ms"
            for system, cells in row["systems"].items())
        print(f"  #{number + 1:<3d} {shown:<42s} {costs}")

    digest = next(iter(stores.values())).document_digest()
    print(f"applied {len(report)} operation(s) under {args.maintenance} "
          f"maintenance; digest {digest}")
    # The digest is a hash chain over (load, op tokens) and cannot detect a
    # store mis-applying an op — serialize and compare the actual documents.
    if len(stores) > 1:
        texts = {serialize_store(store) for store in stores.values()}
        if len(texts) != 1:
            print("update: serialized documents diverged", file=sys.stderr)
            return 1
        print("serialized documents identical across systems")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump({"factor": args.factor, "seed": seed,
                       "maintenance": args.maintenance,
                       "operations": report}, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def _shard_report(args) -> int:
    import time

    from repro.benchmark.systems import get_profile, make_store, parse_system_letters
    from repro.errors import BenchmarkError, ShardError
    from repro.shard import ShardedStore
    from repro.shard.scatter import ScatterGatherExecutor
    from repro.xquery.evaluator import evaluate
    from repro.xquery.planner import compile_query

    try:
        backends = parse_system_letters(args.backends)
    except BenchmarkError as exc:
        print(f"shard: {exc}", file=sys.stderr)
        return 2
    text = generate_string(args.factor)
    try:
        sharded = ShardedStore(args.shards, backends)
        sharded.load(text)
    except (ShardError, BenchmarkError) as exc:
        print(f"shard: {exc}", file=sys.stderr)
        return 2
    summary = sharded.partition_summary()
    print(f"partitioned f={args.factor} ({len(text)} bytes) into "
          f"{args.shards} shard(s)")
    for rank in range(args.shards):
        entities = summary["entities"][rank]
        shown = ", ".join(f"{count} {tag}" for tag, count in entities.items()
                          if count)
        print(f"  shard {rank} [{summary['backends'][rank]}] "
              f"{summary['fragment_bytes'][rank]:>9d} bytes  {shown or 'empty'}")

    report = {"factor": args.factor, "shards": args.shards,
              "partition": summary, "queries": []}
    failures = 0
    if args.queries:
        oracle = make_store(backends[0])
        oracle.load(text)
        # Partial caching off: the timed rounds should price distributed
        # execution, comparable with bench_shard_scaling.py, not LRU hits.
        with ScatterGatherExecutor(sharded, partial_cache_size=0) as executor:
            for number in args.queries:
                query = QUERIES[number].text
                outcome = executor.execute(query)
                expected = evaluate(compile_query(
                    query, oracle, get_profile(backends[0]))).serialize()
                matches = outcome.result.serialize() == expected
                failures += 0 if matches else 1
                best = float("inf")
                for _ in range(max(1, args.rounds)):
                    started = time.perf_counter()
                    executor.execute(query)
                    best = min(best, time.perf_counter() - started)
                row = {"query": number, "plan": outcome.plan_kind,
                       "shards_used": outcome.shards_used,
                       "ms": round(best * 1000.0, 3),
                       "result_size": len(outcome.result),
                       "oracle_ok": matches}
                report["queries"].append(row)
                print(f"  Q{number:<2d} plan={row['plan']:<14s} "
                      f"{row['ms']:>9.3f} ms  {row['result_size']:>5d} item(s)  "
                      f"oracle {'ok' if matches else 'MISMATCH'}")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 1 if failures else 0


def _recover_command(args) -> int:
    """``xmark recover``: offline crash recovery + digest verification."""
    from repro.errors import XMarkError
    from repro.storage.wal import recover

    try:
        report = recover(args.directory, backend=args.backend)
    except XMarkError as exc:
        print(f"recover: {exc}", file=sys.stderr)
        return 1
    print(f"recovered {args.directory}")
    print(f"  snapshot lsn {report.snapshot_lsn} "
          f"(digest {report.snapshot_digest}), "
          f"loaded in {report.load_seconds * 1000:.1f} ms")
    print(f"  replayed {report.replayed} record(s), skipped {report.skipped}, "
          f"in {report.replay_seconds * 1000:.1f} ms")
    for stream, tail in sorted(report.torn_tails.items()):
        print(f"  stream {stream}: dropped a {tail} tail")
    if report.dropped_after_gap:
        print(f"  dropped {report.dropped_after_gap} record(s) logged after "
              "a damaged commit")
    print(f"  state at lsn {report.last_lsn}, digest {report.digest}"
          + (" (sharded)" if report.sharded_store is not None else ""))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.document)
        print(f"wrote recovered document to {args.out}")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report.summary(), handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def _checkpoint_command(args) -> int:
    """``xmark checkpoint``: offline snapshot + WAL compaction."""
    from repro.errors import XMarkError
    from repro.storage.wal import DurabilityManager, recover
    from repro.storage.wal.snapshot import document_snapshot, sharded_snapshot

    try:
        report = recover(args.directory)
        with DurabilityManager(args.directory) as manager:
            manager.attach(report.last_lsn)
            sharded = report.sharded_store
            if sharded is not None:
                state = sharded.partition_state()
                snapshot = sharded_snapshot(
                    report.last_lsn, report.digest,
                    backends=list(sharded.backends),
                    fragments=sharded.shard_fragment_texts(),
                    extent_seqs=state["extent_seqs"],
                    id_map=state["id_map"])
            else:
                snapshot = document_snapshot(
                    report.last_lsn, report.digest, report.document)
            outcome = manager.checkpoint(snapshot)
    except XMarkError as exc:
        print(f"checkpoint: {exc}", file=sys.stderr)
        return 1
    print(f"checkpointed {args.directory} at lsn {outcome['lsn']}: "
          f"wrote {outcome['snapshot']}, dropped {outcome['records_dropped']} "
          "WAL record(s)")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(outcome, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def _query_command(args) -> int:
    """``xmark query``: sessions + streaming cursors over ``repro.connect``."""
    import time as _time

    from repro.db import connect
    from repro.errors import XMarkError

    if args.query is None and args.text is None and not args.interactive:
        print("query: give -q NUMBER, raw XQuery text, or -i", file=sys.stderr)
        return 2
    document = generate_string(args.factor)
    if args.shards is not None:
        database = connect(document, systems=(), shards=args.shards)
        target = "S"
    else:
        database = connect(document, systems=(args.system,))
        target = args.system

    def run_one(session, query: int | str) -> int:
        started = _time.perf_counter()
        try:
            cursor = session.execute(query, system=target)
            count = 0
            for item in cursor:         # rows print as the cursor streams
                print(cursor.rowtext(item), flush=True)
                count += 1
        except XMarkError as exc:
            print(f"query: {exc}", file=sys.stderr)
            return 1
        elapsed = (_time.perf_counter() - started) * 1000.0
        mode = "streamed" if cursor.streaming else "materialized"
        print(f"\n-- {count} item(s) in {elapsed:.1f} ms on {target} "
              f"({mode}; compile {cursor.compile_seconds * 1000:.1f} ms)",
              file=sys.stderr)
        return 0

    def parse_input(block: str) -> int | str:
        stripped = block.strip()
        return int(stripped) if stripped.isdigit() else block

    with database, database.session() as session:
        if not args.interactive:
            query = args.query if args.query is not None else args.text
            return run_one(session, query)
        print("XMark query shell — enter a benchmark number or XQuery text; "
              "finish each query with a blank line; :quit exits.",
              file=sys.stderr)
        status = 0
        buffer: list[str] = []
        for line in sys.stdin:
            stripped = line.strip()
            if stripped == ":quit":
                buffer = []             # an un-submitted query is abandoned
                break
            if stripped == "":
                if buffer:
                    status |= run_one(session, parse_input("\n".join(buffer)))
                    buffer = []
                continue
            buffer.append(line.rstrip("\n"))
        if buffer:
            status |= run_one(session, parse_input("\n".join(buffer)))
        return status


def _trace_command(args) -> int:
    """``xmark trace``: EXPLAIN + execute + PROFILE through one session."""
    from repro.db import connect
    from repro.errors import XMarkError

    if args.query is None and args.text is None:
        print("trace: give -q NUMBER or raw XQuery text", file=sys.stderr)
        return 2
    query = args.query if args.query is not None else args.text
    document = generate_string(args.factor)
    try:
        if args.shards is not None:
            database = connect(document, systems=(), shards=args.shards,
                               service=args.service, tracing=True,
                               trace_log=args.trace_log)
            target = "S"
        else:
            database = connect(document, systems=(args.system,),
                               service=args.service, tracing=True,
                               trace_log=args.trace_log)
            target = args.system
    except XMarkError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    with database, database.session() as session:
        try:
            explain = session.explain(query, system=target)
            print(explain.render())
            cursor = session.execute(query, system=target, stream=False)
            cursor.fetchall()
        except XMarkError as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 1
        span = cursor.profile()
        print()
        print("PROFILE")
        print(span.render(indent=1) if span is not None
              else "  (no span recorded)")
        if args.trace_log:
            print(f"\nappended trace to {args.trace_log}")
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump({"explain": explain.as_dict(),
                           "profile": span.to_dict() if span else None},
                          handle, indent=2)
            print(f"wrote {args.json_path}")
    return 0


def _stats_command(args) -> int:
    """``xmark stats``: a small workload, then the registry's text form."""
    from repro.benchmark.systems import parse_system_letters
    from repro.errors import BenchmarkError
    from repro.service import QueryService, WorkloadSpec
    from repro.service.workload import DEFAULT_WORKLOAD_SEED

    try:
        systems = parse_system_letters(args.systems)
        spec = WorkloadSpec(
            clients=args.clients,
            requests_per_client=args.requests,
            systems=systems,
            seed=DEFAULT_WORKLOAD_SEED,
        )
        text = generate_string(args.factor)
        with QueryService(text, systems) as service:
            for system in systems:
                if system in service.failed_loads:
                    print(f"system {system} failed to load: "
                          f"{service.failed_loads[system]}", file=sys.stderr)
                    return 1
            service.run_workload(spec)
            print(service.export_metrics(as_text=True))
            if args.json_path:
                with open(args.json_path, "w", encoding="utf-8") as handle:
                    json.dump(service.export_metrics(), handle, indent=2)
                print(f"wrote {args.json_path}")
    except BenchmarkError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    return 0


def _serve_bench(args) -> int:
    from repro.benchmark.systems import parse_system_letters
    from repro.errors import BenchmarkError
    from repro.service import QueryService, WorkloadGenerator, WorkloadSpec
    from repro.service.workload import DEFAULT_WORKLOAD_SEED

    try:
        systems = parse_system_letters(args.systems)
        spec = WorkloadSpec(
            clients=args.clients,
            requests_per_client=args.requests,
            systems=systems,
            zipf_exponent=args.zipf,
            think_mean_seconds=args.think_ms / 1000.0,
            seed=args.seed if args.seed is not None else DEFAULT_WORKLOAD_SEED,
        )
        generator = WorkloadGenerator(spec)
        text = generate_string(args.factor)
        with QueryService(
            text, systems,
            max_workers=args.workers,
            plan_cache_size=0 if args.no_plan_cache else 128,
            result_cache_size=0 if args.no_result_cache else 1024,
        ) as service:
            for system in systems:
                if system in service.failed_loads:
                    print(f"system {system} failed to load: "
                          f"{service.failed_loads[system]}", file=sys.stderr)
                    return 1
            snapshot = service.run_workload(generator)
            registry_text = service.export_metrics(as_text=True)
    except BenchmarkError as exc:
        print(f"serve-bench: {exc}", file=sys.stderr)
        return 2
    snapshot["workload"] = {
        "systems": list(systems), "clients": spec.clients,
        "requests_per_client": spec.requests_per_client,
        "zipf_exponent": spec.zipf_exponent,
        "think_mean_ms": args.think_ms, "seed": spec.seed,
        "popularity_order": list(generator.popularity_order),
    }
    print(f"served {snapshot['completed']} queries from {spec.clients} client(s) "
          f"on {'/'.join(systems)} in {snapshot['elapsed_seconds']:.3f} s "
          f"({snapshot['throughput_qps']:.1f} qps)")
    # Everything measured, straight from the unified registry.
    print(registry_text)
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def _serve_command(args) -> int:
    """``xmark serve``: the wire server on a socket until interrupted."""
    import asyncio

    from repro.benchmark.systems import parse_system_letters
    from repro.db import connect
    from repro.errors import XMarkError
    from repro.obs.trace import NULL_TRACER
    from repro.server import TenantQuota, XMarkServer

    try:
        systems = parse_system_letters(args.systems)
        if args.doc_path is not None:
            with open(args.doc_path, "r", encoding="utf-8") as handle:
                text = handle.read()
        else:
            text = generate_string(args.factor)
        database = connect(text, systems=systems, durable=args.durable,
                           tracing=args.tracing)
    except (OSError, XMarkError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    query_log = None
    if args.query_log is not None:
        from repro.obs.querylog import QueryLogWriter
        query_log = QueryLogWriter(args.query_log,
                                   max_bytes=args.query_log_max_bytes)
    server = XMarkServer(
        args.host, args.port,
        max_workers=args.workers,
        queue_depth=args.queue_depth,
        page_size=args.page_size,
        tracer=database.tracer if args.tracing else NULL_TRACER,
        trace_sample_rate=args.trace_sample_rate,
        slow_trace_ms=args.slow_trace_ms,
        query_log=query_log,
        default_quota=TenantQuota(max_sessions=args.max_sessions,
                                  max_inflight=args.max_inflight,
                                  max_cursors=args.max_cursors),
    )
    server.add_document(args.name, database, owned=True)

    async def _run() -> None:
        await server.start()
        print(f"serving {args.name} ({'/'.join(systems)}) at "
              f"xmark://{server.host}:{server.port}/{args.name}",
              flush=True)
        try:
            await server.wait_stopped()
        except asyncio.CancelledError:
            await server.stop()
            raise

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down", file=sys.stderr)
    return 0


def _parse_metric_labels(rendered: str) -> tuple[str, dict[str, str]]:
    """``name{k="v",k2="v2"}`` -> ``(name, {k: v, k2: v2})``."""
    name, brace, rest = rendered.partition("{")
    if not brace:
        return rendered, {}
    labels = {}
    for pair in rest.rstrip("}").split(","):
        key, _, value = pair.partition("=")
        labels[key] = value.strip('"')
    return name, labels


def _top_rows(stats: dict, previous: dict | None,
              interval: float) -> list[dict]:
    """One ``xmark top`` table: per-tenant live numbers from two polls."""
    metrics = stats.get("metrics", {})
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    tenants = stats.get("tenants", {})

    def tenant_counter(counter_name: str) -> dict[str, float]:
        out: dict[str, float] = {}
        for rendered, value in counters.items():
            name, labels = _parse_metric_labels(rendered)
            if name == counter_name and set(labels) == {"tenant"}:
                out[labels["tenant"]] = value
        return out

    executes = tenant_counter("server.executes_total")
    busy = tenant_counter("server.busy_total")
    plan_hits = tenant_counter("server.plan_cache_hits_total")
    result_hits = tenant_counter("server.result_cache_hits_total")
    latency: dict[str, dict] = {}
    for rendered, summary in histograms.items():
        name, labels = _parse_metric_labels(rendered)
        if name == "server.request_ms" and set(labels) == {"tenant"}:
            latency[labels["tenant"]] = summary

    prev_executes = (previous or {}).get("executes", {})
    rows = []
    for tenant in sorted(set(tenants) | set(executes) | set(latency)):
        total = executes.get(tenant, 0)
        delta = total - prev_executes.get(tenant, 0)
        qps = delta / interval if previous is not None else None
        summary = latency.get(tenant, {})
        requests = tenants.get(tenant, {}).get("requests_total", 0)
        hits = plan_hits.get(tenant, 0) + result_hits.get(tenant, 0)
        rows.append({
            "tenant": tenant,
            "qps": qps,
            "queries": total,
            "p50_ms": summary.get("p50_ms"),
            "p95_ms": summary.get("p95_ms"),
            "p99_ms": summary.get("p99_ms"),
            "inflight": tenants.get(tenant, {}).get("inflight", 0),
            "busy_rate": (busy.get(tenant, 0) / requests) if requests else 0.0,
            "cache_hit_rate": (hits / (2 * total)) if total else 0.0,
        })
    return rows


def _top_command(args) -> int:
    """``xmark top``: a polling per-tenant terminal view over ``stats``."""
    import time as _time

    from repro.errors import XMarkError
    from repro.server import connect_url

    try:
        database = connect_url(args.url, tenant=args.tenant)
    except (OSError, XMarkError) as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 1
    header = (f"{'TENANT':<12} {'QPS':>8} {'QUERIES':>8} {'P50MS':>8} "
              f"{'P95MS':>8} {'P99MS':>8} {'INFLT':>6} {'BUSY%':>6} "
              f"{'CACHE%':>7}")
    polls = 0
    previous = None
    try:
        with database:
            while True:
                stats = database.stats()
                rows = _top_rows(stats, previous, args.interval)
                print(f"-- {args.url}  connections={stats['connections']} "
                      f"active={stats['active_requests']}")
                print(header)
                for row in rows:
                    qps = ("-" if row["qps"] is None
                           else f"{row['qps']:.1f}")
                    fmt_ms = [("-" if row[key] is None else f"{row[key]:.2f}")
                              for key in ("p50_ms", "p95_ms", "p99_ms")]
                    print(f"{row['tenant']:<12} {qps:>8} "
                          f"{row['queries']:>8.0f} {fmt_ms[0]:>8} "
                          f"{fmt_ms[1]:>8} {fmt_ms[2]:>8} "
                          f"{row['inflight']:>6} "
                          f"{row['busy_rate'] * 100:>6.1f} "
                          f"{row['cache_hit_rate'] * 100:>7.1f}")
                if not rows:
                    print("(no tenant activity yet)")
                sys.stdout.flush()
                polls += 1
                if args.iterations and polls >= args.iterations:
                    return 0
                previous = {"executes": {
                    row["tenant"]: row["queries"] for row in rows}}
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, XMarkError) as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 1


def _client_command(args) -> int:
    """``xmark client``: one query (or a stats dump) over the wire."""
    import time as _time

    from repro.errors import XMarkError
    from repro.server import connect_url

    if not args.stats and args.query is None and args.text is None:
        print("client: give -q NUMBER, raw XQuery text, or --stats",
              file=sys.stderr)
        return 2
    try:
        database = connect_url(args.url, tenant=args.tenant)
    except (OSError, XMarkError) as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 1
    with database:
        if args.stats:
            stats = database.stats()
            stats.pop("kind", None)
            stats.pop("id", None)
            json.dump(stats, sys.stdout, indent=2)
            print()
            return 0
        query = args.query if args.query is not None else args.text
        started = _time.perf_counter()
        try:
            with database.session(tenant=args.tenant) as session:
                cursor = session.execute(query, system=args.system)
                count = 0
                for item in cursor:     # rows print as the pages stream in
                    print(cursor.rowtext(item), flush=True)
                    count += 1
        except XMarkError as exc:
            print(f"client: {exc}", file=sys.stderr)
            return 1
        elapsed = (_time.perf_counter() - started) * 1000.0
        print(f"\n-- {count} item(s) in {elapsed:.1f} ms over the wire "
              f"({cursor.system} on {database.document})", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "generate":
        # Pass everything through to the xmlgen CLI (argparse REMAINDER
        # cannot capture leading dashes reliably).
        return xmlgen_main(argv[1:])
    if argv and argv[0] == "lint":
        # Same passthrough idiom: the analyzer owns its option surface.
        from repro.analyze.engine import main as lint_main
        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "dtd":
        sys.stdout.write(auction_dtd().serialize())
        return 0
    if args.command == "queries":
        print(query_group_legend())
        return 0
    if args.command == "validate":
        with open(args.path, "r", encoding="ascii") as handle:
            document = parse(handle.read())
        report = validate(document, auction_dtd(), REFERENCE_TARGETS)
        print(f"elements={report.elements_checked} ids={report.ids_seen} "
              f"refs={report.refs_checked}")
        if report.ok:
            print("VALID")
            return 0
        for violation in report.violations[:20]:
            print(f"violation: {violation}")
        return 1

    if args.command == "index":
        return _index_report(args)

    if args.command == "update":
        return _update_report(args)

    if args.command == "serve-bench":
        return _serve_bench(args)

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "stats":
        return _stats_command(args)

    if args.command == "shard":
        return _shard_report(args)

    if args.command == "recover":
        return _recover_command(args)

    if args.command == "checkpoint":
        return _checkpoint_command(args)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "client":
        return _client_command(args)

    if args.command == "top":
        return _top_command(args)

    if args.command == "query":
        return _query_command(args)

    if args.command == "bench":
        text = generate_string(args.factor)
        if args.figure4:
            series = {}
            for scale in (args.factor / 10, args.factor):
                doc = generate_string(scale)
                runner = BenchmarkRunner(doc, systems=("G",))
                series[scale] = {
                    q: runner.run("G", q)[0] for q in sorted(QUERIES)
                }
            print(figure4_report(series))
            return 0
        systems = tuple("ABCDEF")
        runner = BenchmarkRunner(text, systems=systems)
        if args.table == 1:
            print(table1_report(runner.load_reports, scan_baseline(text)))
        elif args.table == 2:
            grid = runner.run_matrix(("A", "B", "C"), (1, 2), repeats=3)
            print(table2_report(grid))
        else:
            grid = runner.run_matrix(systems, TABLE3_QUERIES, repeats=2)
            print(table3_report(grid))
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
