"""Generator configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GenerationError

DEFAULT_SEED = 31337


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Immutable knobs of one generator run.

    ``scale`` is the paper's scaling factor f (Figure 3: f = 1.0 is the
    ~100 MB "standard" document).  ``seed`` picks the deterministic random
    universe; the published benchmark corresponds to one fixed seed, and any
    two runs with equal ``(scale, seed)`` produce byte-identical output.
    ``entities_per_file`` switches on the Section 5 split mode: entities are
    emitted n-per-file instead of as one large document.
    """

    scale: float = 1.0
    seed: int = DEFAULT_SEED
    entities_per_file: int | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise GenerationError(f"scaling factor must be positive, got {self.scale}")
        if self.scale > 100:
            raise GenerationError(
                f"scaling factor {self.scale} exceeds the benchmark's 'huge' size (100)"
            )
        if self.entities_per_file is not None and self.entities_per_file <= 0:
            raise GenerationError(
                f"entities_per_file must be positive, got {self.entities_per_file}"
            )
