"""Command-line interface for the document generator.

Mirrors the original ``xmlgen`` binary's surface:

    xmlgen -f 0.01 -o auction.xml          # single document
    xmlgen -f 0.01 -s 500 -d out/          # split mode, 500 entities/file
    xmlgen --dtd > auction.dtd             # emit the DTD
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.schema.auction import auction_dtd
from repro.xmlgen.config import DEFAULT_SEED, GeneratorConfig
from repro.xmlgen.generator import XMarkGenerator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xmlgen",
        description="Generate the XMark benchmark document (VLDB 2002).",
    )
    parser.add_argument(
        "-f", "--factor", type=float, default=1.0,
        help="scaling factor (1.0 = ~100 MB standard document)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="output file (default: stdout)",
    )
    parser.add_argument(
        "-s", "--split", type=int, default=None, metavar="N",
        help="split mode: emit N entities per file into --directory",
    )
    parser.add_argument(
        "-d", "--directory", default="xmark-split",
        help="output directory for split mode",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="master random seed (fixed default for reproducibility)",
    )
    parser.add_argument(
        "--dtd", action="store_true",
        help="print the auction DTD and exit",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print entity counts and timing to stderr",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.dtd:
        sys.stdout.write(auction_dtd().serialize())
        return 0

    config = GeneratorConfig(scale=args.factor, seed=args.seed, entities_per_file=args.split)
    generator = XMarkGenerator(config)
    started = time.perf_counter()

    if args.split is not None:
        paths = generator.write_split(args.directory)
        elapsed = time.perf_counter() - started
        if args.stats:
            print(f"wrote {len(paths)} files to {args.directory} in {elapsed:.2f}s",
                  file=sys.stderr)
    elif args.output:
        size = generator.write_file(args.output)
        elapsed = time.perf_counter() - started
        if args.stats:
            print(f"wrote {size} bytes to {args.output} in {elapsed:.2f}s", file=sys.stderr)
    else:
        generator.write(sys.stdout)
        elapsed = time.perf_counter() - started

    if args.stats:
        counts = generator.counts
        print(
            f"scale={args.factor} persons={counts.persons} items={counts.items} "
            f"open={counts.open_auctions} closed={counts.closed_auctions} "
            f"categories={counts.categories}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
