"""Entity cardinalities as a function of the scaling factor.

The paper scales "selected sets like the number of items and persons with the
user defined factor" and maintains the integrity constraint that "the number
of items organized by continents equals the sum of open and closed auctions".
Base cardinalities at scale 1.0 follow the published ``xmlgen``:
25 500 persons, 12 000 open auctions, 9 750 closed auctions (hence 21 750
items) and 1 000 categories, with items spread unevenly over the six world
regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.auction import REGIONS

BASE_PERSONS = 25_500
BASE_OPEN_AUCTIONS = 12_000
BASE_CLOSED_AUCTIONS = 9_750
BASE_CATEGORIES = 1_000

#: Items per region at scale 1.0 (sums to BASE_OPEN + BASE_CLOSED = 21 750).
BASE_REGION_ITEMS: dict[str, int] = {
    "africa": 550,
    "asia": 2_000,
    "australia": 2_200,
    "europe": 6_000,
    "namerica": 10_000,
    "samerica": 1_000,
}

assert sum(BASE_REGION_ITEMS.values()) == BASE_OPEN_AUCTIONS + BASE_CLOSED_AUCTIONS
assert tuple(BASE_REGION_ITEMS) == REGIONS


def _scaled(base: int, scale: float, minimum: int) -> int:
    return max(minimum, round(base * scale))


@dataclass(frozen=True, slots=True)
class EntityCounts:
    """Concrete cardinalities for one scaling factor."""

    persons: int
    open_auctions: int
    closed_auctions: int
    categories: int
    region_items: tuple[tuple[str, int], ...]

    @classmethod
    def for_scale(cls, scale: float) -> "EntityCounts":
        # Minimums keep tiny documents usable: at least one item per region
        # (6 regions), so open+closed must floor at 6 combined.
        open_auctions = _scaled(BASE_OPEN_AUCTIONS, scale, 4)
        closed_auctions = _scaled(BASE_CLOSED_AUCTIONS, scale, 2)
        items = open_auctions + closed_auctions
        return cls(
            persons=_scaled(BASE_PERSONS, scale, 4),
            open_auctions=open_auctions,
            closed_auctions=closed_auctions,
            categories=_scaled(BASE_CATEGORIES, scale, 2),
            region_items=tuple(_allocate_regions(items)),
        )

    @property
    def items(self) -> int:
        return sum(count for _, count in self.region_items)

    @property
    def catgraph_edges(self) -> int:
        """Category graph size: two outgoing edges per category on average."""
        return 2 * self.categories

    def region_offsets(self) -> dict[str, int]:
        """Index of the first item in each region (items are numbered
        contiguously per region, in DTD region order)."""
        offsets: dict[str, int] = {}
        running = 0
        for region, count in self.region_items:
            offsets[region] = running
            running += count
        return offsets

    def region_of_item(self, index: int) -> str:
        """The region holding item ``index``."""
        running = 0
        for region, count in self.region_items:
            running += count
            if index < running:
                return region
        raise IndexError(f"item index {index} out of range (items={self.items})")


def _allocate_regions(total_items: int) -> list[tuple[str, int]]:
    """Split ``total_items`` across regions proportionally to the base mix.

    Largest-remainder apportionment: deterministic, exact sum, and every
    region keeps at least one item so region-specific queries (Q13 on
    australia) stay meaningful at tiny scales.
    """
    base_total = sum(BASE_REGION_ITEMS.values())
    shares = {
        region: total_items * base / base_total
        for region, base in BASE_REGION_ITEMS.items()
    }
    floors = {region: max(1, int(share)) for region, share in shares.items()}
    assigned = sum(floors.values())
    remainders = sorted(
        REGIONS,
        key=lambda region: (shares[region] - int(shares[region]), region),
        reverse=True,
    )
    index = 0
    while assigned < total_items:
        region = remainders[index % len(remainders)]
        floors[region] += 1
        assigned += 1
        index += 1
    while assigned > total_items:  # possible when minimums pushed us over
        region = max(floors, key=lambda r: floors[r])
        if floors[region] > 1:
            floors[region] -= 1
            assigned -= 1
        else:  # pragma: no cover - cannot happen with >=6 items
            break
    return [(region, floors[region]) for region in REGIONS]
