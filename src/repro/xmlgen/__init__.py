"""``xmlgen`` — the scalable, deterministic benchmark document generator.

Reimplements the paper's Section 4.5 requirements:

1. *platform independent* — pure Python over :mod:`repro.rng`, no OS RNG;
2. *accurately scalable* — entity counts are linear in the scaling factor
   and calibrated so scale 1.0 yields a document of roughly 100 MB
   (Figure 3);
3. *time and resource efficient* — a single streaming pass with constant
   memory: no entity is ever materialised except the one being written;
4. *deterministic* — output is a pure function of ``(seed, scale)``.

Reference consistency uses the paper's replayable-stream trick
(:class:`~repro.rng.streams.StreamFamily`): item identifiers are partitioned
arithmetically between open and closed auctions, and every entity draws from
its own named stream so a referencing site can re-derive the referenced
entity's choices without any log.
"""

from repro.xmlgen.config import GeneratorConfig
from repro.xmlgen.counts import EntityCounts
from repro.xmlgen.generator import XMarkGenerator, generate_document, generate_string

__all__ = [
    "GeneratorConfig",
    "EntityCounts",
    "XMarkGenerator",
    "generate_string",
    "generate_document",
]
