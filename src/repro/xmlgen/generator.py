"""The streaming XMark document generator.

One writer pass emits the whole auction site in DTD order::

    site(regions, categories, catgraph, people, open_auctions, closed_auctions)

Determinism and constant memory come from one rule: **every entity draws all
of its randomness from its own named stream** (``person#i``, ``item#i``, ...)
derived from the master seed.  Nothing about an entity depends on how many
entities were generated before it, so any entity can be regenerated in
isolation — this is what makes the split mode (Section 5) and the reference
partitioning work without logs.

Item references are partitioned arithmetically: closed auction *k* sells item
*k*, open auction *j* sells item ``closed_auctions + j``; hence every item is
referenced exactly once and "the number of items organized by continents
equals the sum of open and closed auctions" (Section 4.5) holds by
construction.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterator
from functools import lru_cache

from repro.errors import GenerationError
from repro.rng.distributions import RandomSource
from repro.rng.streams import StreamFamily
from repro.text.generator import TextGenerator
from repro.text.vocabulary import Vocabulary
from repro.xmlgen.config import GeneratorConfig
from repro.xmlgen.counts import EntityCounts
from repro.xmlio.dom import Document
from repro.xmlio.parser import parse
from repro.xmlio.serialize import XMLWriter

#: English words planted at fixed Zipf ranks (see Vocabulary.anchors).  Rank
#: 100 puts "gold" at roughly one word in a thousand, giving Q14 a small but
#: reliably non-empty answer at every scale.
ANCHOR_WORDS: dict[int, str] = {
    250: "gold",
    600: "silver",
    1400: "diamond",
    3000: "ruby",
    6000: "emerald",
}

_AUCTION_TYPES = ("Regular", "Featured", "Dutch")
_HAPPINESS_RANGE = (1, 10)


@lru_cache(maxsize=1)
def xmark_vocabulary() -> Vocabulary:
    """The benchmark vocabulary: 17 000 Zipf words with English anchors."""
    return Vocabulary(anchors=ANCHOR_WORDS)


class XMarkGenerator:
    """Generates the benchmark document for one configuration."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()
        self.counts = EntityCounts.for_scale(self.config.scale)
        self._streams = StreamFamily(self.config.seed)
        self._text = TextGenerator(xmark_vocabulary())

    # -- public API -----------------------------------------------------------

    def write(self, out) -> None:
        """Stream the complete single-document benchmark to ``out``."""
        writer = XMLWriter(out)
        writer.declaration()
        writer.start("site")
        self._write_regions(writer)
        self._write_categories(writer)
        self._write_catgraph(writer)
        self._write_people(writer)
        self._write_open_auctions(writer)
        self._write_closed_auctions(writer)
        writer.end()
        writer.finish()

    def generate_string(self) -> str:
        buffer = io.StringIO()
        self.write(buffer)
        return buffer.getvalue()

    def write_file(self, path: str) -> int:
        """Write the document to ``path``; return the byte size."""
        with open(path, "w", encoding="ascii") as handle:
            self.write(handle)
        return os.path.getsize(path)

    def write_split(self, directory: str) -> list[str]:
        """Section 5 split mode: n entities per file.

        Every file holds one container element (``people``, ``open_auctions``,
        ..., or a region tag) wrapping at most ``entities_per_file`` entities.
        Returns the list of file paths written.  Callers validating these
        files should use the split DTD variant in which ID/IDREF attributes
        are plain required CDATA (paper Section 5's workaround).
        """
        per_file = self.config.entities_per_file
        if per_file is None:
            raise GenerationError("write_split requires entities_per_file in the config")
        os.makedirs(directory, exist_ok=True)
        paths: list[str] = []

        def emit(container: str, stem: str, chunks: Iterator[list]) -> None:
            for file_index, chunk in enumerate(chunks):
                path = os.path.join(directory, f"{stem}_{file_index:04d}.xml")
                with open(path, "w", encoding="ascii") as handle:
                    writer = XMLWriter(handle)
                    writer.declaration()
                    writer.start(container)
                    for write_entity in chunk:
                        write_entity(writer)
                    writer.end()
                    writer.finish()
                paths.append(path)

        offsets = self.counts.region_offsets()
        for region, count in self.counts.region_items:
            start = offsets[region]
            emit(region, region, _chunked(
                [self._item_emitter(start + i) for i in range(count)], per_file))
        emit("categories", "categories", _chunked(
            [self._category_emitter(i) for i in range(self.counts.categories)], per_file))
        emit("catgraph", "catgraph", _chunked(
            [self._edge_emitter(i) for i in range(self.counts.catgraph_edges)], per_file))
        emit("people", "people", _chunked(
            [self._person_emitter(i) for i in range(self.counts.persons)], per_file))
        emit("open_auctions", "open_auctions", _chunked(
            [self._open_auction_emitter(i) for i in range(self.counts.open_auctions)], per_file))
        emit("closed_auctions", "closed_auctions", _chunked(
            [self._closed_auction_emitter(i) for i in range(self.counts.closed_auctions)], per_file))
        return paths

    # -- entity emitters (late-bound for split mode) ----------------------------

    def _item_emitter(self, index: int):
        return lambda writer: self._write_item(writer, index)

    def _category_emitter(self, index: int):
        return lambda writer: self._write_category(writer, index)

    def _edge_emitter(self, index: int):
        return lambda writer: self._write_edge(writer, index)

    def _person_emitter(self, index: int):
        return lambda writer: self._write_person(writer, index)

    def _open_auction_emitter(self, index: int):
        return lambda writer: self._write_open_auction(writer, index)

    def _closed_auction_emitter(self, index: int):
        return lambda writer: self._write_closed_auction(writer, index)

    # -- sections ---------------------------------------------------------------

    def _write_regions(self, writer: XMLWriter) -> None:
        writer.start("regions")
        index = 0
        for region, count in self.counts.region_items:
            writer.start(region)
            for _ in range(count):
                self._write_item(writer, index)
                index += 1
            writer.end()
        writer.end()

    def _write_categories(self, writer: XMLWriter) -> None:
        writer.start("categories")
        for index in range(self.counts.categories):
            self._write_category(writer, index)
        writer.end()

    def _write_catgraph(self, writer: XMLWriter) -> None:
        writer.start("catgraph")
        for index in range(self.counts.catgraph_edges):
            self._write_edge(writer, index)
        writer.end()

    def _write_people(self, writer: XMLWriter) -> None:
        writer.start("people")
        for index in range(self.counts.persons):
            self._write_person(writer, index)
        writer.end()

    def _write_open_auctions(self, writer: XMLWriter) -> None:
        writer.start("open_auctions")
        for index in range(self.counts.open_auctions):
            self._write_open_auction(writer, index)
        writer.end()

    def _write_closed_auctions(self, writer: XMLWriter) -> None:
        writer.start("closed_auctions")
        for index in range(self.counts.closed_auctions):
            self._write_closed_auction(writer, index)
        writer.end()

    # -- entities -----------------------------------------------------------------

    def _write_item(self, writer: XMLWriter, index: int) -> None:
        source = self._streams.substream("item", index)
        region = self.counts.region_of_item(index)
        attributes = {"id": f"item{index}"}
        if source.boolean(0.1):
            attributes["featured"] = "yes"
        writer.start("item", attributes)
        writer.leaf("location", self._location(source, region))
        writer.leaf("quantity", str(source.uniform_int(1, 10)))
        writer.leaf("name", self._title(source))
        writer.leaf("payment", self._text.payment_type(source))
        self._write_description(writer, source)
        writer.leaf("shipping", self._text.sentence(source, 3, 8))
        for category in self._distinct_categories(source, source.uniform_int(1, 3)):
            writer.empty("incategory", {"category": f"category{category}"})
        writer.start("mailbox")
        for _ in range(source.uniform_int(0, 3)):
            writer.start("mail")
            writer.leaf("from", self._text.person_name(source))
            writer.leaf("to", self._text.person_name(source))
            writer.leaf("date", self._text.date(source))
            self._write_prose_element(writer, "text", source, rich=True)
            writer.end()
        writer.end()
        writer.end()

    def _write_category(self, writer: XMLWriter, index: int) -> None:
        source = self._streams.substream("category", index)
        writer.start("category", {"id": f"category{index}"})
        writer.leaf("name", self._title(source))
        self._write_description(writer, source)
        writer.end()

    def _write_edge(self, writer: XMLWriter, index: int) -> None:
        source = self._streams.substream("edge", index)
        total = self.counts.categories
        origin = source.uniform_int(0, total - 1)
        target = source.uniform_int(0, total - 1)
        if target == origin:
            target = (target + 1) % total
        writer.empty("edge", {"from": f"category{origin}", "to": f"category{target}"})

    def _write_person(self, writer: XMLWriter, index: int) -> None:
        source = self._streams.substream("person", index)
        writer.start("person", {"id": f"person{index}"})
        name = self._text.person_name(source)
        writer.leaf("name", name)
        writer.leaf("emailaddress", self._text.email(source, name))
        if source.boolean(0.55):
            writer.leaf("phone", self._text.phone(source))
        if source.boolean(0.6):
            writer.start("address")
            writer.leaf("street", self._text.street(source))
            writer.leaf("city", self._text.city(source))
            writer.leaf("country", self._text.country(source))
            if source.boolean(0.25):
                writer.leaf("province", self._text.province(source))
            writer.leaf("zipcode", self._text.zipcode(source))
            writer.end()
        if source.boolean(0.5):
            writer.leaf("homepage", self._text.homepage(source, name))
        if source.boolean(0.4):
            writer.leaf("creditcard", self._text.creditcard(source))
        if source.boolean(0.8):
            self._write_profile(writer, source)
        if source.boolean(0.45):
            writer.start("watches")
            for _ in range(source.uniform_int(1, 4)):
                auction = source.uniform_int(0, self.counts.open_auctions - 1)
                writer.empty("watch", {"open_auction": f"open_auction{auction}"})
            writer.end()
        writer.end()

    def _write_profile(self, writer: XMLWriter, source: RandomSource) -> None:
        attributes: dict[str, str] = {}
        if source.boolean(0.88):
            income = max(9_876.0, source.normal(60_000.0, 30_000.0))
            attributes["income"] = f"{income:.2f}"
        writer.start("profile", attributes)
        for category in self._distinct_categories(source, source.uniform_int(0, 4)):
            writer.empty("interest", {"category": f"category{category}"})
        if source.boolean(0.6):
            writer.leaf("education", self._text.education(source))
        if source.boolean(0.7):
            writer.leaf("gender", self._text.gender(source))
        writer.leaf("business", "Yes" if source.boolean(0.3) else "No")
        if source.boolean(0.4):
            writer.leaf("age", str(source.uniform_int(18, 70)))
        writer.end()

    def _write_open_auction(self, writer: XMLWriter, index: int) -> None:
        source = self._streams.substream("open", index)
        writer.start("open_auction", {"id": f"open_auction{index}"})
        initial = source.exponential(15.0) + 1.0
        writer.leaf("initial", f"{initial:.2f}")
        if source.boolean(0.45):
            writer.leaf("reserve", f"{initial * source.uniform(1.2, 3.0):.2f}")
        current = initial
        bidders = min(10, int(source.exponential(2.2)))
        for _ in range(bidders):
            increase = source.exponential(6.0) + 1.5
            current += increase
            writer.start("bidder")
            writer.leaf("date", self._text.date(source))
            writer.leaf("time", self._text.time(source))
            writer.empty("personref", {"person": self._normal_person(source)})
            writer.leaf("increase", f"{increase:.2f}")
            writer.end()
        writer.leaf("current", f"{current:.2f}")
        if source.boolean(0.3):
            writer.leaf("privacy", "Yes" if source.boolean() else "No")
        item = self.counts.closed_auctions + index
        writer.empty("itemref", {"item": f"item{item}"})
        writer.empty("seller", {"person": self._popular_person(source)})
        self._write_annotation(writer, source)
        writer.leaf("quantity", str(source.uniform_int(1, 10)))
        writer.leaf("type", source.choice(_AUCTION_TYPES))
        writer.start("interval")
        writer.leaf("start", self._text.date(source))
        writer.leaf("end", self._text.date(source))
        writer.end()
        writer.end()

    def _write_closed_auction(self, writer: XMLWriter, index: int) -> None:
        source = self._streams.substream("closed", index)
        writer.start("closed_auction")
        writer.empty("seller", {"person": self._popular_person(source)})
        writer.empty("buyer", {"person": self._uniform_person(source)})
        writer.empty("itemref", {"item": f"item{index}"})
        writer.leaf("price", self._text.amount(source, 45.0))
        writer.leaf("date", self._text.date(source))
        writer.leaf("quantity", str(source.uniform_int(1, 10)))
        writer.leaf("type", source.choice(_AUCTION_TYPES))
        if source.boolean(0.9):
            self._write_annotation(writer, source, deep_prose=True)
        writer.end()

    def _write_annotation(
        self, writer: XMLWriter, source: RandomSource, deep_prose: bool = False
    ) -> None:
        writer.start("annotation")
        writer.empty("author", {"person": self._uniform_person(source)})
        if source.boolean(0.8):
            self._write_description(writer, source, deep=deep_prose)
        writer.leaf(
            "happiness", str(source.uniform_int(*_HAPPINESS_RANGE))
        )
        writer.end()

    # -- prose --------------------------------------------------------------------

    def _write_description(
        self, writer: XMLWriter, source: RandomSource, deep: bool = False
    ) -> None:
        """A ``description`` holding either flat prose or a parlist.

        ``deep=True`` raises the odds of nested parlists, populating the long
        Q15/Q16 path ``.../parlist/listitem/parlist/listitem/text/emph/keyword``.
        """
        writer.start("description")
        parlist_probability = 0.5 if deep else 0.3
        if source.boolean(parlist_probability):
            self._write_parlist(writer, source, depth=0, deep=deep)
        else:
            self._write_prose_element(writer, "text", source, rich=True)
        writer.end()

    def _write_parlist(
        self, writer: XMLWriter, source: RandomSource, depth: int, deep: bool
    ) -> None:
        writer.start("parlist")
        for _ in range(source.uniform_int(1 if depth else 2, 3)):
            writer.start("listitem")
            nested_probability = (0.45 if deep else 0.2) if depth < 2 else 0.0
            if source.boolean(nested_probability):
                self._write_parlist(writer, source, depth + 1, deep)
            else:
                self._write_prose_element(
                    writer, "text", source, rich=True, force_nested_keyword=deep and depth > 0
                )
            writer.end()
        writer.end()

    def _write_prose_element(
        self,
        writer: XMLWriter,
        tag: str,
        source: RandomSource,
        rich: bool,
        depth: int = 0,
        force_nested_keyword: bool = False,
    ) -> None:
        """Mixed-content prose: character data with bold/keyword/emph islands."""
        writer.start(tag)
        words = source.uniform_int(30, 120) if depth == 0 else source.uniform_int(1, 4)
        emitted_nested = False
        for position in range(words):
            writer.text(self._text.vocabulary.sample(source) + " ")
            if rich and depth < 2 and source.boolean(0.12):
                inline = source.choice(("bold", "keyword", "emph"))
                nest_keyword = inline == "emph" and (
                    force_nested_keyword and not emitted_nested or source.boolean(0.5)
                )
                if nest_keyword:
                    writer.start("emph")
                    writer.text(self._text.keyword(source) + " ")
                    writer.leaf("keyword", self._text.keyword(source))
                    writer.end()
                    emitted_nested = True
                else:
                    self._write_prose_element(
                        writer, inline, source, rich=True, depth=depth + 1
                    )
        if force_nested_keyword and not emitted_nested:
            writer.start("emph")
            writer.leaf("keyword", self._text.keyword(source))
            writer.end()
        writer.end()

    # -- reference index distributions (paper Section 4.2: uniform, normal,
    # exponential reference distributions) ---------------------------------------

    def _uniform_person(self, source: RandomSource) -> str:
        return f"person{source.uniform_int(0, self.counts.persons - 1)}"

    def _popular_person(self, source: RandomSource) -> str:
        """Exponentially skewed: a few persons sell most auctions."""
        index = int(source.exponential(self.counts.persons / 8.0))
        return f"person{index % self.counts.persons}"

    def _normal_person(self, source: RandomSource) -> str:
        """Bidder distribution: normal around the middle of the person range,
        with two *anchor bidders* (person2, person3) mixed in at fixed odds.

        The anchors give the document-order query (Q4: does person2 bid
        before person3 in some auction?) a stable, scale-independent
        selectivity — the published xmlgen chose Q4's person constants to
        match its reference distributions in the same way.
        """
        if source.boolean(0.2):
            return "person2" if source.boolean() else "person3"
        persons = self.counts.persons
        index = int(source.normal(persons / 2.0, persons / 6.0))
        return f"person{min(persons - 1, max(0, index))}"

    # -- helpers ------------------------------------------------------------------

    def _distinct_categories(self, source: RandomSource, count: int) -> list[int]:
        total = self.counts.categories
        count = min(count, total)
        if count == 0:
            return []
        return sorted(source.sample_without_replacement(total, count))

    def _title(self, source: RandomSource) -> str:
        words = self._text.words(source, source.uniform_int(1, 3))
        return " ".join(word.capitalize() for word in words)

    def _location(self, source: RandomSource, region: str) -> str:
        if region == "namerica" and source.boolean(0.75):
            return "United States"
        return self._text.country(source)


def generate_string(scale: float, seed: int | None = None) -> str:
    """Generate the benchmark document text for a scaling factor."""
    config = GeneratorConfig(scale=scale) if seed is None else GeneratorConfig(scale, seed)
    return XMarkGenerator(config).generate_string()


def generate_document(scale: float, seed: int | None = None) -> Document:
    """Generate and parse the benchmark document (convenience for tests)."""
    return parse(generate_string(scale, seed))


def _chunked(items: list, size: int) -> Iterator[list]:
    for start in range(0, len(items), size):
        yield items[start : start + size]
