"""LRU caches for compiled plans and query results.

Two reuse levels with different lifetimes:

* the **plan cache** is keyed on ``(system, query_text)`` — a compiled plan
  stays valid as long as the store instance it was compiled against, so
  entries are dropped when the service (re)loads a document;
* the **result cache** is keyed on ``(system, query_text, document_digest)``
  — a result is only as durable as the document content itself, so the
  digest recorded by :meth:`repro.storage.interface.Store.mark_loaded` is
  part of the key and :meth:`ResultCache.invalidate_document` evicts every
  entry of a superseded digest.

Both are bounded, thread-safe, and count hits/misses/evictions so the
benchmark report can show cache effectiveness rather than assert it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

#: Sentinel distinguishing "key absent" from a cached ``None``/falsy value.
#: A query whose result is legitimately empty must still count as a hit.
_ABSENT = object()


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.invalidations)

    def since(self, baseline: "CacheStats") -> "CacheStats":
        """The counter deltas accumulated after ``baseline`` was copied —
        per-measurement-window statistics on a service-lifetime cache."""
        return CacheStats(
            self.hits - baseline.hits,
            self.misses - baseline.misses,
            self.evictions - baseline.evictions,
            self.invalidations - baseline.invalidations,
        )


class LRUCache:
    """A bounded, thread-safe LRU map with counted lookups.

    ``capacity <= 0`` disables the cache entirely (every lookup is a miss);
    that is how the service runs its "cache off" ablations without a second
    code path.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> tuple[Any, bool]:
        """``(value, was_hit)`` with the entry moved to most-recently-used.

        The hit flag — not the value — is what distinguishes a cached
        ``None``/falsy value from an absent key, so callers that may cache
        falsy values must branch on it rather than on the value.
        """
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            if value is _ABSENT:
                self.stats.misses += 1
                return None, False
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return value, True

    def get(self, key: Hashable) -> Any | None:
        """The cached value moved to most-recently-used, or None.

        Use :meth:`lookup` where a cached ``None`` must be told apart
        from a miss.
        """
        value, _hit = self.lookup(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> tuple[Any, bool]:
        """``(value, was_hit)``; computes and stores on a miss.

        ``compute`` runs outside the lock: plan compilation is the expensive
        part and must not serialize unrelated lookups.  Two threads missing
        on the same key may both compute; the store is idempotent.
        """
        value, hit = self.lookup(key)
        if hit:
            return value, True
        value = compute()
        self.put(key, value)
        return value, False

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns count."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        return self.invalidate_where(lambda _key: True)


class PlanCache(LRUCache):
    """Compiled plans keyed on ``(system, query_text)``."""

    @staticmethod
    def key(system: str, query_text: str) -> tuple[str, str]:
        return (system, query_text)


class ResultCache(LRUCache):
    """Query results keyed on ``(system, query_text, document_digest)``."""

    @staticmethod
    def key(system: str, query_text: str, digest: str) -> tuple[str, str, str]:
        return (system, query_text, digest)

    def invalidate_document(self, digest: str) -> int:
        """Evict every result computed against ``digest`` (document changed)."""
        return self.invalidate_where(lambda key: key[2] == digest)

    def rekey_document(self, system: str, old_digest: str, new_digest: str,
                       keep: Callable[[str], bool]) -> tuple[int, int]:
        """Re-home one system's entries after an in-place document update.

        An update bumps the document digest, which would orphan *every*
        cached result under the old key; entries whose query the update
        provably cannot affect (``keep(query_text)`` is True) are moved to
        the new digest instead of dropped, which is what makes the
        invalidation path-selective.  Returns ``(kept, dropped)``.
        """
        kept = dropped = 0
        with self._lock:
            stale = [key for key in self._entries
                     if key[0] == system and key[2] == old_digest]
            for key in stale:
                value = self._entries.pop(key)
                if keep(key[1]):
                    self._entries[(system, key[1], new_digest)] = value
                    kept += 1
                else:
                    dropped += 1
            self.stats.invalidations += dropped
        return kept, dropped
