"""The query-serving layer: concurrency and reuse on top of Systems A-G.

XMark deliberately measures single-user, cold-cache performance; the survey
literature (Darmont's *Database Benchmarks*, Simalango's XML query survey)
flags multi-user concurrency and compiled-plan reuse as exactly what such a
benchmark leaves out.  This package opens that scenario:

* :class:`~repro.service.service.QueryService` — bounded worker pool with
  per-system admission control; ``submit()`` / ``submit_batch()``.
* :class:`~repro.service.cache.PlanCache` /
  :class:`~repro.service.cache.ResultCache` — LRU caches for compiled plans
  and query results, with hit/miss statistics and digest-based invalidation.
* :class:`~repro.service.workload.WorkloadGenerator` — deterministic
  multi-client query streams (Zipf-skewed popularity, exponential think
  times) seeded through :mod:`repro.rng`.
* :class:`~repro.service.metrics.ServiceMetrics` — throughput and
  p50/p95/p99 latency collection.

See DESIGN.md ("The query service") for the architecture.
"""

from repro.service.cache import CacheStats, LRUCache, PlanCache, ResultCache
from repro.service.metrics import LatencySummary, ServiceMetrics, percentile
from repro.service.service import QueryOutcome, QueryService, ShardSpec
from repro.service.workload import ClientRequest, WorkloadGenerator, WorkloadSpec

__all__ = [
    "CacheStats",
    "ClientRequest",
    "LRUCache",
    "LatencySummary",
    "PlanCache",
    "QueryOutcome",
    "QueryService",
    "ResultCache",
    "ServiceMetrics",
    "ShardSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "percentile",
]
