"""Service-side measurement: throughput and latency percentiles.

The single-user benchmark reports per-query wall/CPU splits
(:class:`repro.benchmark.runner.QueryTiming`); a serving layer needs the
aggregate view instead — queries per second over the measurement window and
the latency distribution clients actually experience.  Percentiles use the
standard linear-interpolation estimator (the one NumPy calls ``linear``),
implemented here so the service stays dependency-free.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import BenchmarkError


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    For a sorted sample ``x`` of size ``n`` the rank is
    ``r = q/100 * (n - 1)``; the estimate interpolates between
    ``x[floor(r)]`` and ``x[ceil(r)]``.
    """
    if not samples:
        raise BenchmarkError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise BenchmarkError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Latency distribution of one measurement window (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50.0),
            p95=percentile(samples, 95.0),
            p99=percentile(samples, 99.0),
            maximum=max(samples),
        )

    def as_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000.0, 3),
            "p50_ms": round(self.p50 * 1000.0, 3),
            "p95_ms": round(self.p95 * 1000.0, 3),
            "p99_ms": round(self.p99 * 1000.0, 3),
            "max_ms": round(self.maximum * 1000.0, 3),
        }


class ServiceMetrics:
    """Thread-safe collector for one service measurement window."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._compile_latencies: list[float] = []
        self._queue_waits: list[float] = []
        self._errors = 0
        self._plan_hits = 0
        self._result_hits = 0
        self._first_start: float | None = None
        self._last_finish: float | None = None

    def record(self, *, started: float, finished: float, compile_seconds: float,
               queue_seconds: float, plan_cache_hit: bool,
               result_cache_hit: bool) -> None:
        """Record one completed query (timestamps from ``perf_counter``)."""
        with self._lock:
            self._latencies.append(finished - started)
            self._compile_latencies.append(compile_seconds)
            self._queue_waits.append(queue_seconds)
            if plan_cache_hit:
                self._plan_hits += 1
            if result_cache_hit:
                self._result_hits += 1
            if self._first_start is None or started < self._first_start:
                self._first_start = started
            if self._last_finish is None or finished > self._last_finish:
                self._last_finish = finished

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._latencies)

    def elapsed_seconds(self) -> float:
        """Width of the window from first submit-start to last finish."""
        with self._lock:
            if self._first_start is None or self._last_finish is None:
                return 0.0
            return self._last_finish - self._first_start

    def throughput_qps(self) -> float:
        elapsed = self.elapsed_seconds()
        return self.completed / elapsed if elapsed > 0 else 0.0

    def latency_summary(self) -> LatencySummary:
        with self._lock:
            samples = list(self._latencies)
        return LatencySummary.from_samples(samples)

    def snapshot(self) -> dict:
        """One JSON-ready dict: qps, latency distribution, cache hit counts."""
        with self._lock:
            latencies = list(self._latencies)
            compiles = list(self._compile_latencies)
            waits = list(self._queue_waits)
            errors = self._errors
            plan_hits = self._plan_hits
            result_hits = self._result_hits
        completed = len(latencies)
        elapsed = self.elapsed_seconds()
        return {
            "completed": completed,
            "errors": errors,
            "elapsed_seconds": round(elapsed, 4),
            "throughput_qps": round(completed / elapsed, 2) if elapsed > 0 else 0.0,
            "latency": LatencySummary.from_samples(latencies).as_dict(),
            "compile_latency": LatencySummary.from_samples(compiles).as_dict(),
            "queue_wait": LatencySummary.from_samples(waits).as_dict(),
            "plan_cache_hits": plan_hits,
            "result_cache_hits": result_hits,
        }
