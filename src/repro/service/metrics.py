"""Service-side measurement — now a shim over the unified registry.

The public surface (``percentile``, :class:`LatencySummary`,
:class:`ServiceMetrics`) is unchanged from the original collector, but
the storage moved to :mod:`repro.obs.metrics`: latency, compile and
queue-wait samples live in fixed-size ring-buffer histograms instead of
unbounded lists, so a long-running workload no longer grows memory with
every query.  Counts (``completed``, cache hits, errors) stay exact —
they are totals, not samples; percentiles are estimated over the most
recent ``window`` samples.

``ServiceMetrics.registry`` exposes the backing
:class:`~repro.obs.metrics.MetricsRegistry`, which is how the service's
numbers reach the shared text/JSON exporters (``xmark stats``,
``xmark serve-bench``).
"""

from __future__ import annotations

import threading

from repro.obs.metrics import LatencySummary, MetricsRegistry, percentile

__all__ = ["LatencySummary", "ServiceMetrics", "percentile"]

#: Samples each latency histogram retains for percentile estimation.
DEFAULT_WINDOW = 2048


class ServiceMetrics:
    """Thread-safe collector for one service measurement window.

    Compatibility shim: same API and ``snapshot()`` shape as the
    original list-backed collector, bounded memory underneath.
    """

    def __init__(self, *, window: int = DEFAULT_WINDOW,
                 registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._latency = self.registry.histogram(
            "service.latency_seconds", window=window)
        self._compile = self.registry.histogram(
            "service.compile_seconds", window=window)
        self._queue = self.registry.histogram(
            "service.queue_wait_seconds", window=window)
        self._completed = self.registry.counter("service.queries_total")
        self._errors = self.registry.counter("service.errors_total")
        self._plan_hits = self.registry.counter(
            "service.plan_cache_hits_total")
        self._result_hits = self.registry.counter(
            "service.result_cache_hits_total")
        self._window_gauge = self.registry.gauge("service.window_seconds")
        self._first_start: float | None = None
        self._last_finish: float | None = None
        self._edge_lock = threading.Lock()

    def record(self, *, started: float, finished: float,
               compile_seconds: float, queue_seconds: float,
               plan_cache_hit: bool, result_cache_hit: bool,
               system: str | None = None) -> None:
        """Record one completed query (timestamps from ``perf_counter``).

        ``system`` additionally feeds a per-system labeled counter and
        latency histogram in the shared registry.
        """
        latency = finished - started
        self._latency.observe(latency)
        self._compile.observe(compile_seconds)
        self._queue.observe(queue_seconds)
        self._completed.inc()
        if plan_cache_hit:
            self._plan_hits.inc()
        if result_cache_hit:
            self._result_hits.inc()
        if system is not None:
            self.registry.counter("service.queries_total",
                                  system=system).inc()
            self.registry.histogram("service.latency_seconds",
                                    window=self._latency.window,
                                    system=system).observe(latency)
        with self._edge_lock:
            if self._first_start is None or started < self._first_start:
                self._first_start = started
            if self._last_finish is None or finished > self._last_finish:
                self._last_finish = finished

    def record_error(self, system: str | None = None) -> None:
        self._errors.inc()
        if system is not None:
            self.registry.counter("service.errors_total", system=system).inc()

    @property
    def completed(self) -> int:
        return self._completed.value

    def elapsed_seconds(self) -> float:
        """Width of the window from first submit-start to last finish."""
        with self._edge_lock:
            if self._first_start is None or self._last_finish is None:
                return 0.0
            return self._last_finish - self._first_start

    def throughput_qps(self) -> float:
        elapsed = self.elapsed_seconds()
        return self.completed / elapsed if elapsed > 0 else 0.0

    def latency_summary(self) -> LatencySummary:
        return self._latency.summary()

    def snapshot(self) -> dict:
        """One JSON-ready dict: qps, latency distribution, cache hit counts."""
        completed = self.completed
        elapsed = self.elapsed_seconds()
        self._window_gauge.set(elapsed)
        return {
            "completed": completed,
            "errors": self._errors.value,
            "elapsed_seconds": round(elapsed, 4),
            "throughput_qps": (round(completed / elapsed, 2)
                               if elapsed > 0 else 0.0),
            "latency": self._latency.summary().as_dict(),
            "compile_latency": self._compile.summary().as_dict(),
            "queue_wait": self._queue.summary().as_dict(),
            "plan_cache_hits": self._plan_hits.value,
            "result_cache_hits": self._result_hits.value,
        }
