"""The concurrent query service.

One :class:`QueryService` owns a set of loaded stores (Systems A-G) and
serves queries against them from a bounded thread pool:

* ``submit()`` returns a future; ``submit_batch()`` fans a list out;
  ``execute()`` is the synchronous convenience.
* A per-system semaphore provides admission control: at most
  ``per_system_limit`` queries execute on one store simultaneously, so a
  burst against System A cannot starve System D's clients.
* Compiled plans are reused through a :class:`~repro.service.cache.PlanCache`
  (keyed on system + query text); results through a
  :class:`~repro.service.cache.ResultCache` (keyed additionally on the
  loaded document's content digest, so :meth:`reload_document` invalidates
  exactly the stale entries).  Secondary indexes are per-document state
  like cached results: a reload drops the superseded stores' index sets in
  the same pass (see :meth:`reload_document`), and :meth:`index_stats`
  reports what the serving stores built.
* Closed-loop multi-client experiments come from :meth:`run_workload`, which
  drives a deterministic :class:`~repro.service.workload.WorkloadGenerator`
  stream with one thread per client, honouring per-request think times.

See docs/SERVING.md for the full serving-layer guide (API, cache keying
and invalidation semantics, and how to read ``serve-bench`` output).

Plan reuse is safe because compiled plans are read-only after compilation
(see :class:`repro.xquery.planner.CompiledQuery`) and the stores' read paths
keep no shared mutable scratch; execution state lives in the evaluator's
per-call interpreter.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, replace as dataclass_replace

from repro.benchmark.queries import QUERIES
from repro.benchmark.systems import SYSTEMS, get_profile, load_stores
from repro.errors import BenchmarkError, ShardError
from repro.obs.trace import NULL_TRACER
from repro.service.cache import PlanCache, ResultCache
from repro.service.invalidation import (
    affected, footprint_fallbacks, query_footprint,
)
from repro.service.metrics import ServiceMetrics
from repro.service.workload import ClientRequest, WorkloadGenerator, WorkloadSpec
from repro.shard.scatter import ScatterGatherExecutor
from repro.shard.store import DEFAULT_BACKEND, ShardedStore
from repro.storage.bulkload import BulkloadReport, bulkload
from repro.storage.interface import Store, document_digest
from repro.update.engine import ChangeSet, apply_update as engine_apply_update
from repro.update.ops import UpdateOp
from repro.update.stream import UpdateStream
from repro.xquery.evaluator import QueryResult, evaluate
from repro.xquery.planner import CompiledQuery, compile_query


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """Configuration of the service's sharded deployment.

    When given to :class:`QueryService`, the service additionally serves a
    pseudo-system (``name``, default ``"S"``) backed by a
    :class:`~repro.shard.store.ShardedStore` over ``shards`` instances of
    the ``backends`` architectures, executed through a
    :class:`~repro.shard.scatter.ScatterGatherExecutor`.  Reads hold the
    system's admission permit like any other system's, scatter subtasks
    additionally pass per-shard admission (``per_shard_limit``), and
    writes drain the system gate before routing through the update
    engine — the same torn-read guarantee the unsharded systems get.
    """

    shards: int = 2
    backends: tuple[str, ...] = (DEFAULT_BACKEND,)
    name: str = "S"
    per_shard_limit: int = 2
    partial_cache_size: int = 512


@dataclass(frozen=True, slots=True)
class QueryOutcome:
    """What one served query cost and where the work was saved."""

    system: str
    query_text: str
    result_size: int
    compile_seconds: float
    execute_seconds: float
    queue_seconds: float
    submitted: float
    finished: float
    plan_cache_hit: bool
    result_cache_hit: bool
    result: QueryResult
    span: object = None                 # the service.query root span when traced

    @property
    def latency_seconds(self) -> float:
        """Client-visible latency: submission to completion."""
        return self.finished - self.submitted


class QueryService:
    """Multi-user query serving over the benchmark's store architectures."""

    def __init__(
        self,
        document: str,
        systems: tuple[str, ...] = ("D",),
        *,
        max_workers: int = 8,
        per_system_limit: int | None = None,
        plan_cache_size: int = 128,
        result_cache_size: int = 1024,
        shard_spec: ShardSpec | None = None,
        tracer=NULL_TRACER,
        durability=None,
        query_log=None,
    ) -> None:
        if max_workers <= 0:
            raise BenchmarkError(f"max_workers must be positive, got {max_workers}")
        if shard_spec is not None and shard_spec.name in SYSTEMS:
            raise BenchmarkError(
                f"shard system name {shard_spec.name!r} collides with a "
                "benchmark system letter")
        self.shard_spec = shard_spec
        self.tracer = tracer
        self._shard_executor: ScatterGatherExecutor | None = None
        self.stores: dict[str, Store] = {}
        self.load_reports: dict[str, BulkloadReport] = {}
        self.failed_loads: dict[str, str] = {}
        self._load(document, systems)
        limit = per_system_limit if per_system_limit is not None else max_workers
        if limit <= 0:
            raise BenchmarkError(f"per_system_limit must be positive, got {limit}")
        self.per_system_limit = limit
        served = systems + ((shard_spec.name,) if shard_spec is not None else ())
        self._admission = {name: threading.BoundedSemaphore(limit) for name in served}
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = ResultCache(result_cache_size)
        self.metrics = ServiceMetrics()
        # Structured per-query JSON-lines log (docs/OBSERVABILITY.md);
        # a path constructs a writer the service owns and closes.
        self._owns_query_log = query_log is not None and not hasattr(
            query_log, "record")
        if self._owns_query_log:
            from repro.obs.querylog import QueryLogWriter
            query_log = QueryLogWriter(query_log)
        self.query_log = query_log
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="xmark-query")
        self._closed = False
        self.updates_applied = 0
        self._update_lock = threading.RLock()   # writers serialize globally
        self._update_stream: UpdateStream | None = None
        #: Optional :class:`~repro.storage.wal.DurabilityManager`: when
        #: set, every write logs to the WAL *before* the engine applies
        #: it (see docs/DURABILITY.md).  Usually wired by the connection.
        self.durability = durability

    # -- lifecycle ----------------------------------------------------------------

    def _load(self, document: str,
              systems: tuple[str, ...]) -> ScatterGatherExecutor | None:
        """Load the stores; returns the superseded scatter executor, if any.

        The caller owns closing it: an in-flight scatter query may still
        hold a reference, so the close must wait behind the shard system's
        drained admission gate (:meth:`reload_document`), never happen
        here mid-swap.
        """
        spec = self.shard_spec
        plain = tuple(name for name in systems
                      if spec is None or name != spec.name)
        stores, reports, failed = load_stores(document, plain)
        self.stores.update(stores)
        self.load_reports.update(reports)
        self.failed_loads.update(failed)
        superseded = None
        if spec is not None:
            sharded = ShardedStore(spec.shards, spec.backends)
            try:
                self.load_reports[spec.name] = bulkload(sharded, document, spec.name)
            except Exception as exc:
                self.failed_loads[spec.name] = str(exc)
            else:
                self.stores[spec.name] = sharded
                superseded = self._shard_executor
                self._shard_executor = ScatterGatherExecutor(
                    sharded,
                    per_shard_limit=spec.per_shard_limit,
                    partial_cache_size=spec.partial_cache_size,
                    tracer=self.tracer,
                )
        return superseded

    def reload_document(self, document: str) -> None:
        """Replace the loaded document on every serving system.

        Compiled plans are bound to the old store instances and every cached
        result to the old digest, so both caches shed exactly that state —
        the invalidation contract the result cache exists for.  The
        superseded stores' secondary indexes are dropped in the same pass:
        per-document state (indexes, cached results) is invalidated
        together, and the fresh stores rebuild their indexes at load.

        Reloading does not drain the pool: a query already executing keeps
        its reference to the old store and may finish (and briefly re-cache)
        against the old digest; with the old indexes dropped, any
        index-backed plan it carries degrades to its scan equivalent —
        same results, no stale index reads.  Callers needing a hard
        cut-over should let outstanding futures complete before reloading.

        Reloading the *same* content is a no-op: when every serving store's
        digest already equals the new text's digest there is no stale state
        to shed, so stores, plans, results, and indexes all survive.

        Reloads serialize with in-place updates (the update lock): a
        reload racing :meth:`apply_update` could otherwise swap the store
        set mid-write and fork the serving systems' document lineages.
        """
        self._require_open()
        with self._update_lock:
            new_digest = document_digest(document)
            if (self.stores and not self.failed_loads
                    and all(store.document_digest() == new_digest
                            for store in self.stores.values())):
                return
            if self.durability is not None:
                from repro.errors import DurabilityError
                raise DurabilityError(
                    "a durable service cannot reload a different document; "
                    "the WAL lineage would fork")
            systems = tuple(self._admission)
            old_stores = list(self.stores.values())
            old_digests = {store.document_digest() for store in old_stores}
            # Overwrite the store map in place rather than clear-then-load:
            # readers resolve stores without the update lock, and a cleared
            # map would make every serving system flicker "unavailable"
            # for the duration of the bulkloads.  The dict object itself is
            # shared with embedded connections, so its identity must hold.
            self.load_reports.clear()
            self.failed_loads.clear()
            superseded = self._load(document, systems)
            for name in [name for name in self.stores
                         if name in self.failed_loads]:
                del self.stores[name]   # the old store must not keep serving
            if superseded is not None:
                # An in-flight scatter query may still hold the superseded
                # executor (it grabbed the reference before the swap).
                # Readers hold one admission permit for their whole
                # execution, so draining the shard system's gate proves no
                # such holder remains — only then is close() safe.
                spec = self.shard_spec
                if spec is not None and spec.name in self._admission:
                    with self._exclusive(spec.name):
                        pass
                superseded.close()
            self.plan_cache.clear()
            self._update_stream = None
            for store in old_stores:
                store.drop_indexes()
            for digest in old_digests:
                if digest:
                    self.result_cache.invalidate_document(digest)

    # -- the write path ------------------------------------------------------------

    @contextmanager
    def write_barrier(self):
        """Hold the global update lock: no write commits while held.

        Checkpoints use this to snapshot a commit-consistent state;
        readers are unaffected (they never mutate the stores).
        """
        with self._update_lock:
            yield

    def _log_commit(self, ops, *, kind: str, stream: int = 0) -> None:
        """WAL-before-apply: make the commit durable before any store
        mutates (no-op on a non-durable service).  Caller holds the
        update lock."""
        if self.durability is None or not self.stores:
            return
        from repro.storage.interface import chain_digest
        from repro.update.ops import transaction_token
        prev = next(iter(self.stores.values())).document_digest() or ""
        token = (transaction_token(ops) if kind == "txn"
                 else ops[0].token())
        self.durability.log_commit(ops, kind=kind, prev_digest=prev,
                                   digest=chain_digest(prev, token),
                                   stream=stream)

    def _commit_stream(self, op: UpdateOp) -> int:
        """The WAL stream one single-op commit routes to: its primary
        shard when the durable deployment is per-shard, stream 0 else."""
        manager = self.durability
        if manager is None or manager.stream_count == 1:
            return 0
        spec = self.shard_spec
        sharded = self.stores.get(spec.name) if spec is not None else None
        if sharded is None or sharded.shard_count != manager.stream_count:
            return 0
        return sharded.route_op(op)

    @contextmanager
    def _exclusive(self, system: str):
        """Drain and hold every admission permit of one system.

        Readers hold one permit for the duration of their execution, so
        holding all of them is a write lock: no reader can observe a
        half-applied document, and the writer waits for in-flight reads.
        """
        gate = self._admission[system]
        acquired = 0
        try:
            for _ in range(self.per_system_limit):
                gate.acquire()
                acquired += 1
            yield
        finally:
            for _ in range(acquired):
                gate.release()

    def apply_update(self, op: UpdateOp, *,
                     maintenance: str | None = None) -> dict:
        """Apply one update operation to every serving store.

        Per system, the write runs under that system's drained admission
        gate (readers never see a torn document), the document digest
        advances along the operation chain, and the result cache is
        re-keyed path-selectively: entries whose query the change footprint
        cannot affect stay cached under the new digest, the rest are
        dropped.  Compiled plans survive — they resolve index probes
        through the store at execution time, so a maintained (or rebuilt,
        or dropped) IndexSet never leaves them wrong, only differently
        fast.  Returns a per-system summary of what the write cost.

        Writers serialize globally (the update lock): interleaved writers
        could otherwise reach the serving systems in different orders and
        fork their document lineages.
        """
        self._require_open()
        tracer = self.tracer
        root = (tracer.begin("service.update", op=op.token(),
                             systems=len(self.stores))
                if tracer.enabled else None)
        summary: dict[str, dict] = {}
        changes: ChangeSet | None = None
        try:
            with tracer.activate(root), self._update_lock:
                self._log_commit([op], kind="op",
                                 stream=self._commit_stream(op))
                for name, store in self.stores.items():
                    old_digest = store.document_digest() or ""
                    with self._exclusive(name):
                        changes = engine_apply_update(
                            store, op, maintenance_mode=maintenance,
                            tracer=tracer)
                    with tracer.span("service.invalidate",
                                     system=name) as inv:
                        kept, dropped = self.result_cache.rekey_document(
                            name, old_digest, changes.digest or "",
                            lambda text: not affected(query_footprint(text),
                                                      changes))
                        inv.set(results_kept=kept, results_dropped=dropped,
                                footprint=len(changes.changed_tokens))
                    summary[name] = {
                        "maintenance": changes.maintenance,
                        "mutate_ms": round(changes.mutate_seconds * 1000.0, 3),
                        "index_ms": round(changes.index_seconds * 1000.0, 3),
                        "nodes_indexed": changes.nodes_indexed,
                        "results_kept": kept,
                        "results_dropped": dropped,
                    }
                self.updates_applied += 1
        finally:
            if root is not None:
                root.finish()
        return {"op": op.token(), "systems": summary}

    def apply_transaction(self, ops: list[UpdateOp], *,
                          maintenance: str | None = None) -> dict:
        """Commit a batch of update operations as one atomic unit.

        All serving systems' admission gates are drained and held for the
        whole batch, so no reader ever observes an intermediate document
        between the batch's operations — the transaction isolation the
        per-op :meth:`apply_update` cannot give.  Each store receives the
        operations in operation-major order (a deterministic failure
        leaves every store at the same consistent prefix), the digest
        advances *once* per store over the batch token, and the result
        cache is re-keyed in one path-selective pass over the union of
        the batch's change footprints.

        No rollback: on failure the applied prefix stays, each store's
        digest advances over exactly its applied operations (so lineages
        remain truthful), that store's cached results are dropped
        conservatively, and :class:`~repro.errors.TransactionError`
        reports how far the batch got.
        """
        self._require_open()
        if not ops:
            return {"ops": [], "systems": {}, "digest": None}
        from repro.errors import TransactionError
        from repro.update.engine import apply_transaction_ops
        from repro.update.ops import transaction_token
        summary: dict[str, dict] = {}
        tracer = self.tracer
        root = (tracer.begin("service.transaction", ops=len(ops),
                             systems=len(self.stores))
                if tracer.enabled else None)
        try:
            with tracer.activate(root), \
                    self._update_lock, ExitStack() as gates:
                for name in self.stores:
                    gates.enter_context(self._exclusive(name))
                old_digests = {name: store.document_digest() or ""
                               for name, store in self.stores.items()}
                self._log_commit(ops, kind="txn")
                try:
                    costs, changed_tokens, ancestor_tags = \
                        apply_transaction_ops(
                            self.stores, ops, maintenance_mode=maintenance,
                            tracer=tracer)
                except TransactionError:
                    # the committed prefix's digests are already re-chained;
                    # drop those stores' cached results conservatively
                    for digest in old_digests.values():
                        self.result_cache.invalidate_document(digest)
                    if root is not None:
                        root.set(error="TransactionError")
                    raise
                union = ChangeSet(
                    op_token=transaction_token(ops),
                    changed_tokens=changed_tokens,
                    ancestor_tags=ancestor_tags,
                )
                digest = None
                for name, store in self.stores.items():
                    digest = store.advance_digest(union.op_token)
                    with tracer.span("service.invalidate",
                                     system=name) as inv:
                        kept, dropped = self.result_cache.rekey_document(
                            name, old_digests[name], digest,
                            lambda text: not affected(query_footprint(text),
                                                      union))
                        inv.set(results_kept=kept, results_dropped=dropped,
                                footprint=len(union.changed_tokens))
                    summary[name] = dict(costs[name], results_kept=kept,
                                         results_dropped=dropped)
                self.updates_applied += 1
        finally:
            if root is not None:
                root.finish()
        return {"ops": [op.token() for op in ops], "systems": summary,
                "digest": digest}

    def apply_next_update(self, *, maintenance: str | None = None) -> dict:
        """Generate and apply the next operation of the service's
        deterministic update stream (the mixed workload's write slot)."""
        with self._update_lock:
            if self._update_stream is None:
                first = next(iter(self.stores))
                self._update_stream = UpdateStream(self.stores[first])
            op = self._update_stream.next_op()
            self._update_stream.note_applied(op)
            return self.apply_update(op)

    def close(self) -> None:
        # The flag flips under the update lock so concurrent closers agree
        # on exactly one winner; the pool drain stays outside it because
        # in-flight work may touch the admission gates and caches.
        with self._update_lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)
        if self._shard_executor is not None:
            self._shard_executor.close()
        if self.query_log is not None and self._owns_query_log:
            self.query_log.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise BenchmarkError("query service is closed")

    # -- submission ----------------------------------------------------------------

    def store(self, system: str) -> Store:
        try:
            return self.stores[system]
        except KeyError:
            reason = self.failed_loads.get(system, "not loaded")
            raise BenchmarkError(f"system {system} unavailable: {reason}") from None

    def _query_text(self, query: int | str) -> str:
        if isinstance(query, int):
            try:
                return QUERIES[query].text
            except KeyError:
                raise BenchmarkError(f"unknown query number {query}") from None
        return query

    def submit(self, system: str, query: int | str) -> "Future[QueryOutcome]":
        """Enqueue one query (a benchmark number or raw XQuery text)."""
        self._require_open()
        self.store(system)  # fail fast on unavailable systems
        text = self._query_text(query)
        submitted = time.perf_counter()
        return self._pool.submit(self._serve, system, text, submitted)

    def submit_batch(self, requests: list[tuple[str, int | str]]) -> list["Future[QueryOutcome]"]:
        return [self.submit(system, query) for system, query in requests]

    def execute(self, system: str, query: int | str) -> QueryOutcome:
        return self.submit(system, query).result()

    # -- the worker body ------------------------------------------------------------

    def _serve(self, system: str, text: str, submitted: float) -> QueryOutcome:
        tracer = self.tracer
        root = (tracer.begin("service.query", system=system, query=text)
                if tracer.enabled else None)
        with tracer.activate(root):
            gate = self._admission[system]
            with tracer.span("service.admission") as admission:
                gate.acquire()
                started = time.perf_counter()
                admission.set(queue_ms=round((started - submitted) * 1000.0, 3))
            try:
                outcome = self._run_query(system, text, submitted, started)
            except Exception as exc:
                self.metrics.record_error(system=system)
                if root is not None:
                    root.set(error=type(exc).__name__).finish()
                if self.query_log is not None:
                    self.query_log.record(
                        source="service", span=root, system=system,
                        query_text=text, error=type(exc).__name__,
                        duration_ms=round(
                            (time.perf_counter() - submitted) * 1000.0, 3))
                raise
            finally:
                gate.release()
        self.metrics.record(
            started=submitted,
            finished=outcome.finished,
            compile_seconds=outcome.compile_seconds,
            queue_seconds=outcome.queue_seconds,
            plan_cache_hit=outcome.plan_cache_hit,
            result_cache_hit=outcome.result_cache_hit,
            system=system,
        )
        if root is not None:
            root.set(result_size=outcome.result_size,
                     plan_cache_hit=outcome.plan_cache_hit,
                     result_cache_hit=outcome.result_cache_hit).finish()
            outcome = dataclass_replace(outcome, span=root)
        if self.query_log is not None:
            self.query_log.record(
                source="service", span=root, system=system,
                query_text=text, rows=outcome.result_size,
                duration_ms=round(
                    (outcome.finished - outcome.submitted) * 1000.0, 3),
                queue_ms=round(outcome.queue_seconds * 1000.0, 3),
                plan_cache_hit=outcome.plan_cache_hit,
                result_cache_hit=outcome.result_cache_hit)
        return outcome

    def _run_query(self, system: str, text: str, submitted: float,
                   started: float) -> QueryOutcome:
        store = self.store(system)
        digest = store.document_digest() or ""
        result_key = ResultCache.key(system, text, digest)
        with self.tracer.span("service.result_cache") as cache_span:
            cached_result, cache_hit = self.result_cache.lookup(result_key)
            cache_span.set(hit=cache_hit)
        if cache_hit:
            finished = time.perf_counter()
            return QueryOutcome(
                system=system, query_text=text,
                result_size=len(cached_result),
                compile_seconds=0.0, execute_seconds=0.0,
                queue_seconds=started - submitted,
                submitted=submitted, finished=finished,
                plan_cache_hit=False, result_cache_hit=True,
                result=cached_result,
            )

        if self.shard_spec is not None and system == self.shard_spec.name:
            return self._run_sharded(system, text, submitted, started, result_key)

        compile_start = time.perf_counter()
        plan_key = PlanCache.key(system, text)
        with self.tracer.span("service.plan_cache") as plan_span:
            compiled, plan_hit = self.plan_cache.get_or_compute(
                plan_key,
                lambda: compile_query(text, store, get_profile(system),
                                      tracer=self.tracer),
            )
            if compiled.store is not store:
                # A reload raced this request: the cached plan is bound to the
                # previous document's store.  Recompile against the current one
                # so the result always matches the digest in the cache key.
                compiled = compile_query(text, store, get_profile(system),
                                         tracer=self.tracer)
                plan_hit = False
                self.plan_cache.put(plan_key, compiled)
            plan_span.set(hit=plan_hit)
        compile_end = time.perf_counter()
        result = evaluate(compiled, tracer=self.tracer)
        finished = time.perf_counter()
        self.result_cache.put(result_key, result)
        return QueryOutcome(
            system=system, query_text=text,
            result_size=len(result),
            compile_seconds=0.0 if plan_hit else compile_end - compile_start,
            execute_seconds=finished - compile_end,
            queue_seconds=started - submitted,
            submitted=submitted, finished=finished,
            plan_cache_hit=plan_hit, result_cache_hit=False,
            result=result,
        )

    def _run_sharded(self, system: str, text: str, submitted: float,
                     started: float, result_key) -> QueryOutcome:
        """Serve one query through the scatter-gather executor.

        The executor keeps its own distributed-plan and per-shard partial
        caches (the latter keyed by shard digests — the shard-selective
        layer); the service-level result cache sits above both, keyed by
        the sharded store's global digest exactly like every other
        system's.  A reload swaps the executor; a request that raced the
        swap retries once on the replacement.
        """
        execute_start = time.perf_counter()
        executor = self._shard_executor
        try:
            outcome = executor.execute(text)
        except (RuntimeError, ShardError):
            # Executor superseded by a reload: a closed executor raises
            # ShardError from its own gate, RuntimeError from a pool
            # already shut down mid-scatter.  Retry once on the current one.
            executor = self._shard_executor
            outcome = executor.execute(text)
        finished = time.perf_counter()
        result = outcome.result
        self.result_cache.put(result_key, result)
        return QueryOutcome(
            system=system, query_text=text,
            result_size=len(result),
            compile_seconds=0.0,
            execute_seconds=finished - execute_start,
            queue_seconds=started - submitted,
            submitted=submitted, finished=finished,
            plan_cache_hit=outcome.plan_cache_hit, result_cache_hit=False,
            result=result,
        )

    # -- workload driving ------------------------------------------------------------

    def run_workload(self, workload: WorkloadSpec | WorkloadGenerator,
                     *, reset_metrics: bool = True) -> dict:
        """Drive a closed-loop multi-client workload; returns the metrics snapshot.

        One driver thread per client replays that client's deterministic
        stream: sleep the request's think time, submit, wait for completion.
        Overlap between clients is what the service's pool and admission
        control are being measured on.
        """
        self._require_open()
        generator = (workload if isinstance(workload, WorkloadGenerator)
                     else WorkloadGenerator(workload))
        for system in generator.spec.systems:
            self.store(system)  # every targeted system must be serving
        if reset_metrics:
            # Swap under the update lock: driver threads from a previous
            # workload may still be publishing into the old snapshot.
            with self._update_lock:
                self.metrics = ServiceMetrics()
        plan_baseline = self.plan_cache.stats.copy()
        result_baseline = self.result_cache.stats.copy()
        streams = generator.streams()
        failures: list[BaseException] = []
        update_seconds: list[float] = []

        def drive(stream: list[ClientRequest]) -> None:
            for request in stream:
                if request.think_seconds > 0:
                    time.sleep(request.think_seconds)
                try:
                    if request.kind == "update":
                        started = time.perf_counter()
                        self.apply_next_update()
                        update_seconds.append(time.perf_counter() - started)
                    else:
                        self.submit(request.system, request.query).result()
                except BaseException as exc:  # surfaced after the run
                    failures.append(exc)
                    return

        clients = [threading.Thread(target=drive, args=(stream,), daemon=True)
                   for stream in streams]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        if failures:
            raise failures[0]
        snapshot = self.metrics.snapshot()
        snapshot["clients"] = generator.spec.clients
        snapshot["updates"] = {
            "count": len(update_seconds),
            "mean_ms": round(
                sum(update_seconds) / len(update_seconds) * 1000.0, 3)
            if update_seconds else 0.0,
            "max_ms": round(max(update_seconds) * 1000.0, 3)
            if update_seconds else 0.0,
        }
        # Cache counters are service-lifetime; report this window's deltas so
        # hit rates describe the same interval as the latency/qps numbers.
        snapshot["plan_cache"] = self.plan_cache.stats.since(plan_baseline).as_dict()
        snapshot["result_cache"] = self.result_cache.stats.since(result_baseline).as_dict()
        return snapshot

    # -- reporting -------------------------------------------------------------------

    @property
    def registry(self):
        """The service's unified :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.metrics.registry

    def export_metrics(self, *, as_text: bool = False):
        """One registry view of everything the service measures.

        Refreshes the cache-layer gauges from the live cache counters
        (those are mutated outside the registry), then returns either the
        JSON-ready snapshot or the text rendering (``as_text=True``).
        """
        registry = self.registry
        for cache_name, stats in (("plan", self.plan_cache.stats),
                                  ("result", self.result_cache.stats)):
            for field_name in ("hits", "misses", "evictions"):
                registry.gauge(f"cache.{field_name}",
                               cache=cache_name).set(getattr(stats,
                                                             field_name))
            registry.gauge("cache.hit_rate", cache=cache_name).set(
                stats.hit_rate)
        registry.gauge("service.updates_applied").set(self.updates_applied)
        registry.gauge("service.footprint_fallbacks").set(
            footprint_fallbacks())
        return registry.render_text() if as_text else registry.snapshot()

    def cache_stats(self) -> dict:
        return {
            "plan_cache": self.plan_cache.stats.as_dict(),
            "result_cache": self.result_cache.stats.as_dict(),
        }

    def index_stats(self) -> dict:
        """Per-system secondary-index summaries (what was built at load)."""
        return {
            name: store.indexes.summary()
            for name, store in self.stores.items()
            if store.indexes is not None
        }

    def shard_stats(self) -> dict:
        """The sharded deployment's partition layout and cache counters
        (empty when the service runs without a :class:`ShardSpec`)."""
        if self.shard_spec is None or self.shard_spec.name not in self.stores:
            return {}
        sharded: ShardedStore = self.stores[self.shard_spec.name]
        executor = self._shard_executor
        return {
            "partition": sharded.partition_summary(),
            "shard_digests": [sharded.shard_digest(rank)
                              for rank in range(sharded.shard_count)],
            "plan_cache": executor.plan_cache.stats.as_dict(),
            "partial_cache": executor.partial_cache.stats.as_dict(),
        }
