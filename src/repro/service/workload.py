"""Deterministic multi-client workload generation.

XMark runs each query once, alone, from a cold cache.  A serving scenario
needs the opposite: many clients issuing overlapping streams in which a few
queries dominate.  This module produces such streams *deterministically*,
reusing the paper's own replayable-stream machinery
(:class:`repro.rng.streams.StreamFamily`): the same ``(seed, spec)`` always
yields the identical request sequence, so a throughput measurement is as
reproducible as the document generator itself.

Per client ``i`` the generator draws from the substream ``workload#i``:

* the query of each request via a Zipf(``zipf_exponent``) rank-frequency
  distribution over a seed-derived popularity permutation of the query mix
  (or over explicit ``query_weights``),
* the target system uniformly from ``systems``,
* the think time before issuing via an exponential with mean
  ``think_mean_seconds`` (0 disables thinking: a closed loop at full speed).

Zipf skew is what makes result caching meaningful: with exponent 1.0 over
the twenty XMark queries, the two most popular queries take ~27% of the
stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchmark.queries import QUERIES
from repro.errors import BenchmarkError
from repro.rng.distributions import Distribution
from repro.rng.streams import StreamFamily

DEFAULT_WORKLOAD_SEED = 20020818  # VLDB 2002 opened on August 20; close enough.

#: Queries that stay interactive at bench scale on every system (the heavy
#: value-join queries Q8-Q12 are throughput-hostile on the NLJ systems).
INTERACTIVE_QUERIES: tuple[int, ...] = (1, 2, 3, 5, 6, 7, 13, 14, 15, 16, 17, 20)


@dataclass(frozen=True, slots=True)
class ClientRequest:
    """One request of the generated stream."""

    client: int
    seq: int
    system: str
    query: int
    think_seconds: float
    #: "query" or "update": update slots carry no query; the service draws
    #: the concrete operation from its deterministic update stream.
    kind: str = "query"


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Immutable knobs of one generated workload."""

    clients: int = 4
    requests_per_client: int = 25
    systems: tuple[str, ...] = ("D",)
    queries: tuple[int, ...] = INTERACTIVE_QUERIES
    query_weights: tuple[float, ...] | None = None   # overrides the Zipf model
    zipf_exponent: float = 1.0
    think_mean_seconds: float = 0.0
    #: Fraction of requests that are document updates instead of queries
    #: (0.0 keeps the workload read-only, the pre-update behaviour).
    write_ratio: float = 0.0
    seed: int = DEFAULT_WORKLOAD_SEED

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise BenchmarkError(f"need at least one client, got {self.clients}")
        if self.requests_per_client <= 0:
            raise BenchmarkError(
                f"need at least one request per client, got {self.requests_per_client}")
        if not self.systems:
            raise BenchmarkError("workload needs at least one system")
        if not self.queries:
            raise BenchmarkError("workload needs at least one query")
        unknown = [q for q in self.queries if q not in QUERIES]
        if unknown:
            raise BenchmarkError(f"unknown queries in workload mix: {unknown}")
        if self.query_weights is not None and len(self.query_weights) != len(self.queries):
            raise BenchmarkError(
                f"{len(self.query_weights)} weights for {len(self.queries)} queries")
        if self.think_mean_seconds < 0:
            raise BenchmarkError(
                f"think time must be non-negative, got {self.think_mean_seconds}")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise BenchmarkError(
                f"write ratio must be within [0, 1], got {self.write_ratio}")

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client


class WorkloadGenerator:
    """Replayable request streams for a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._family = StreamFamily(spec.seed)
        if spec.query_weights is not None:
            self._mix = Distribution(spec.query_weights)
            self._popularity = tuple(spec.queries)
        else:
            self._mix = Distribution.zipf(len(spec.queries), spec.zipf_exponent)
            # Which query is popular is itself a seeded choice, so different
            # seeds exercise different hot sets against the same mix shape.
            order = list(spec.queries)
            self._family.stream("workload/popularity").shuffle(order)
            self._popularity = tuple(order)

    @property
    def popularity_order(self) -> tuple[int, ...]:
        """Queries from most to least popular under the Zipf model."""
        return self._popularity

    def client_stream(self, client: int) -> list[ClientRequest]:
        """The full request sequence of one client."""
        spec = self.spec
        if not 0 <= client < spec.clients:
            raise BenchmarkError(f"client {client} outside 0..{spec.clients - 1}")
        source = self._family.substream("workload", client)
        requests: list[ClientRequest] = []
        for seq in range(spec.requests_per_client):
            query = self._popularity[self._mix.sample(source)]
            system = source.choice(spec.systems)
            think = (source.exponential(spec.think_mean_seconds)
                     if spec.think_mean_seconds > 0 else 0.0)
            # The write slots are part of the deterministic stream: the
            # query draw above is consumed either way so a 0.0 ratio
            # reproduces the read-only streams bit for bit.
            kind = "query"
            if spec.write_ratio > 0 and source.boolean(spec.write_ratio):
                kind = "update"
            requests.append(ClientRequest(client, seq, system, query, think, kind))
        return requests

    def streams(self) -> list[list[ClientRequest]]:
        """All client streams (index = client id)."""
        return [self.client_stream(client) for client in range(self.spec.clients)]

    def flat(self) -> list[ClientRequest]:
        """Every request, client-major — the canonical replay order."""
        return [request for stream in self.streams() for request in stream]

    def query_histogram(self) -> dict[int, int]:
        """How often each query occurs across all clients (for reports)."""
        histogram: dict[int, int] = {query: 0 for query in self.spec.queries}
        for request in self.flat():
            histogram[request.query] += 1
        return histogram
