"""Path-selective result-cache invalidation.

Dropping every cached result on every write would make the result cache
worthless under a mixed read/write workload; re-checking every cached
result would make writes O(cache).  The middle ground is a *footprint
test*: from the query text, a :class:`QueryFootprint` records which tags
and attributes the query can possibly touch; from an applied update, the
:class:`~repro.update.engine.ChangeSet` records which regions changed.  A
cached result must be dropped only when the two can overlap:

* **direct**: the query names a tag/attribute inside a changed region
  (every node a query *navigates* is named by a step, so a changed node
  the query could visit implies a token intersection);
* **subtree-consumed**: the query binds or returns an element strictly
  *above* the change (its string value or reconstructed subtree includes
  the change even though no changed tag is named).  Only the *terminal*
  step of a path expression can be consumed this way — interior steps are
  pure navigation — so the test compares the changed nodes' ancestor tags
  against the query's terminal tags, not against all of them.

Anything the analysis cannot see through (a wildcard step) makes the
footprint ``broad``: such queries invalidate on every write.  The test is
conservative by construction — it may drop a result that would not have
changed, never the reverse.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import QuerySyntaxError
from repro.update.engine import ChangeSet
from repro.xquery.ast import Path, walk
from repro.xquery.parser import parse_query

#: Broad-footprint fallbacks taken because a query text failed to parse.
#: Surfaced as the ``service.footprint_fallbacks`` gauge by
#: :meth:`repro.service.service.QueryService.export_metrics` — a rising
#: count means unparseable texts are defeating path-selective invalidation.
_fallback_total = 0
_fallback_lock = threading.Lock()


def _note_fallback() -> None:
    global _fallback_total
    with _fallback_lock:
        _fallback_total += 1


def footprint_fallbacks() -> int:
    """How many footprint computations fell back to the broad footprint."""
    return _fallback_total


@dataclass(frozen=True, slots=True)
class QueryFootprint:
    """What one query can possibly touch, from its text alone."""

    tokens: frozenset[str]              # element tags and "@attr" names
    terminals: frozenset[str]           # tags of subtree-consuming steps
    broad: bool                         # wildcard step: assume everything


@lru_cache(maxsize=512)
def query_footprint(text: str) -> QueryFootprint:
    """Compute (and memoize) the footprint of one query text."""
    tokens: set[str] = set()
    terminals: set[str] = set()
    broad = False
    try:
        query = parse_query(text)
    except QuerySyntaxError:
        # Only a *parse* failure justifies the broad fallback — the text
        # can still have been served (sharded/legacy paths parse their
        # own way), so assume it touches everything.  Any other failure
        # is a real analysis bug and must surface, not silently turn
        # every write into a full cache drop.
        _note_fallback()
        return QueryFootprint(frozenset(), frozenset(), True)
    for node in walk(query):
        if not isinstance(node, Path) or not node.steps:
            continue
        for step in node.steps:
            if step.axis in ("child", "descendant"):
                if step.name is None:
                    broad = True
                else:
                    tokens.add(step.name)
            elif step.axis == "attribute":
                if step.name is None:
                    broad = True
                else:
                    tokens.add("@" + step.name)
        last = node.steps[-1]
        if last.axis in ("child", "descendant") and last.name is not None:
            terminals.add(last.name)
    return QueryFootprint(frozenset(tokens), frozenset(terminals), broad)


def affected(footprint: QueryFootprint, changes: ChangeSet) -> bool:
    """Whether a cached result with this footprint may be stale."""
    if footprint.broad:
        return True
    if footprint.tokens & changes.changed_tokens:
        return True
    if footprint.terminals & changes.ancestor_tags:
        return True
    return False
