"""Content-model expressions and their compilation to NFAs.

A DTD content model is a regular expression over child-element tags.  We
model it as a small AST (:class:`Sequence`, :class:`Choice`, :class:`Repeat`,
:class:`Name`, :class:`Mixed`, :class:`Empty`) compiled via Thompson's
construction to an epsilon-NFA, simulated with state sets.  XMark's models
are tiny, so simulation cost is irrelevant; correctness and error reporting
are what matter.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence as SequenceABC
from dataclasses import dataclass

from repro.errors import ValidationError


class ContentModel:
    """Base class for content-model expressions."""

    __slots__ = ()

    def matcher(self) -> "ContentMatcher":
        return ContentMatcher(self)

    def matches(self, tags: SequenceABC[str]) -> bool:
        return self.matcher().matches(tags)

    def allows_text(self) -> bool:
        """Whether character data may appear among the children."""
        return False

    def allowed_tags(self) -> frozenset[str]:
        """All tags that may appear anywhere in the model (for diagnostics)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Empty(ContentModel):
    """``EMPTY`` — no children, no text."""

    def allowed_tags(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True, slots=True)
class Name(ContentModel):
    """A single required child element."""

    tag: str

    def allowed_tags(self) -> frozenset[str]:
        return frozenset((self.tag,))

    def __str__(self) -> str:
        return self.tag


@dataclass(frozen=True, slots=True)
class Sequence(ContentModel):
    """``(a, b, c)`` — children in order."""

    parts: tuple[ContentModel, ...]

    def allowed_tags(self) -> frozenset[str]:
        return frozenset().union(*(part.allowed_tags() for part in self.parts))

    def __str__(self) -> str:
        return "(" + ", ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Choice(ContentModel):
    """``(a | b | c)`` — exactly one alternative."""

    options: tuple[ContentModel, ...]

    def allowed_tags(self) -> frozenset[str]:
        return frozenset().union(*(option.allowed_tags() for option in self.options))

    def __str__(self) -> str:
        return "(" + " | ".join(str(option) for option in self.options) + ")"


@dataclass(frozen=True, slots=True)
class Repeat(ContentModel):
    """``x*``, ``x+`` or ``x?`` depending on ``occurs``."""

    inner: ContentModel
    occurs: str  # one of "*", "+", "?"

    def __post_init__(self) -> None:
        if self.occurs not in ("*", "+", "?"):
            raise ValueError(f"bad occurrence indicator: {self.occurs!r}")

    def allowed_tags(self) -> frozenset[str]:
        return self.inner.allowed_tags()

    def __str__(self) -> str:
        inner = str(self.inner)
        if not inner.startswith("("):
            inner = f"({inner})" if isinstance(self.inner, (Sequence, Choice)) else inner
        return f"{inner}{self.occurs}"


@dataclass(frozen=True, slots=True)
class Mixed(ContentModel):
    """``(#PCDATA | a | b)*`` — text freely interleaved with listed tags."""

    tags: frozenset[str]

    def allows_text(self) -> bool:
        return True

    def allowed_tags(self) -> frozenset[str]:
        return self.tags

    def matches(self, tags: SequenceABC[str]) -> bool:
        return all(tag in self.tags for tag in tags)

    def __str__(self) -> str:
        if not self.tags:
            return "(#PCDATA)"
        listed = " | ".join(sorted(self.tags))
        return f"(#PCDATA | {listed})*"


def seq(*parts: ContentModel | str) -> Sequence:
    return Sequence(tuple(Name(p) if isinstance(p, str) else p for p in parts))


def choice(*options: ContentModel | str) -> Choice:
    return Choice(tuple(Name(o) if isinstance(o, str) else o for o in options))


def optional(part: ContentModel | str) -> Repeat:
    return Repeat(Name(part) if isinstance(part, str) else part, "?")


def star(part: ContentModel | str) -> Repeat:
    return Repeat(Name(part) if isinstance(part, str) else part, "*")


def plus(part: ContentModel | str) -> Repeat:
    return Repeat(Name(part) if isinstance(part, str) else part, "+")


# -- NFA compilation -----------------------------------------------------------


class _Nfa:
    """Epsilon-NFA: transitions on tags plus epsilon edges."""

    __slots__ = ("transitions", "epsilons", "start", "accept")

    def __init__(self) -> None:
        self.transitions: list[dict[str, int]] = []
        self.epsilons: list[list[int]] = []
        self.start = self.new_state()
        self.accept = self.new_state()

    def new_state(self) -> int:
        self.transitions.append({})
        self.epsilons.append([])
        return len(self.transitions) - 1

    def link(self, source: int, target: int) -> None:
        self.epsilons[source].append(target)

    def consume(self, source: int, tag: str, target: int) -> None:
        self.transitions[source][tag] = target


def _build(model: ContentModel, nfa: _Nfa, entry: int, exit_: int) -> None:
    if isinstance(model, Empty):
        nfa.link(entry, exit_)
    elif isinstance(model, Name):
        nfa.consume(entry, model.tag, exit_)
    elif isinstance(model, Sequence):
        current = entry
        for part in model.parts[:-1]:
            nxt = nfa.new_state()
            _build(part, nfa, current, nxt)
            current = nxt
        if model.parts:
            _build(model.parts[-1], nfa, current, exit_)
        else:
            nfa.link(entry, exit_)
    elif isinstance(model, Choice):
        for option in model.options:
            _build(option, nfa, entry, exit_)
    elif isinstance(model, Repeat):
        inner_entry = nfa.new_state()
        inner_exit = nfa.new_state()
        _build(model.inner, nfa, inner_entry, inner_exit)
        nfa.link(entry, inner_entry)
        nfa.link(inner_exit, exit_)
        if model.occurs in ("*", "?"):
            nfa.link(entry, exit_)
        if model.occurs in ("*", "+"):
            nfa.link(inner_exit, inner_entry)
    elif isinstance(model, Mixed):
        # Handled in Mixed.matches; represent as (tag1|tag2|...)* here anyway
        # so a matcher built on a Mixed model still behaves.
        nfa.link(entry, exit_)
        for tag in model.tags:
            loop = nfa.new_state()
            nfa.consume(entry, tag, loop)
            nfa.link(loop, entry)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown content model node: {model!r}")


class ContentMatcher:
    """Compiled matcher for one content model."""

    __slots__ = ("_nfa", "_model")

    def __init__(self, model: ContentModel) -> None:
        self._model = model
        self._nfa = _Nfa()
        _build(model, self._nfa, self._nfa.start, self._nfa.accept)

    def _closure(self, states: set[int]) -> set[int]:
        stack = list(states)
        closed = set(states)
        while stack:
            state = stack.pop()
            for target in self._nfa.epsilons[state]:
                if target not in closed:
                    closed.add(target)
                    stack.append(target)
        return closed

    def matches(self, tags: Iterable[str]) -> bool:
        states = self._closure({self._nfa.start})
        for tag in tags:
            moved = {
                self._nfa.transitions[state][tag]
                for state in states
                if tag in self._nfa.transitions[state]
            }
            if not moved:
                return False
            states = self._closure(moved)
        return self._nfa.accept in states


# -- content-model text parsing --------------------------------------------------


def parse_content_model(text: str) -> ContentModel:
    """Parse DTD content-model syntax, e.g. ``(a, (b | c)*, d?)``.

    Supports ``EMPTY``, ``ANY`` (treated as an error: the auction DTD never
    uses it and stores cannot map it), ``(#PCDATA | ...)*`` mixed models, and
    the usual sequence/choice/occurrence operators.
    """
    parser = _ModelParser(text)
    model = parser.parse()
    return model


class _ModelParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def error(self, message: str) -> ValidationError:
        return ValidationError(f"{message} in content model {self.text!r} at offset {self.position}")

    def skip_ws(self) -> None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1

    def peek(self) -> str:
        return self.text[self.position] if self.position < len(self.text) else ""

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.position += 1

    def parse(self) -> ContentModel:
        self.skip_ws()
        if self.text[self.position:].strip() == "EMPTY":
            return Empty()
        if self.text[self.position:].strip() == "ANY":
            raise self.error("ANY content is outside the supported subset")
        model = self.parse_particle()
        self.skip_ws()
        if self.position != len(self.text):
            raise self.error("trailing characters")
        return model

    def parse_particle(self) -> ContentModel:
        self.skip_ws()
        if self.peek() == "(":
            self.position += 1
            self.skip_ws()
            if self.text.startswith("#PCDATA", self.position):
                return self.parse_mixed()
            model = self.parse_group()
        else:
            name = self.parse_name()
            model = Name(name)
        return self.parse_occurrence(model)

    def parse_occurrence(self, model: ContentModel) -> ContentModel:
        if self.peek() in ("*", "+", "?"):
            occurs = self.peek()
            self.position += 1
            return Repeat(model, occurs)
        return model

    def parse_group(self) -> ContentModel:
        items = [self.parse_particle()]
        self.skip_ws()
        separator = self.peek()
        if separator not in (",", "|", ")"):
            raise self.error("expected ',', '|' or ')'")
        while self.peek() == separator and separator in (",", "|"):
            self.position += 1
            items.append(self.parse_particle())
            self.skip_ws()
        self.expect(")")
        if separator == "|":
            return Choice(tuple(items))
        if len(items) == 1:
            return items[0]
        return Sequence(tuple(items))

    def parse_mixed(self) -> ContentModel:
        self.position += len("#PCDATA")
        tags: list[str] = []
        self.skip_ws()
        while self.peek() == "|":
            self.position += 1
            tags.append(self.parse_name())
            self.skip_ws()
        self.expect(")")
        if tags:
            if self.peek() != "*":
                raise self.error("mixed content with elements must end in ')*'")
            self.position += 1
        elif self.peek() == "*":
            self.position += 1
        return Mixed(frozenset(tags))

    def parse_name(self) -> str:
        self.skip_ws()
        start = self.position
        while self.position < len(self.text) and (
            self.text[self.position].isalnum() or self.text[self.position] in "_-.:"
        ):
            self.position += 1
        if start == self.position:
            raise self.error("expected a name")
        return self.text[start : self.position]
