"""Document validation against a DTD.

Checks, in one pass over the tree:

* every element is declared and its child-tag sequence matches the declared
  content model;
* character data only appears under mixed/PCDATA models;
* attributes are declared, required attributes present;
* ID values are unique; every IDREF resolves; typed references (the paper's
  Section 4.2 guarantee) point at the expected element kind when a target
  map is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.schema.dtd import AttributeKind, Dtd
from repro.schema.model import ContentMatcher
from repro.xmlio.dom import Document, Element, Text


@dataclass(slots=True)
class ValidationReport:
    """Outcome of a validation run."""

    violations: list[str] = field(default_factory=list)
    elements_checked: int = 0
    ids_seen: int = 0
    refs_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def raise_if_failed(self) -> None:
        if self.violations:
            shown = "; ".join(self.violations[:5])
            extra = f" (+{len(self.violations) - 5} more)" if len(self.violations) > 5 else ""
            raise ValidationError(f"{len(self.violations)} violation(s): {shown}{extra}")


def validate(
    document: Document,
    dtd: Dtd,
    reference_targets: dict[tuple[str, str], str] | None = None,
    max_violations: int = 100,
) -> ValidationReport:
    """Validate ``document`` against ``dtd``; collect up to ``max_violations``."""
    report = ValidationReport()
    root = document.root
    if root is None:
        report.add("document has no root element")
        return report
    if root.tag != dtd.root:
        report.add(f"root element is <{root.tag}>, DTD requires <{dtd.root}>")

    matchers: dict[str, ContentMatcher] = {}
    ids: dict[str, str] = {}  # id value -> element tag
    pending_refs: list[tuple[str, str, str]] = []  # (element, attr, target id)

    stack: list[Element] = [root]
    while stack and len(report.violations) < max_violations:
        element = stack.pop()
        report.elements_checked += 1
        if element.tag not in dtd:
            report.add(f"undeclared element <{element.tag}>")
            continue
        decl = dtd.element(element.tag)

        # Content model.
        matcher = matchers.get(element.tag)
        if matcher is None:
            matcher = decl.content.matcher()
            matchers[element.tag] = matcher
        child_tags = [c.tag for c in element.children if isinstance(c, Element)]
        if not decl.content.matches(child_tags) and not matcher.matches(child_tags):
            report.add(
                f"<{element.tag}> children {child_tags} do not match {decl.content}"
            )
        if not decl.content.allows_text():
            stray = any(
                isinstance(c, Text) and c.value.strip() for c in element.children
            )
            if stray:
                report.add(f"<{element.tag}> contains character data but is not mixed")

        # Attributes.
        for name, value in element.attributes.items():
            attr = decl.attribute(name)
            if attr is None:
                report.add(f"undeclared attribute {name!r} on <{element.tag}>")
                continue
            if attr.kind is AttributeKind.ID:
                report.ids_seen += 1
                if value in ids:
                    report.add(f"duplicate ID {value!r} on <{element.tag}>")
                else:
                    ids[value] = element.tag
            elif attr.kind is AttributeKind.IDREF:
                pending_refs.append((element.tag, name, value))
        for attr in decl.attributes:
            if attr.required and attr.name not in element.attributes:
                report.add(f"<{element.tag}> missing required attribute {attr.name!r}")

        for child in element.children:
            if isinstance(child, Element):
                stack.append(child)

    # Referential integrity (after all IDs are known).
    for element_tag, attr_name, target in pending_refs:
        if len(report.violations) >= max_violations:
            break
        report.refs_checked += 1
        found = ids.get(target)
        if found is None:
            report.add(f"<{element_tag} {attr_name}={target!r}> points at no ID")
        elif reference_targets is not None:
            expected = reference_targets.get((element_tag, attr_name))
            if expected is not None and found != expected:
                report.add(
                    f"<{element_tag} {attr_name}={target!r}> points at <{found}>, "
                    f"expected <{expected}>"
                )
    return report
