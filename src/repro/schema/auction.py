"""The XMark auction-site DTD (paper Section 4, Figures 1 and 2).

The element hierarchy and reference graph follow the published ``auction.dtd``
of the XMark project: six world regions holding items, people, open and
closed auctions, categories and a category graph, with document-centric
``description``/``annotation`` subtrees (text, parlist, listitem, bold,
keyword, emph mixed content).

All references are *typed* (paper Section 4.2: "all instances of an XML
element point to the same type of XML element"); :data:`REFERENCE_TARGETS`
records the target element of every IDREF attribute so the generator and the
validator can enforce it even though DTD IDREFs are untyped.
"""

from __future__ import annotations

from functools import lru_cache

from repro.schema.dtd import AttributeDecl, AttributeKind, Dtd, ElementDecl, cdata, id_attr, idref

#: (element, attribute) -> tag of the element the reference must point at.
REFERENCE_TARGETS: dict[tuple[str, str], str] = {
    ("edge", "from"): "category",
    ("edge", "to"): "category",
    ("incategory", "category"): "category",
    ("interest", "category"): "category",
    ("itemref", "item"): "item",
    ("personref", "person"): "person",
    ("seller", "person"): "person",
    ("buyer", "person"): "person",
    ("author", "person"): "person",
    ("watch", "open_auction"): "open_auction",
}

#: The six region elements, in document order.
REGIONS: tuple[str, ...] = ("africa", "asia", "australia", "europe", "namerica", "samerica")

_MIXED_PROSE = "(#PCDATA | bold | keyword | emph)*"


@lru_cache(maxsize=1)
def auction_dtd() -> Dtd:
    """Build the auction DTD (cached: the object is immutable by convention)."""
    dtd = Dtd(root="site")

    dtd.declare("site", "(regions, categories, catgraph, people, open_auctions, closed_auctions)")

    # -- categories ---------------------------------------------------------
    dtd.declare("categories", "(category+)")
    dtd.declare("category", "(name, description)", (id_attr(),))
    dtd.declare("name", "(#PCDATA)")
    dtd.declare("description", "(text | parlist)")
    dtd.declare("text", _MIXED_PROSE)
    dtd.declare("bold", _MIXED_PROSE)
    dtd.declare("keyword", _MIXED_PROSE)
    dtd.declare("emph", _MIXED_PROSE)
    dtd.declare("parlist", "(listitem)*")
    dtd.declare("listitem", "(text | parlist)*")
    dtd.declare("catgraph", "(edge*)")
    dtd.declare("edge", "EMPTY", (idref("from"), idref("to")))

    # -- regions and items --------------------------------------------------
    dtd.declare("regions", "(africa, asia, australia, europe, namerica, samerica)")
    for region in REGIONS:
        dtd.declare(region, "(item*)")
    dtd.declare(
        "item",
        "(location, quantity, name, payment, description, shipping, incategory+, mailbox)",
        (id_attr(), cdata("featured")),
    )
    dtd.declare("location", "(#PCDATA)")
    dtd.declare("quantity", "(#PCDATA)")
    dtd.declare("payment", "(#PCDATA)")
    dtd.declare("shipping", "(#PCDATA)")
    dtd.declare("reserve", "(#PCDATA)")
    dtd.declare("incategory", "EMPTY", (idref("category"),))
    dtd.declare("mailbox", "(mail*)")
    dtd.declare("mail", "(from, to, date, text)")
    dtd.declare("from", "(#PCDATA)")
    dtd.declare("to", "(#PCDATA)")
    dtd.declare("date", "(#PCDATA)")
    dtd.declare("itemref", "EMPTY", (idref("item"),))
    dtd.declare("personref", "EMPTY", (idref("person"),))

    # -- people -------------------------------------------------------------
    dtd.declare("people", "(person*)")
    dtd.declare(
        "person",
        "(name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)",
        (id_attr(),),
    )
    dtd.declare("emailaddress", "(#PCDATA)")
    dtd.declare("phone", "(#PCDATA)")
    dtd.declare("address", "(street, city, country, province?, zipcode)")
    dtd.declare("street", "(#PCDATA)")
    dtd.declare("city", "(#PCDATA)")
    dtd.declare("country", "(#PCDATA)")
    dtd.declare("province", "(#PCDATA)")
    dtd.declare("zipcode", "(#PCDATA)")
    dtd.declare("homepage", "(#PCDATA)")
    dtd.declare("creditcard", "(#PCDATA)")
    dtd.declare(
        "profile",
        "(interest*, education?, gender?, business, age?)",
        (cdata("income"),),
    )
    dtd.declare("interest", "EMPTY", (idref("category"),))
    dtd.declare("education", "(#PCDATA)")
    dtd.declare("gender", "(#PCDATA)")
    dtd.declare("business", "(#PCDATA)")
    dtd.declare("age", "(#PCDATA)")
    dtd.declare("watches", "(watch*)")
    dtd.declare("watch", "EMPTY", (idref("open_auction"),))

    # -- auctions -----------------------------------------------------------
    dtd.declare("open_auctions", "(open_auction*)")
    dtd.declare(
        "open_auction",
        "(initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)",
        (id_attr(),),
    )
    dtd.declare("initial", "(#PCDATA)")
    dtd.declare("current", "(#PCDATA)")
    dtd.declare("privacy", "(#PCDATA)")
    dtd.declare("bidder", "(date, time, personref, increase)")
    dtd.declare("increase", "(#PCDATA)")
    dtd.declare("seller", "EMPTY", (idref("person"),))
    dtd.declare("interval", "(start, end)")
    dtd.declare("start", "(#PCDATA)")
    dtd.declare("end", "(#PCDATA)")
    dtd.declare("time", "(#PCDATA)")
    dtd.declare("status", "(#PCDATA)")
    dtd.declare("amount", "(#PCDATA)")
    dtd.declare("closed_auctions", "(closed_auction*)")
    dtd.declare(
        "closed_auction",
        "(seller, buyer, itemref, price, date, quantity, type, annotation?)",
        (),
    )
    dtd.declare("buyer", "EMPTY", (idref("person"),))
    dtd.declare("price", "(#PCDATA)")
    dtd.declare("annotation", "(author, description?, happiness)")
    dtd.declare("author", "EMPTY", (idref("person"),))
    dtd.declare("happiness", "(#PCDATA)")
    dtd.declare("type", "(#PCDATA)")

    return dtd


@lru_cache(maxsize=1)
def auction_split_dtd() -> Dtd:
    """The split-mode DTD variant (paper Section 5).

    When the document is emitted as n-entities-per-file, "parser-controlled
    references, i.e., ID and IDREF declared attributes, should be converted
    to REQUIRED attributes" — a validating parser must not check uniqueness
    or existence across file boundaries.  This variant downgrades every
    ID/IDREF attribute to required CDATA.
    """
    single = auction_dtd()
    split = Dtd(root=single.root)
    for name, decl in single.elements.items():
        attributes = tuple(
            AttributeDecl(attr.name, AttributeKind.CDATA, required=True)
            if attr.kind in (AttributeKind.ID, AttributeKind.IDREF)
            else attr
            for attr in decl.attributes
        )
        split.elements[name] = ElementDecl(name, decl.content, attributes)
    return split
