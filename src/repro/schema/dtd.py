"""Element and attribute declarations; DTD container and serialization."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.schema.model import ContentModel, parse_content_model


class AttributeKind(enum.Enum):
    """The attribute types the benchmark DTD uses."""

    CDATA = "CDATA"
    ID = "ID"
    IDREF = "IDREF"


@dataclass(frozen=True, slots=True)
class AttributeDecl:
    """One ``<!ATTLIST>`` entry."""

    name: str
    kind: AttributeKind = AttributeKind.CDATA
    required: bool = False

    def declaration(self) -> str:
        default = "#REQUIRED" if self.required else "#IMPLIED"
        return f"{self.name} {self.kind.value} {default}"


@dataclass(frozen=True, slots=True)
class ElementDecl:
    """One ``<!ELEMENT>`` entry plus its attribute list."""

    name: str
    content: ContentModel
    attributes: tuple[AttributeDecl, ...] = ()

    def attribute(self, name: str) -> AttributeDecl | None:
        for decl in self.attributes:
            if decl.name == name:
                return decl
        return None


@dataclass(slots=True)
class Dtd:
    """A document type definition: named element declarations and a root."""

    root: str
    elements: dict[str, ElementDecl] = field(default_factory=dict)

    def declare(
        self,
        name: str,
        content: ContentModel | str,
        attributes: tuple[AttributeDecl, ...] = (),
    ) -> ElementDecl:
        """Add (or replace) an element declaration.

        ``content`` may be a content-model object or DTD source text such as
        ``"(name, description)"``.
        """
        model = parse_content_model(content) if isinstance(content, str) else content
        decl = ElementDecl(name, model, attributes)
        self.elements[name] = decl
        return decl

    def element(self, name: str) -> ElementDecl:
        try:
            return self.elements[name]
        except KeyError:
            raise ValidationError(f"element {name!r} is not declared") from None

    def __contains__(self, name: str) -> bool:
        return name in self.elements

    def id_attributes(self) -> dict[str, str]:
        """Map element name -> its ID attribute name (for ID indexing)."""
        result: dict[str, str] = {}
        for decl in self.elements.values():
            for attr in decl.attributes:
                if attr.kind is AttributeKind.ID:
                    result[decl.name] = attr.name
        return result

    def idref_attributes(self) -> dict[str, list[str]]:
        """Map element name -> its IDREF attribute names."""
        result: dict[str, list[str]] = {}
        for decl in self.elements.values():
            refs = [a.name for a in decl.attributes if a.kind is AttributeKind.IDREF]
            if refs:
                result[decl.name] = refs
        return result

    def serialize(self) -> str:
        """Render as DTD source text (elements in declaration order)."""
        lines: list[str] = []
        for decl in self.elements.values():
            content = str(decl.content)
            if not content.startswith("(") and content != "EMPTY":
                content = f"({content})"  # DTD syntax requires a parenthesized group
            lines.append(f"<!ELEMENT {decl.name} {content}>")
            if decl.attributes:
                entries = "\n          ".join(a.declaration() for a in decl.attributes)
                lines.append(f"<!ATTLIST {decl.name} {entries}>")
        return "\n".join(lines) + "\n"


def cdata(name: str, required: bool = False) -> AttributeDecl:
    return AttributeDecl(name, AttributeKind.CDATA, required)


def id_attr(name: str = "id") -> AttributeDecl:
    return AttributeDecl(name, AttributeKind.ID, required=True)


def idref(name: str) -> AttributeDecl:
    return AttributeDecl(name, AttributeKind.IDREF, required=True)
