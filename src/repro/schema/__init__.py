"""DTD modelling and validation.

The paper ships a DTD with the benchmark document ("A DTD and schema
information are provided to allow for more efficient mappings", Section 4.4)
and System C derives its whole physical schema from it.  This package holds:

* :mod:`repro.schema.model` — content-model expressions compiled to NFAs;
* :mod:`repro.schema.dtd` — element/attribute declarations and DTD text
  serialization/parsing;
* :mod:`repro.schema.auction` — the XMark auction-site DTD itself;
* :mod:`repro.schema.validator` — document validation (structure, required
  attributes, ID uniqueness, IDREF integrity).
"""

from repro.schema.auction import auction_dtd
from repro.schema.dtd import AttributeDecl, AttributeKind, Dtd, ElementDecl
from repro.schema.model import (
    Choice, ContentModel, Empty, Mixed, Name, Repeat, Sequence, parse_content_model,
)
from repro.schema.validator import ValidationReport, validate

__all__ = [
    "auction_dtd",
    "Dtd", "ElementDecl", "AttributeDecl", "AttributeKind",
    "ContentModel", "Sequence", "Choice", "Repeat", "Name", "Mixed", "Empty",
    "parse_content_model",
    "validate", "ValidationReport",
]
