"""XMark: A Benchmark for XML Data Management — full reproduction.

Reproduces Schmidt, Waas, Kersten, Carey, Manolescu, Busse (VLDB 2002):
the ``xmlgen`` document generator, the twenty XQuery benchmark queries, the
seven system architectures the paper evaluates (A-G), and the harness that
regenerates every table and figure of the evaluation section.

Quickstart (the embedded-database facade)::

    import repro

    document = repro.generate_string(scale=0.001)    # ~100 kB auction site
    db = repro.connect(document, systems=("D", "G"))
    with db.session() as session:
        cursor = session.execute(8, system="D")      # Q8 on System D
        for item in cursor:                          # rows stream lazily
            print(cursor.rowtext(item))
    db.close()

``repro.connect`` fronts every execution path — direct stores, the
concurrent query service (``service=True``), scatter-gather sharding
(``shards=N``), and transactional updates (``Session.transaction``).
The pre-facade entry points (``BenchmarkRunner``, ``compile_query`` +
``evaluate``) remain as thin shims; see docs/API.md for the migration
table.
"""

from repro.benchmark.equivalence import check_equivalence
from repro.benchmark.queries import QUERIES, query_text
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.systems import SYSTEMS, make_store
from repro.db import (
    Cursor, Database, PreparedQuery, Session, Transaction, connect,
)
from repro.schema.auction import auction_dtd
from repro.schema.validator import validate
from repro.storage.bulkload import bulkload, scan_baseline
from repro.xmlgen.config import GeneratorConfig
from repro.xmlgen.generator import XMarkGenerator, generate_document, generate_string
from repro.xmlio.canonical import canonicalize
from repro.xmlio.parser import parse
from repro.xquery.evaluator import evaluate, evaluate_stream
from repro.xquery.planner import compile_query

__version__ = "1.1.0"

__all__ = [
    "connect", "Database", "Session", "PreparedQuery", "Transaction", "Cursor",
    "GeneratorConfig", "XMarkGenerator", "generate_string", "generate_document",
    "parse", "canonicalize",
    "auction_dtd", "validate",
    "bulkload", "scan_baseline", "make_store", "SYSTEMS",
    "compile_query", "evaluate", "evaluate_stream",
    "QUERIES", "query_text", "BenchmarkRunner", "check_equivalence",
    "__version__",
]
