"""XMark: A Benchmark for XML Data Management — full reproduction.

Reproduces Schmidt, Waas, Kersten, Carey, Manolescu, Busse (VLDB 2002):
the ``xmlgen`` document generator, the twenty XQuery benchmark queries, the
seven system architectures the paper evaluates (A-G), and the harness that
regenerates every table and figure of the evaluation section.

Quickstart::

    from repro import generate_string, BenchmarkRunner

    document = generate_string(scale=0.001)          # ~100 kB auction site
    runner = BenchmarkRunner(document, systems=("D", "G"))
    timing, result = runner.run("D", 8)              # Q8 on System D
    print(result.serialize())
"""

from repro.benchmark.equivalence import check_equivalence
from repro.benchmark.queries import QUERIES, query_text
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.systems import SYSTEMS, make_store
from repro.schema.auction import auction_dtd
from repro.schema.validator import validate
from repro.storage.bulkload import bulkload, scan_baseline
from repro.xmlgen.config import GeneratorConfig
from repro.xmlgen.generator import XMarkGenerator, generate_document, generate_string
from repro.xmlio.canonical import canonicalize
from repro.xmlio.parser import parse
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

__version__ = "1.0.0"

__all__ = [
    "GeneratorConfig", "XMarkGenerator", "generate_string", "generate_document",
    "parse", "canonicalize",
    "auction_dtd", "validate",
    "bulkload", "scan_baseline", "make_store", "SYSTEMS",
    "compile_query", "evaluate",
    "QUERIES", "query_text", "BenchmarkRunner", "check_equivalence",
    "__version__",
]
