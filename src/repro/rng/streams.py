"""Named, replayable random streams.

Section 4.5 of the paper explains the key trick that keeps ``xmlgen``'s
memory constant: references must point at valid identifiers, but keeping a
log of issued identifiers "seems infeasible for large documents", so the
generator instead "produce[s] several identical streams of random numbers"
and re-derives, at the point of reference, the same choices the producing
side made.

:class:`StreamFamily` packages that idea: every named stream is an
independently seeded :class:`~repro.rng.distributions.RandomSource`, and
asking twice for the same name yields two sources that emit *identical*
sequences.
"""

from __future__ import annotations

import hashlib

from repro.rng.distributions import RandomSource
from repro.rng.lcg import Lcg48


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 48-bit child seed from a master seed and a stream name.

    SHA-256 is used purely as a deterministic mixing function (no security
    claim): it is stable across platforms and Python versions, unlike
    ``hash()``.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("ascii")).digest()
    return int.from_bytes(digest[:6], "big")


class StreamFamily:
    """Factory for named deterministic random streams.

    Two families built from the same master seed are interchangeable, and
    every call to :meth:`stream` with the same name starts an identical
    sequence — the replay property the reference partitioning needs.
    """

    __slots__ = ("_master_seed",)

    def __init__(self, master_seed: int) -> None:
        self._master_seed = master_seed

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> RandomSource:
        """A fresh source for ``name``, positioned at the stream start."""
        return RandomSource(Lcg48(derive_seed(self._master_seed, name)))

    def substream(self, name: str, index: int) -> RandomSource:
        """A fresh source for the ``index``-th member of a stream group.

        Used when each entity needs its own stream (e.g. the bidder history
        of open auction *i*) that the referencing side can replay knowing
        only ``(name, i)``.
        """
        return self.stream(f"{name}#{index}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamFamily(master_seed={self._master_seed})"
