"""Deterministic random number generation for the XMark generator.

The paper (Section 4.5) requires the generator to be *deterministic* and
*platform independent*: "we incorporated a random number generator rather than
relying on the operating system's built-in random number generators".  This
package provides:

* :class:`~repro.rng.lcg.Lcg48` — a portable 48-bit linear congruential
  generator (the same family as POSIX ``drand48``) whose output depends only
  on the seed, never on the platform or the Python hash seed.
* :mod:`~repro.rng.distributions` — uniform, exponential, normal and Zipf
  variates built on top of the core generator with textbook algorithms.
* :mod:`~repro.rng.streams` — named, independently seeded, *replayable*
  streams.  Replaying is the paper's trick for reference partitioning:
  "we solved this problem by modifying the random number generation to
  produce several identical streams of random numbers".
"""

from repro.rng.distributions import Distribution, RandomSource
from repro.rng.lcg import Lcg48
from repro.rng.streams import StreamFamily

__all__ = ["Lcg48", "RandomSource", "Distribution", "StreamFamily"]
