"""Portable 48-bit linear congruential generator.

This is the deterministic core required by the paper: output depends only on
the seed, so any user can regenerate the exact same benchmark document on any
platform.  The multiplier/increment pair is the classic ``drand48`` one
(Knuth, TAOCP vol. 2), which has well-studied spectral properties and a
period of 2**48.
"""

from __future__ import annotations

_MULTIPLIER = 0x5DEECE66D
_INCREMENT = 0xB
_MASK = (1 << 48) - 1
_DOUBLE_SCALE = 1.0 / (1 << 48)


class Lcg48:
    """48-bit LCG with ``drand48`` constants.

    The generator is tiny and fully self-contained on purpose: the benchmark
    document must not depend on Python's ``random`` module internals, which
    are allowed to change between versions.
    """

    __slots__ = ("_state", "_seed")

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed & _MASK
        # Scramble the raw seed exactly like java.util.Random/drand48 do so
        # that small consecutive seeds give uncorrelated streams.
        self._state = (self._seed ^ _MULTIPLIER) & _MASK

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def next_raw(self) -> int:
        """Advance the state and return the full 48-bit word."""
        self._state = (self._state * _MULTIPLIER + _INCREMENT) & _MASK
        return self._state

    def next_double(self) -> float:
        """Uniform float in ``[0, 1)`` with 48 bits of precision."""
        return self.next_raw() * _DOUBLE_SCALE

    def next_uint(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``.

        Uses rejection sampling on the top bits to avoid the modulo bias a
        plain ``next_raw() % bound`` would introduce.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        # Number of 48-bit words that map evenly onto `bound` buckets.
        limit = (1 << 48) - ((1 << 48) % bound)
        word = self.next_raw()
        while word >= limit:
            word = self.next_raw()
        return word % bound

    def getstate(self) -> int:
        """Return the opaque internal state (for save/restore)."""
        return self._state

    def setstate(self, state: int) -> None:
        """Restore a state previously obtained from :meth:`getstate`."""
        self._state = state & _MASK

    def clone(self) -> "Lcg48":
        """Return an independent copy positioned at the same state.

        Two clones produce *identical* future sequences — this is the
        replayable-stream primitive the generator's reference partitioning
        is built on.
        """
        twin = Lcg48(self._seed)
        twin.setstate(self._state)
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lcg48(seed={self._seed}, state={self._state})"
