"""Random variates on top of the deterministic core generator.

The paper (Section 4.5): "this xmlgen implements uniform, exponential, and
normal distributions of fairly high quality" using "basic algorithms which can
be found in statistics textbooks".  We implement exactly those — inverse-CDF
for the exponential, Marsaglia's polar method for the normal — plus a Zipf
sampler used by the text generator's word-frequency model.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Sequence
from typing import TypeVar

from repro.rng.lcg import Lcg48

T = TypeVar("T")


class RandomSource:
    """High-level random variates over a :class:`Lcg48` core.

    All methods consume a deterministic number of core values for a given
    outcome, so a ``RandomSource`` built from a cloned core replays the exact
    same decisions.
    """

    __slots__ = ("_core", "_spare_normal")

    def __init__(self, core: Lcg48) -> None:
        self._core = core
        self._spare_normal: float | None = None

    @classmethod
    def from_seed(cls, seed: int) -> "RandomSource":
        return cls(Lcg48(seed))

    @property
    def core(self) -> Lcg48:
        return self._core

    def clone(self) -> "RandomSource":
        """Replayable copy: the clone produces the identical future sequence."""
        twin = RandomSource(self._core.clone())
        twin._spare_normal = self._spare_normal
        return twin

    # -- uniform -----------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in ``[low, high)``."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high})")
        return low + (high - low) * self._core.next_double()

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self._core.next_uint(high - low + 1)

    def boolean(self, probability: float = 0.5) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self._core.next_double() < probability

    # -- textbook continuous distributions ----------------------------------

    def exponential(self, mean: float = 1.0) -> float:
        """Exponential variate by inverse CDF: ``-mean * ln(1 - U)``."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        # 1 - U is in (0, 1] so the log argument is never zero.
        return -mean * math.log(1.0 - self._core.next_double())

    def normal(self, mean: float = 0.0, stddev: float = 1.0) -> float:
        """Normal variate via Marsaglia's polar method (with spare caching)."""
        if stddev < 0:
            raise ValueError(f"stddev must be non-negative, got {stddev}")
        if self._spare_normal is not None:
            value = self._spare_normal
            self._spare_normal = None
            return mean + stddev * value
        while True:
            u = 2.0 * self._core.next_double() - 1.0
            v = 2.0 * self._core.next_double() - 1.0
            s = u * u + v * v
            if 0.0 < s < 1.0:
                factor = math.sqrt(-2.0 * math.log(s) / s)
                self._spare_normal = v * factor
                return mean + stddev * u * factor

    # -- discrete helpers ----------------------------------------------------

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self._core.next_uint(len(items))]

    def sample_without_replacement(self, population: int, count: int) -> list[int]:
        """``count`` distinct integers from ``range(population)``.

        Floyd's algorithm: O(count) expected work regardless of population
        size, which matters because the generator must stay resource-constant.
        """
        if count > population:
            raise ValueError(f"cannot sample {count} from {population}")
        chosen: set[int] = set()
        result: list[int] = []
        for j in range(population - count, population):
            candidate = self._core.next_uint(j + 1)
            if candidate in chosen:
                candidate = j
            chosen.add(candidate)
            result.append(candidate)
        return result

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self._core.next_uint(i + 1)
            items[i], items[j] = items[j], items[i]


class Distribution:
    """A frozen discrete distribution sampled by inverse CDF.

    Used for the Zipfian word-frequency model: build once, sample many times
    with one core value per draw (binary search over the cumulative weights).
    """

    __slots__ = ("_cumulative", "_total")

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("distribution needs at least one weight")
        cumulative: list[float] = []
        total = 0.0
        for weight in weights:
            if weight < 0:
                raise ValueError(f"negative weight: {weight}")
            total += weight
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard against floating-point shortfall
        self._cumulative = cumulative
        self._total = total

    @classmethod
    def zipf(cls, size: int, exponent: float = 1.0) -> "Distribution":
        """Zipfian rank-frequency distribution over ``size`` ranks."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        return cls([1.0 / (rank ** exponent) for rank in range(1, size + 1)])

    def __len__(self) -> int:
        return len(self._cumulative)

    def sample(self, source: RandomSource) -> int:
        """Draw one index in ``[0, len(self))``."""
        return bisect_right(self._cumulative, source.core.next_double())

    def probability(self, index: int) -> float:
        """The probability mass of ``index`` (for tests)."""
        lower = self._cumulative[index - 1] if index > 0 else 0.0
        return self._cumulative[index] - lower
