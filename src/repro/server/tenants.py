"""Per-tenant accounting and quotas for the wire server.

One server process serves many tenants; a tenant is named by the
``tenant`` field of the handshake and scoped to nothing else — two
connections with the same tenant string share one :class:`TenantState`.
Quotas bound the three resources a misbehaving client could otherwise
grow without limit: concurrent sessions (connections), in-flight
requests, and open server-side cursors.

All state here is confined to the server's event loop — every mutation
happens from connection coroutines on one thread — so there are no
locks.  Quota violations raise :class:`~repro.errors.TenantQuotaError`,
which the dispatch loop turns into a typed ``tenant_quota`` wire error;
the connection survives, only the offending request is refused.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TenantQuotaError

DEFAULT_TENANT = "default"


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """Resource ceilings for one tenant (0 or negative disables a limit)."""

    max_sessions: int = 64
    max_inflight: int = 16
    max_cursors: int = 32


@dataclass(slots=True)
class TenantState:
    """Live resource usage for one tenant across all its connections."""

    name: str
    quota: TenantQuota
    sessions: int = 0
    inflight: int = 0
    cursors: int = 0
    requests_total: int = 0
    refused_total: int = 0


@dataclass(slots=True)
class TenantRegistry:
    """All tenants the server has seen, with their quotas and usage."""

    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    _tenants: dict[str, TenantState] = field(default_factory=dict)

    def state(self, name: str) -> TenantState:
        tenant = self._tenants.get(name)
        if tenant is None:
            quota = self.quotas.get(name, self.default_quota)
            tenant = self._tenants[name] = TenantState(name, quota)
        return tenant

    def connect(self, name: str) -> TenantState:
        """Claim one session slot; raises when the tenant is at its cap."""
        tenant = self.state(name)
        limit = tenant.quota.max_sessions
        if limit > 0 and tenant.sessions >= limit:
            tenant.refused_total += 1
            raise TenantQuotaError(
                f"tenant {name!r} is at its session quota ({limit})")
        tenant.sessions += 1
        return tenant

    def disconnect(self, tenant: TenantState) -> None:
        tenant.sessions = max(0, tenant.sessions - 1)

    def begin_request(self, tenant: TenantState) -> None:
        """Claim one in-flight slot; raises when the tenant is saturated."""
        limit = tenant.quota.max_inflight
        if limit > 0 and tenant.inflight >= limit:
            tenant.refused_total += 1
            raise TenantQuotaError(
                f"tenant {tenant.name!r} is at its in-flight quota ({limit})")
        tenant.inflight += 1
        tenant.requests_total += 1

    def end_request(self, tenant: TenantState) -> None:
        tenant.inflight = max(0, tenant.inflight - 1)

    def open_cursor(self, tenant: TenantState) -> None:
        """Claim one cursor slot; raises when the tenant holds too many."""
        limit = tenant.quota.max_cursors
        if limit > 0 and tenant.cursors >= limit:
            tenant.refused_total += 1
            raise TenantQuotaError(
                f"tenant {tenant.name!r} is at its open-cursor quota "
                f"({limit})")
        tenant.cursors += 1

    def close_cursor(self, tenant: TenantState) -> None:
        tenant.cursors = max(0, tenant.cursors - 1)

    def snapshot(self) -> dict[str, dict]:
        """Usage by tenant name, for stats replies and tests."""
        return {
            name: {
                "sessions": t.sessions, "inflight": t.inflight,
                "cursors": t.cursors, "requests_total": t.requests_total,
                "refused_total": t.refused_total,
            }
            for name, t in sorted(self._tenants.items())
        }
