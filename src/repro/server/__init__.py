"""The network serving layer: wire protocol, server, tenants, client.

``repro.connect("xmark://host:port/doc")`` is the front door on the
client side; :class:`XMarkServer` (or ``xmark serve`` on the command
line) is the server side.  See docs/SERVING.md for the frame format,
the message kinds, the error-code taxonomy, and the backpressure and
tenant-quota semantics.
"""

from repro.server.client import (
    RemoteDatabase, RemotePrepared, WireClient, connect_url, parse_url,
)
from repro.server.protocol import MAX_FRAME, PROTOCOL_VERSION
from repro.server.server import (
    DEFAULT_PAGE_SIZE, ServedDocument, ServerHandle, XMarkServer,
    serve_in_thread,
)
from repro.server.tenants import (
    DEFAULT_TENANT, TenantQuota, TenantRegistry, TenantState,
)

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_TENANT",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "RemoteDatabase",
    "RemotePrepared",
    "ServedDocument",
    "ServerHandle",
    "TenantQuota",
    "TenantRegistry",
    "TenantState",
    "WireClient",
    "XMarkServer",
    "connect_url",
    "parse_url",
    "serve_in_thread",
]
