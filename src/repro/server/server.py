"""The asyncio wire server: many tenants, many documents, one process.

The server fronts ordinary :class:`repro.db.Database` connections with
the length-prefixed JSON protocol of :mod:`repro.server.protocol`.  Each
accepted connection handshakes onto one served document as one tenant,
then issues requests strictly in order; the event loop interleaves
connections while each connection's blocking work (query evaluation,
page fetches, commits) runs on a bounded worker pool.

Three mechanisms keep a saturated server honest:

* **backpressure** — at most ``max_workers + queue_depth`` requests may
  be admitted at once; the overflow request is refused immediately with
  a typed ``server_busy`` error, never queued without bound and never
  left hanging;
* **tenant quotas** — sessions, in-flight requests, and open cursors are
  bounded per tenant (:mod:`repro.server.tenants`), so one client cannot
  starve the rest;
* **a per-document read/write gate** — commits and checkpoints wait for
  in-flight reads to drain and exclude new ones (writer priority), so a
  suspended streaming cursor is never resumed over a mutating store.
  The database additionally poisons open streaming cursors at commit, so
  a later ``fetch`` on a pre-commit cursor gets a typed ``closed_cursor``
  error rather than rows matching neither document state.
"""

from __future__ import annotations

import asyncio
import threading
import time

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import __version__
from repro.db.cursor import Cursor
from repro.db.database import Database
from repro.errors import (
    ClosedCursorError, ProtocolError, ServerBusyError, XMarkError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.querylog import QueryLogWriter
from repro.obs.trace import NULL_SPAN, NULL_TRACER, TraceSampler
from repro.server import protocol
from repro.server.tenants import (
    DEFAULT_TENANT, TenantQuota, TenantRegistry, TenantState,
)

#: Default rows per ``fetch`` page when the request names no ``n``.
DEFAULT_PAGE_SIZE = 64


class _RWGate:
    """A writer-priority read/write gate confined to one event loop.

    Readers (query execution, page fetches) share; a writer (commit,
    checkpoint) waits for in-flight readers to drain and excludes new
    ones.  Waiting writers take priority — a steady read stream cannot
    starve a commit.  Every reader job terminates (a page fetch pulls a
    bounded number of rows), so writer waits are finite by construction.
    """

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    async def acquire_read(self) -> None:
        async with self._cond:
            while self._writer or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1

    async def release_read(self) -> None:
        async with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    async def acquire_write(self) -> None:
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    async def release_write(self) -> None:
        async with self._cond:
            self._writer = False
            self._cond.notify_all()


@dataclass(slots=True)
class ServedDocument:
    """One document the server exposes: a database plus its write gate."""

    name: str
    database: Database
    owned: bool = False                 # close the database on server stop?
    gate: _RWGate = field(default_factory=_RWGate)


class _ServerCursor:
    """One open cursor on one connection: a db cursor plus paging state."""

    __slots__ = ("cursor", "system", "query", "query_ref", "tenant",
                 "sampled", "started", "rows_sent")

    def __init__(self, cursor: Cursor, system: str, query: str, *,
                 query_ref=None, tenant: str | None = None,
                 sampled: bool = True,
                 started: float | None = None) -> None:
        self.cursor = cursor
        self.system = system
        self.query = query
        self.query_ref = query_ref      # the number/id the client sent
        self.tenant = tenant
        self.sampled = sampled          # attach the span tree to replies?
        self.started = started if started is not None else time.perf_counter()
        self.rows_sent = 0

    def page(self, n: int) -> tuple[list[str], bool]:
        """Up to ``n`` rows as rowtext strings, plus the exhausted flag."""
        cursor = self.cursor
        rows = [cursor.rowtext(item) for item in cursor.fetchmany(n)]
        self.rows_sent += len(rows)
        return rows, cursor._exhausted


class _Connection:
    """Per-connection state: identity, prepared queries, cursors, txn."""

    def __init__(self, conn_id: int, peer: str) -> None:
        self.conn_id = conn_id
        self.peer = peer
        self.tenant: TenantState | None = None
        self.document: ServedDocument | None = None
        self.prepared: dict[str, tuple[str, str, object, list[str]]] = {}
        self.cursors: dict[str, _ServerCursor] = {}
        self.txn_ops: list | None = None
        self.next_id = 0
        self.sampled = True             # head decision for the current request
        self.busy = 0                   # server_busy refusals since last log record

    def fresh_id(self, prefix: str) -> str:
        self.next_id += 1
        return f"{prefix}{self.conn_id}.{self.next_id}"


#: Request kinds whose work is offloaded to the worker pool (and which
#: therefore count toward backpressure and the tenant in-flight quota).
_HEAVY_KINDS = frozenset(
    {"execute", "fetch", "prepare", "commit", "checkpoint", "explain",
     "digest"})

#: Writers: exclusive on the document gate.
_WRITE_KINDS = frozenset({"commit", "checkpoint"})


class XMarkServer:
    """The asyncio socket server over one or more served documents.

    Construct, :meth:`add_document` at least once, then either ``await
    start()`` inside a running loop or hand the instance to
    :func:`serve_in_thread`.  ``port=0`` binds an ephemeral port
    (``server.port`` holds the real one after start).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_workers: int = 8,
        queue_depth: int = 16,
        page_size: int = DEFAULT_PAGE_SIZE,
        registry: MetricsRegistry | None = None,
        tracer=NULL_TRACER,
        trace_sample_rate: float = 1.0,
        tenant_sample_rates: dict[str, float] | None = None,
        slow_trace_ms: float | None = None,
        query_log=None,
        default_quota: TenantQuota | None = None,
        tenant_quotas: dict[str, TenantQuota] | None = None,
        max_frame: int = protocol.MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.max_workers = max_workers
        self.queue_depth = queue_depth
        self.page_size = page_size
        self.max_frame = max_frame
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        # Head sampling: requests carrying no client trace context roll a
        # deterministic per-tenant die; the slow/error tail rule can still
        # upgrade an unsampled request's span to kept (docs/OBSERVABILITY.md).
        self.sampler = TraceSampler(trace_sample_rate,
                                    per_tenant=tenant_sample_rates,
                                    slow_ms=slow_trace_ms)
        self._owns_query_log = isinstance(query_log, (str, bytes)) or (
            query_log is not None and not hasattr(query_log, "record"))
        self.query_log = (QueryLogWriter(query_log) if self._owns_query_log
                          else query_log)
        self.tenants = TenantRegistry(
            default_quota=default_quota or TenantQuota(),
            quotas=dict(tenant_quotas or {}))
        self.documents: dict[str, ServedDocument] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="xmark-server")
        self._active = 0                # admitted (running or gate-waiting)
        self._connections = 0
        self._next_conn = 0
        self._server: asyncio.base_events.Server | None = None
        self._stopped: asyncio.Event | None = None
        self._closing = False

    # -- documents ------------------------------------------------------------------

    def add_document(self, name: str, database: Database, *,
                     owned: bool = False) -> ServedDocument:
        """Serve ``database`` under ``name`` (the URL path component).

        ``owned=True`` transfers the connection to the server: it is
        closed when the server stops.  Served databases should be
        *direct* connections (the default ``repro.connect``) so cursors
        stream off the lazy evaluator; service/scatter connections work
        too and simply materialize per execution.
        """
        if name in self.documents:
            raise ProtocolError(f"document {name!r} is already served",
                                code="unknown_document")
        served = ServedDocument(name, database, owned)
        self.documents[name] = served
        return served

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (idempotent; call inside the loop)."""
        if self._server is not None:
            return
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        await self.start()
        await self.wait_stopped()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop accepting, close the pool, close owned databases."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=True)
        for served in self.documents.values():
            if served.owned:
                served.database.close()
        if self.query_log is not None and self._owns_query_log:
            self.query_log.close()
        if self._stopped is not None:
            self._stopped.set()

    # -- backpressure ---------------------------------------------------------------

    async def _offload(self, conn: _Connection, fn):
        """Run ``fn`` on the worker pool under admission control.

        Once ``max_workers + queue_depth`` requests are admitted, the
        next one is refused with ``server_busy`` immediately — the typed
        reply, never an unbounded queue, never a hang.  Gate waits
        happen *before* admission, so a commit draining readers cannot
        eat the queue; those waits are bounded by the per-tenant session
        quota (one in-flight request per connection).
        """
        if self._active >= self.max_workers + self.queue_depth:
            self.registry.counter("server.busy_total").inc()
            self.registry.counter(
                "server.busy_total",
                tenant=conn.tenant.name if conn.tenant else "-").inc()
            conn.busy += 1
            raise ServerBusyError(
                f"server saturated: {self._active} requests admitted "
                f"(pool {self.max_workers}, queue {self.queue_depth}); "
                "back off and retry")
        tenant = conn.tenant
        if tenant is not None:
            self.tenants.begin_request(tenant)
        self._active += 1
        self.registry.gauge("server.active_requests").set(self._active)
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._pool, fn)
        finally:
            self._active -= 1
            self.registry.gauge("server.active_requests").set(self._active)
            if tenant is not None:
                self.tenants.end_request(tenant)

    # -- the connection loop --------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._next_conn += 1
        conn = _Connection(self._next_conn, self._peer_name(writer))
        self._connections += 1
        self.registry.counter("server.accepts_total").inc()
        self.registry.gauge("server.connections").set(self._connections)
        span = (self.tracer.begin("server.accept", peer=conn.peer)
                if self.tracer.enabled else None)
        try:
            await self._serve_connection(conn, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass                        # peer vanished; nothing to reply to
        finally:
            self._release_connection(conn)
            self._connections -= 1
            self.registry.gauge("server.connections").set(self._connections)
            if span is not None:
                span.set(tenant=(conn.tenant.name if conn.tenant else None))
                span.finish()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _release_connection(self, conn: _Connection) -> None:
        for held in conn.cursors.values():
            try:
                held.cursor.close()
            except XMarkError:
                pass
        if conn.tenant is not None:
            for _ in conn.cursors:
                self.tenants.close_cursor(conn.tenant)
            self.tenants.disconnect(conn.tenant)
        conn.cursors.clear()

    @staticmethod
    def _peer_name(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return f"{peer[0]}:{peer[1]}" if peer else "?"

    async def _send(self, conn: _Connection, writer: asyncio.StreamWriter,
                    payload: dict) -> None:
        data = protocol.encode_frame(payload)
        labels = {"tenant": conn.tenant.name} if conn.tenant else {}
        self.registry.counter("net.bytes_out_total", **labels).inc(len(data))
        writer.write(data)
        await writer.drain()

    async def _serve_connection(self, conn: _Connection,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                payload, nbytes = await protocol.read_frame(
                    reader, self.max_frame)
            except ProtocolError as exc:
                self.registry.counter("server.errors_total",
                                      code=exc.code).inc()
                if exc.code == "truncated":
                    return              # peer died mid-frame; no reply possible
                # The length field lied or the payload was junk.  An
                # oversized length means the stream is desynchronized —
                # reply, then close; junk inside a well-framed payload
                # leaves the stream aligned, so the connection survives.
                await self._send(conn, writer,
                                 protocol.error_payload(None, exc))
                if exc.code == "frame_too_large":
                    return
                continue
            if payload is None:
                return                  # clean EOF at a frame boundary
            labels = {"tenant": conn.tenant.name} if conn.tenant else {}
            self.registry.counter("net.bytes_in_total", **labels).inc(nbytes)
            if not await self._dispatch(conn, writer, payload):
                return

    async def _dispatch(self, conn: _Connection,
                        writer: asyncio.StreamWriter,
                        payload: dict) -> bool:
        """Handle one request; returns False when the connection ends."""
        kind = payload["kind"]
        request_id = payload.get("id")
        started = time.perf_counter()
        tenant_label = conn.tenant.name if conn.tenant else "-"
        self.registry.counter("server.requests_total", kind=kind,
                              tenant=tenant_label).inc()
        # Head sampling: the client's trace context wins (one trace is
        # never half-kept across the wire); context-free requests roll
        # the deterministic per-tenant die.
        context = protocol.decode_trace(payload)
        conn.sampled = (context["sampled"] if context is not None
                        else self.sampler.sample(tenant_label))
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin("server.request", kind=kind,
                                     tenant=tenant_label)
            if context is not None:
                span.set(trace_id=context["trace_id"])
                if context["parent"]:
                    span.set(parent=context["parent"])
        keep_open = True
        error_code: str | None = None
        try:
            if kind == "bye":
                await self._send(conn, writer,
                                 {"kind": "bye", "id": request_id})
                return False
            if conn.document is None and kind != "hello":
                raise ProtocolError("first message must be 'hello'",
                                    code="bad_message")
            reply = await self._handle(conn, kind, payload)
            reply["id"] = request_id
            await self._send(conn, writer, reply)
        except XMarkError as exc:
            error_code = protocol.error_code(exc)
            self.registry.counter("server.errors_total",
                                  code=error_code).inc()
            if span is not None:
                span.set(error=error_code)
            await self._send(conn, writer,
                             protocol.error_payload(request_id, exc))
            if conn.document is None:
                keep_open = False       # failed handshake: hang up
        except Exception as exc:        # never let one request kill the loop
            error_code = "internal"
            self.registry.counter("server.errors_total",
                                  code="internal").inc()
            if span is not None:
                span.set(error="internal")
            await self._send(conn, writer,
                             protocol.error_payload(request_id, exc))
        finally:
            elapsed = time.perf_counter() - started
            elapsed_ms = elapsed * 1000.0
            # Histograms take seconds; the exporter renders *_ms fields.
            self.registry.histogram("server.request_ms").observe(elapsed)
            self.registry.histogram("server.request_ms",
                                    tenant=tenant_label).observe(elapsed)
            if span is not None:
                # Tail rule: errors and slow requests are always kept,
                # whatever the head decision said.
                if self.sampler.keep(conn.sampled, elapsed_ms,
                                     error=error_code is not None):
                    span.finish()
                else:
                    span.discard()
            if (error_code is not None and kind == "execute"
                    and self.query_log is not None):
                busy, conn.busy = conn.busy, 0
                self.query_log.record(
                    source="server", tenant=tenant_label,
                    query=payload.get("query", payload.get("query_id")),
                    error=error_code, duration_ms=round(elapsed_ms, 3),
                    busy=busy or None)
        return keep_open

    # -- request handlers -----------------------------------------------------------

    async def _handle(self, conn: _Connection, kind: str,
                      payload: dict) -> dict:
        if kind == "hello":
            return self._on_hello(conn, payload)
        if kind == "ping":
            return {"kind": "pong"}
        if kind == "stats":
            return self._on_stats()
        if kind == "close_cursor":
            return self._on_close_cursor(conn, payload)
        if kind == "begin":
            return self._on_begin(conn)
        if kind == "txn_op":
            return self._on_txn_op(conn, payload)
        if kind == "rollback":
            return self._on_rollback(conn)
        if kind not in _HEAVY_KINDS:
            raise ProtocolError(f"unknown message kind {kind!r}",
                                code="bad_message")
        served = conn.document
        gate = served.gate
        handler = {
            "prepare": self._do_prepare,
            "execute": self._do_execute,
            "fetch": self._do_fetch,
            "commit": self._do_commit,
            "checkpoint": self._do_checkpoint,
            "explain": self._do_explain,
            "digest": self._do_digest,
        }[kind]
        db_tracer = served.database.tracer
        if conn.sampled or not db_tracer.enabled:
            def run():
                return handler(conn, served, payload)
        else:
            # Unsampled request: the served database's instrumentation is
            # shared by every connection, so switch it off for exactly
            # this execution via thread-local suppression — the handler
            # runs wholly on one worker-pool thread.
            def run():
                with db_tracer.suppressed():
                    return handler(conn, served, payload)
        if kind in _WRITE_KINDS:
            await gate.acquire_write()
            try:
                return await self._offload(conn, run)
            finally:
                await gate.release_write()
        await gate.acquire_read()
        try:
            return await self._offload(conn, run)
        finally:
            await gate.release_read()

    def _on_hello(self, conn: _Connection, payload: dict) -> dict:
        if conn.document is not None:
            raise ProtocolError("connection already handshook",
                                code="bad_message")
        version = payload.get("protocol")
        if version != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol {version!r} not supported; this server speaks "
                f"{protocol.PROTOCOL_VERSION}", code="protocol_mismatch")
        name = payload.get("document")
        if len(self.documents) == 1 and name in (None, ""):
            name = next(iter(self.documents))
        served = self.documents.get(name)
        if served is None:
            raise ProtocolError(
                f"unknown document {name!r}; serving "
                f"{', '.join(sorted(self.documents)) or 'nothing'}",
                code="unknown_document")
        tenant_name = payload.get("tenant") or DEFAULT_TENANT
        if not isinstance(tenant_name, str):
            raise ProtocolError("tenant must be a string",
                                code="bad_message")
        conn.tenant = self.tenants.connect(tenant_name)
        conn.document = served
        database = served.database
        return {
            "kind": "welcome",
            "protocol": protocol.PROTOCOL_VERSION,
            "server": f"xmark/{__version__}",
            "document": served.name,
            "systems": list(database.systems),
            "default_system": database.default_system(),
            "shard_system": database.shard_system,
            "tenant": tenant_name,
            "page_size": self.page_size,
        }

    def _on_stats(self) -> dict:
        return {
            "kind": "stats",
            "connections": self._connections,
            "active_requests": self._active,
            "documents": sorted(self.documents),
            "tenants": self.tenants.snapshot(),
            "metrics": self.registry.snapshot(),
        }

    def _on_close_cursor(self, conn: _Connection, payload: dict) -> dict:
        cursor_id = payload.get("cursor_id")
        known = cursor_id in conn.cursors
        reply = {"kind": "closed", "cursor_id": cursor_id, "known": known}
        if known:
            self._finish_cursor(conn, cursor_id, reply)
        return reply

    def _on_begin(self, conn: _Connection) -> dict:
        if conn.txn_ops is not None:
            raise ProtocolError("transaction already open on this "
                                "connection", code="bad_message")
        conn.txn_ops = []
        return {"kind": "txn", "state": "open", "ops": 0}

    def _on_txn_op(self, conn: _Connection, payload: dict) -> dict:
        if conn.txn_ops is None:
            raise ProtocolError("no open transaction; send 'begin' first",
                                code="bad_message")
        conn.txn_ops.append(protocol.decode_op(payload.get("op")))
        return {"kind": "txn", "state": "open", "ops": len(conn.txn_ops)}

    def _on_rollback(self, conn: _Connection) -> dict:
        discarded = len(conn.txn_ops or ())
        conn.txn_ops = None
        return {"kind": "txn", "state": "aborted", "discarded": discarded}

    # -- offloaded handlers (worker-pool threads) ------------------------------------

    def _resolve_query(self, conn: _Connection, served: ServedDocument,
                       payload: dict) -> tuple[str, str, object]:
        """``(system, text, compiled)`` for an execute/explain payload."""
        database = served.database
        if "query_id" in payload:
            entry = conn.prepared.get(payload["query_id"])
            if entry is None:
                raise ProtocolError(
                    f"unknown query_id {payload['query_id']!r}",
                    code="bad_message")
            system, text, compiled, _warnings = entry
            return system, text, compiled
        query = payload.get("query")
        if not isinstance(query, (str, int)) or isinstance(query, bool):
            raise ProtocolError("query must be a string or a benchmark "
                                "number", code="bad_message")
        system = database.resolve_system(payload.get("system"))
        text = database.query_text(query)
        text = protocol.bind_params(text, payload.get("params") or {})
        return system, text, None

    def _do_prepare(self, conn: _Connection, served: ServedDocument,
                    payload: dict) -> dict:
        database = served.database
        system, text, _ = self._resolve_query(conn, served, payload)
        compiled = None
        warnings: list[str] = []
        # The shard pseudo-system and service connections compile inside
        # their own engines; a prepared id still pins system + bound text.
        if database.service is None and system != database.shard_system:
            compiled = database.compile(system, text)
            warnings = [str(w) for w in getattr(compiled, "warnings", ())]
        query_id = conn.fresh_id("q")
        conn.prepared[query_id] = (system, text, compiled, warnings)
        return {"kind": "prepared", "query_id": query_id, "system": system,
                "query": text, "warnings": warnings}

    def _do_execute(self, conn: _Connection, served: ServedDocument,
                    payload: dict) -> dict:
        started = time.perf_counter()   # before compile: duration_ms covers it
        system, text, compiled = self._resolve_query(conn, served, payload)
        tenant_name = conn.tenant.name
        cursor = served.database.execute(
            system, text, stream=True, compiled=compiled,
            tenant=tenant_name)
        self.tenants.open_cursor(conn.tenant)
        self.registry.counter("server.executes_total",
                              tenant=tenant_name).inc()
        if cursor.plan_cache_hit:
            self.registry.counter("server.plan_cache_hits_total",
                                  tenant=tenant_name).inc()
        if cursor.result_cache_hit:
            self.registry.counter("server.result_cache_hits_total",
                                  tenant=tenant_name).inc()
        held = _ServerCursor(cursor, system, text,
                             query_ref=payload.get("query",
                                                   payload.get("query_id")),
                             tenant=tenant_name, sampled=conn.sampled,
                             started=started)
        cursor_id = conn.fresh_id("c")
        conn.cursors[cursor_id] = held
        reply = {
            "kind": "cursor", "cursor_id": cursor_id, "system": system,
            "query": text,
            "stats": {
                "source": cursor.source,
                "streaming": cursor.streaming,
                "compile_seconds": cursor.compile_seconds,
                "plan_cache_hit": cursor.plan_cache_hit,
                "result_cache_hit": cursor.result_cache_hit,
            },
        }
        first_page = payload.get("fetch")
        if first_page:
            rows, done = held.page(self._page_arg(first_page))
            reply["rows"] = rows
            reply["done"] = done
            if done:
                self._finish_cursor(conn, cursor_id, reply)
        return reply

    def _page_arg(self, value) -> int:
        if value is True:
            return self.page_size
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ProtocolError(f"fetch size must be a positive integer, "
                                f"got {value!r}", code="bad_message")
        return value

    def _drop_cursor(self, conn: _Connection, cursor_id: str) -> None:
        held = conn.cursors.pop(cursor_id, None)
        if held is not None:
            self.tenants.close_cursor(conn.tenant)
            held.cursor.close()

    def _finish_cursor(self, conn: _Connection, cursor_id: str,
                       reply: dict | None = None) -> None:
        """Close a completed cursor: finish + attach its span, log it.

        The reply completing a cursor (inline-done execute, final fetch,
        or close ack) carries the server-side span tree when the query
        was sampled, so the client can graft it into its own trace.
        """
        held = conn.cursors.pop(cursor_id, None)
        if held is None:
            return
        self.tenants.close_cursor(conn.tenant)
        held.cursor.close()             # finishes the query span with rows
        span = held.cursor.profile()
        traced = (held.sampled and span is not None and span is not NULL_SPAN
                  and span.finished)
        if traced and reply is not None:
            reply["span"] = span.to_dict()
        self._log_query(conn, held, span if traced else None)

    def _log_query(self, conn: _Connection, held: _ServerCursor,
                   span) -> None:
        if self.query_log is None:
            return
        duration_ms = (time.perf_counter() - held.started) * 1000.0
        wire_ms = None
        if span is not None and span.duration is not None:
            wire_ms = round(max(0.0, duration_ms - span.duration * 1000.0), 4)
        busy, conn.busy = conn.busy, 0
        cursor = held.cursor
        self.query_log.record(
            source="server", span=span, tenant=held.tenant,
            system=held.system, query=held.query_ref,
            query_text=held.query, rows=held.rows_sent,
            duration_ms=round(duration_ms, 3), wire_ms=wire_ms,
            plan_cache_hit=cursor.plan_cache_hit,
            result_cache_hit=cursor.result_cache_hit,
            busy=busy or None)

    def _do_fetch(self, conn: _Connection, served: ServedDocument,
                  payload: dict) -> dict:
        cursor_id = payload.get("cursor_id")
        held = conn.cursors.get(cursor_id)
        if held is None:
            raise ClosedCursorError(
                f"unknown or closed cursor {cursor_id!r}")
        try:
            rows, done = held.page(self._page_arg(payload.get("n", True)))
        except ClosedCursorError:
            # Poisoned by a commit while suspended: drop the server-side
            # entry, then surface the typed error to the client.
            self._drop_cursor(conn, cursor_id)
            raise
        reply = {"kind": "rows", "cursor_id": cursor_id, "rows": rows,
                 "done": done}
        if done:
            self._finish_cursor(conn, cursor_id, reply)
        return reply

    def _do_commit(self, conn: _Connection, served: ServedDocument,
                   payload: dict) -> dict:
        if conn.txn_ops is None:
            raise ProtocolError("no open transaction; send 'begin' first",
                                code="bad_message")
        ops, conn.txn_ops = conn.txn_ops, None
        maintenance = payload.get("maintenance")
        report = served.database.apply_transaction(
            ops, maintenance=maintenance)
        return {"kind": "committed", "report": report}

    def _do_checkpoint(self, conn: _Connection, served: ServedDocument,
                       payload: dict) -> dict:
        report = served.database.checkpoint()
        return {"kind": "checkpointed", "report": report}

    def _do_explain(self, conn: _Connection, served: ServedDocument,
                    payload: dict) -> dict:
        system, text, _ = self._resolve_query(conn, served, payload)
        explain = served.database.explain(text, system=system)
        return {"kind": "explained", "system": system,
                "explain": explain.as_dict()}

    def _do_digest(self, conn: _Connection, served: ServedDocument,
                   payload: dict) -> dict:
        system = served.database.resolve_system(payload.get("system"))
        return {"kind": "digest", "system": system,
                "digest": served.database.document_digest(system)}


# -- running in a thread ---------------------------------------------------------------


@dataclass
class ServerHandle:
    """A running server on a daemon thread: address plus a stop switch."""

    server: XMarkServer
    loop: asyncio.AbstractEventLoop
    thread: threading.Thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        name = next(iter(self.server.documents), "")
        return f"xmark://{self.host}:{self.port}/{name}"

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread (idempotent)."""
        if not self.thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(timeout)
        self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(server: XMarkServer) -> ServerHandle:
    """Start ``server`` on a fresh event loop in a daemon thread.

    Returns once the socket is bound (``handle.port`` is live).  The
    embedding process talks to it like any remote client — this is how
    the tests, the benchmark harness, and ``xmark client --self-serve``
    get a real socket without managing a second process.
    """
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            try:
                await server.start()
            except BaseException as exc:    # surface bind errors to the caller
                failure.append(exc)
                ready.set()
                return
            ready.set()
            await server.wait_stopped()

        try:
            loop.run_until_complete(_main())
            # Connections the clients never closed still own handler
            # tasks; cancel them so the loop shuts down quietly.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="xmark-serve", daemon=True)
    thread.start()
    ready.wait(30.0)
    if failure:
        raise failure[0]
    return ServerHandle(server, loop, thread)
