"""The wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned payload length followed by that
many bytes of UTF-8 JSON.  Every request is a JSON object with a string
``kind`` and an optional client-chosen ``id`` the reply echoes; every
reply is a JSON object whose ``kind`` names the outcome (``welcome``,
``cursor``, ``rows``, ``committed``, ... or ``error``).  Requests on one
connection are processed strictly in order, one reply per request, so a
client can pipeline but never needs to demultiplex.

The module owns everything both ends must agree on: the frame codec
(async reader side and blocking socket side), the parameter-binding
substitution, the update-operation encoding, the trace-context field,
and the two-way mapping between :mod:`repro.errors` exception types and
wire error codes — kept in one place so client and server cannot drift
apart.

**Trace context.**  Any request may carry an optional ``trace`` object::

    {"kind": "execute", ..., "trace": {"trace_id": "a1b2c3d4e5f6",
                                       "parent": "a1b2c3d4e5f6/0",
                                       "sampled": true}}

``trace_id`` names the distributed trace the client started, ``parent``
is the client-side span the server's ``server.request`` span should
logically hang under, and ``sampled`` is the client's head-sampling
decision — the server honors it instead of rolling its own, so one
trace is never half-kept.  In the other direction, the reply that
completes a cursor (an ``execute`` reply with ``done: true``, the final
``fetch``, or the ``close_cursor`` ack) may carry a ``span`` field: the
server-side span tree for that query in ``Span.to_dict()`` form, which
the client grafts into its own root so ``cursor.profile()`` shows one
joined tree.  Both fields are optional in both directions; an end that
does not understand them ignores them.
"""

from __future__ import annotations

import json
import re
import socket
import struct

from repro.errors import (
    BenchmarkError, ClosedCursorError, ClosedSessionError, DurabilityError,
    ProtocolError, QueryError, QuerySyntaxError, ServerBusyError, ServerError,
    ShardError, StorageError, TenantQuotaError, TransactionError,
    UnknownSystemError, UpdateError, XMarkError,
)
from repro.update.ops import (
    CloseAuction, DeleteItem, PlaceBid, RegisterPerson, UpdateOp,
)
from repro.xmlio.serialize import serialize

#: Protocol revision; the handshake refuses a mismatched client.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload (8 MiB): a length field beyond it
#: is desynchronization or abuse, never a legitimate message.
MAX_FRAME = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size


# -- frame codec --------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """One message as wire bytes: length header + compact JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit", code="frame_too_large")
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse one frame's payload; raises a typed error on junk."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}",
                            code="bad_frame") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("kind"), str):
        raise ProtocolError(
            "message must be a JSON object with a string 'kind'",
            code="bad_message")
    return payload


async def read_frame(reader, max_frame: int = MAX_FRAME) -> tuple[dict | None, int]:
    """Read one frame from an asyncio stream: ``(payload, bytes_read)``.

    Returns ``(None, 0)`` on a clean end-of-stream at a frame boundary.
    Raises :class:`ProtocolError` with code ``truncated`` when the peer
    vanishes mid-frame (no reply is possible), ``frame_too_large`` when
    the length field exceeds ``max_frame`` (the stream is abandoned after
    the error reply), and ``bad_frame``/``bad_message`` when the framing
    was intact but the payload is junk (the connection survives).
    """
    import asyncio
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None, 0
        raise ProtocolError("connection closed mid-header",
                            code="truncated") from None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_frame}-byte limit",
            code="frame_too_large")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-payload",
                            code="truncated") from None
    return decode_payload(body), HEADER_SIZE + length


def recv_frame(sock: socket.socket,
               max_frame: int = MAX_FRAME) -> dict | None:
    """Blocking-socket twin of :func:`read_frame` (the sync client side)."""
    header = _recv_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_frame}-byte limit",
            code="frame_too_large")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed mid-payload", code="truncated")
    return decode_payload(body)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """``count`` bytes, ``None`` on clean EOF, typed error on partial EOF."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-frame",
                                code="truncated")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- trace context -------------------------------------------------------------------


def decode_trace(payload: dict) -> dict | None:
    """The validated ``trace`` context of one request, or ``None``.

    A malformed context is dropped rather than refused: tracing is
    advisory metadata, and a client bug here must not fail the query.
    """
    context = payload.get("trace")
    if not isinstance(context, dict):
        return None
    trace_id = context.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    parent = context.get("parent")
    return {"trace_id": trace_id,
            "parent": parent if isinstance(parent, str) else None,
            "sampled": bool(context.get("sampled", True))}


# -- parameter bindings --------------------------------------------------------------

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def bind_params(text: str, params: dict) -> str:
    """Substitute ``$name`` placeholders with literal values.

    Placeholders share the query language's variable syntax; only the
    names present in ``params`` are substituted, so a query's own FLWOR
    variables pass through untouched.  Strings become double-quoted
    literals (embedded quotes are refused — the grammar has no escape),
    ints and floats become numeric literals.
    """
    if not params:
        return text
    if not isinstance(params, dict):
        raise ProtocolError("params must be an object of name -> value",
                            code="bad_params")
    for name, value in params.items():
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ProtocolError(f"invalid parameter name {name!r}",
                                code="bad_params")
        if isinstance(value, bool) or value is None:
            raise ProtocolError(
                f"parameter ${name} must be a string or number, "
                f"got {value!r}", code="bad_params")
        if isinstance(value, str):
            if '"' in value:
                raise ProtocolError(
                    f"parameter ${name} contains a double quote; the "
                    "query grammar has no string escape", code="bad_params")
            literal = f'"{value}"'
        elif isinstance(value, (int, float)):
            literal = repr(value)
        else:
            raise ProtocolError(
                f"parameter ${name} must be a string or number, "
                f"got {type(value).__name__}", code="bad_params")
        pattern = re.compile(r"\$" + re.escape(name) + r"\b")
        if not pattern.search(text):
            raise ProtocolError(f"query has no placeholder ${name}",
                                code="bad_params")
        text = pattern.sub(literal.replace("\\", "\\\\"), text)
    return text


# -- update-operation encoding -------------------------------------------------------


def encode_op(op: UpdateOp) -> dict:
    """One typed update operation as a JSON-safe object."""
    if isinstance(op, RegisterPerson):
        return {"kind": op.kind, "person_xml": serialize(op.person)}
    if isinstance(op, PlaceBid):
        return {"kind": op.kind, "auction_id": op.auction_id,
                "person_id": op.person_id, "increase": op.increase,
                "date": op.date, "time": op.time}
    if isinstance(op, CloseAuction):
        return {"kind": op.kind, "auction_id": op.auction_id,
                "date": op.date}
    if isinstance(op, DeleteItem):
        return {"kind": op.kind, "item_id": op.item_id}
    raise ProtocolError(f"unknown update operation {type(op).__name__}",
                        code="bad_message")


def decode_op(data) -> UpdateOp:
    """The inverse of :func:`encode_op`; raises on malformed input."""
    if not isinstance(data, dict):
        raise ProtocolError("op must be a JSON object", code="bad_message")
    kind = data.get("kind")
    try:
        if kind == "register_person":
            from repro.xmlio.parser import parse
            return RegisterPerson(parse(data["person_xml"]).root)
        if kind == "place_bid":
            return PlaceBid(str(data["auction_id"]), str(data["person_id"]),
                            float(data["increase"]), str(data["date"]),
                            str(data["time"]))
        if kind == "close_auction":
            return CloseAuction(str(data["auction_id"]), str(data["date"]))
        if kind == "delete_item":
            return DeleteItem(str(data["item_id"]))
    except ProtocolError:
        raise
    except XMarkError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {kind} operation: {exc}",
                            code="bad_message") from None
    raise ProtocolError(f"unknown update operation kind {kind!r}",
                        code="bad_message")


# -- error code mapping --------------------------------------------------------------

#: Exception class -> wire code, most specific first (the server walks this
#: in order).  :class:`ProtocolError` is special-cased: it carries its code.
_ERROR_CODES: tuple[tuple[type, str], ...] = (
    (ServerBusyError, "server_busy"),
    (TenantQuotaError, "tenant_quota"),
    (QuerySyntaxError, "query_syntax"),
    (UnknownSystemError, "unknown_system"),
    (QueryError, "query"),
    (TransactionError, "transaction"),
    (UpdateError, "update"),
    (ClosedCursorError, "closed_cursor"),
    (ClosedSessionError, "closed_session"),
    (DurabilityError, "durability"),
    (ShardError, "shard"),
    (StorageError, "storage"),
    (BenchmarkError, "benchmark"),
    (ServerError, "server"),
    (XMarkError, "error"),
)

#: Wire code -> exception factory from ``(message, detail)`` — how the
#: client re-raises a typed error from an ``error`` reply.
_CODE_FACTORIES = {
    "server_busy": lambda message, detail: ServerBusyError(message),
    "tenant_quota": lambda message, detail: TenantQuotaError(message),
    "query_syntax": lambda message, detail: QuerySyntaxError(message),
    "unknown_system": lambda message, detail: UnknownSystemError(
        detail.get("system", "?"), tuple(detail.get("available", ()))),
    "query": lambda message, detail: QueryError(message),
    "transaction": lambda message, detail: TransactionError(
        message, detail.get("applied", 0)),
    "update": lambda message, detail: UpdateError(message),
    "closed_cursor": lambda message, detail: ClosedCursorError(message),
    "closed_session": lambda message, detail: ClosedSessionError(message),
    "durability": lambda message, detail: DurabilityError(message),
    "shard": lambda message, detail: ShardError(message),
    "storage": lambda message, detail: StorageError(message),
    "benchmark": lambda message, detail: BenchmarkError(message),
    "server": lambda message, detail: ServerError(message),
    "error": lambda message, detail: XMarkError(message),
}


def error_code(exc: BaseException) -> str:
    """The wire code one exception maps to (``internal`` for non-library)."""
    if isinstance(exc, ProtocolError):
        return exc.code
    for klass, code in _ERROR_CODES:
        if isinstance(exc, klass):
            return code
    return "internal"


def error_payload(request_id, exc: BaseException) -> dict:
    """The ``error`` reply for one failed request."""
    detail: dict = {}
    if isinstance(exc, UnknownSystemError):
        detail = {"system": exc.system, "available": list(exc.available)}
    elif isinstance(exc, TransactionError):
        detail = {"applied": exc.applied}
    payload = {"kind": "error", "id": request_id, "code": error_code(exc),
               "message": str(exc)}
    if detail:
        payload["detail"] = detail
    return payload


def raise_wire_error(reply: dict) -> None:
    """Re-raise an ``error`` reply as its typed exception (client side)."""
    code = reply.get("code", "error")
    message = reply.get("message", "server error")
    detail = reply.get("detail") or {}
    factory = _CODE_FACTORIES.get(code)
    if factory is not None:
        raise factory(message, detail)
    if code in ("bad_frame", "bad_message", "frame_too_large", "truncated",
                "bad_params", "unknown_document", "protocol_mismatch"):
        raise ProtocolError(message, code=code)
    raise ServerError(f"[{code}] {message}")
